//! Equivalence of the three engines: naive re-enumeration, the delta-driven
//! trigger queue, and the stratum-scheduled parallel executor.
//!
//! The delta-driven trigger queue promises *identical semantics* to naive
//! per-step re-enumeration — same trigger fired at every step, so the same
//! trace, step count, fresh-null count, and final instance — and
//! `chase_parallel` promises the same again under any thread count: the
//! workers only shard *matching* work, never trigger *selection*. These
//! tests hold the engines against each other over the `chase-corpus` random
//! families and the named corpus families, across strategies and chase
//! modes. On terminating runs the results must additionally be
//! homomorphically equivalent (they are in fact equal, which is stronger;
//! the hom check guards the contract the chase actually promises).

use chase_core::homomorphism::hom_equivalent;
use chase_corpus::families;
use chase_corpus::random::{
    random_egd_mix, random_instance, random_tgds, RandomInstanceConfig, RandomTgdConfig,
};
use chase_engine::{
    chase, chase_naive, chase_parallel, ChaseConfig, ChaseMode, ParallelConfig, Strategy,
};
use chase_termination::{phase_schedule, PhaseSchedule, PrecedenceConfig, Recognition};
use proptest::prelude::*;

fn assert_equivalent(
    set: &chase_core::ConstraintSet,
    inst: &chase_core::Instance,
    cfg: &ChaseConfig,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut cfg = cfg.clone();
    cfg.keep_trace = true;
    let fast = chase(inst, set, &cfg);
    let slow = chase_naive(inst, set, &cfg);
    prop_assert_eq!(
        &fast.reason,
        &slow.reason,
        "engines disagree on stop reason for:\n{}\non {}",
        set,
        inst
    );
    prop_assert_eq!(
        fast.steps,
        slow.steps,
        "engines disagree on step count for:\n{}\non {}",
        set,
        inst
    );
    prop_assert_eq!(
        fast.fresh_nulls,
        slow.fresh_nulls,
        "engines disagree on fresh nulls for:\n{}\non {}",
        set,
        inst
    );
    for (i, (a, b)) in fast.trace.iter().zip(&slow.trace).enumerate() {
        prop_assert_eq!(
            a.constraint,
            b.constraint,
            "step {} fired different constraints for:\n{}\non {}",
            i,
            set,
            inst
        );
        prop_assert_eq!(
            &a.assignment,
            &b.assignment,
            "step {} fired different assignments for:\n{}\non {}",
            i,
            set,
            inst
        );
    }
    prop_assert_eq!(
        &fast.instance,
        &slow.instance,
        "engines disagree on the final instance for:\n{}\non {}",
        set,
        inst
    );
    if fast.terminated() {
        prop_assert!(
            hom_equivalent(&fast.instance, &slow.instance),
            "terminating results not hom-equivalent for:\n{}\non {}",
            set,
            inst
        );
    }
    Ok(())
}

/// Trace equality between two results of the same run configuration.
fn assert_traces_equal(
    label: &str,
    a: &chase_engine::ChaseResult,
    b: &chase_engine::ChaseResult,
    set: &chase_core::ConstraintSet,
    inst: &chase_core::Instance,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(
        &a.reason,
        &b.reason,
        "{}: stop reason differs for:\n{}\non {}",
        label,
        set,
        inst
    );
    prop_assert_eq!(
        a.steps,
        b.steps,
        "{}: step count differs for:\n{}\non {}",
        label,
        set,
        inst
    );
    prop_assert_eq!(
        a.fresh_nulls,
        b.fresh_nulls,
        "{}: fresh nulls differ for:\n{}\non {}",
        label,
        set,
        inst
    );
    prop_assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "{}: trace length differs",
        label
    );
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        prop_assert_eq!(
            x.constraint,
            y.constraint,
            "{}: step {} fired different constraints for:\n{}\non {}",
            label,
            i,
            set,
            inst
        );
        prop_assert_eq!(
            &x.assignment,
            &y.assignment,
            "{}: step {} fired different assignments for:\n{}\non {}",
            label,
            i,
            set,
            inst
        );
        prop_assert_eq!(
            &x.added,
            &y.added,
            "{}: step {} added different atoms",
            label,
            i
        );
        prop_assert_eq!(
            &x.merged,
            &y.merged,
            "{}: step {} merged differently",
            label,
            i
        );
    }
    prop_assert_eq!(
        &a.instance,
        &b.instance,
        "{}: final instances differ for:\n{}\non {}",
        label,
        set,
        inst
    );
    Ok(())
}

/// The three-way check: naive, delta, and parallel (at 1, 2 and 4 threads)
/// must all replay the same trace under the set's phase schedule — with the
/// join planner on *and* off (planning changes matching cost and
/// enumeration order, never which trigger is selected). The 2-thread run
/// uses `fanout_threshold = 0` to force every matching path through the
/// sharded code even on tiny workloads.
fn assert_three_way(
    set: &chase_core::ConstraintSet,
    inst: &chase_core::Instance,
    max_steps: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let schedule = phase_schedule(set, &PrecedenceConfig::default());
    let cfg = ChaseConfig {
        strategy: Strategy::Phased(schedule.phases.clone()),
        max_steps: Some(max_steps),
        keep_trace: true,
        ..ChaseConfig::default()
    };
    let mut cfg_off = cfg.clone();
    cfg_off.use_planner = false;
    let delta = chase(inst, set, &cfg);
    let naive = chase_naive(inst, set, &cfg);
    assert_traces_equal("naive vs delta", &naive, &delta, set, inst)?;
    let delta_off = chase(inst, set, &cfg_off);
    assert_traces_equal("planner-off delta vs delta", &delta_off, &delta, set, inst)?;
    let naive_off = chase_naive(inst, set, &cfg_off);
    assert_traces_equal("planner-off naive vs delta", &naive_off, &delta, set, inst)?;
    for (threads, threshold) in [(1usize, 256usize), (2, 0), (4, 256)] {
        for base in [&cfg, &cfg_off] {
            let pcfg = ParallelConfig {
                base: base.clone(),
                threads,
                fanout_threshold: threshold,
            };
            let par = chase_parallel(inst, set, &schedule.phases, &pcfg);
            assert_traces_equal(
                &format!(
                    "parallel t={threads} f={threshold} planner={} vs delta",
                    base.use_planner
                ),
                &par,
                &delta,
                set,
                inst,
            )?;
        }
    }
    if delta.terminated() {
        prop_assert!(
            hom_equivalent(&delta.instance, &naive.instance),
            "terminating results not hom-equivalent for:\n{}\non {}",
            set,
            inst
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn random_families_agree_round_robin(
        seed in any::<u64>(),
        constraints in 1usize..=4,
        facts in 1usize..10,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints,
            predicates: 3,
            max_arity: 3,
            body_atoms: (1, 2),
            head_atoms: (1, 2),
            existential_prob: 0.35,
            seed,
        });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 4, seed });
        assert_equivalent(&set, &inst, &ChaseConfig::with_max_steps(300))?;
    }

    #[test]
    fn random_families_agree_random_strategy(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        facts in 1usize..8,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints: 3,
            predicates: 2,
            max_arity: 2,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.3,
            seed,
        });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        let cfg = ChaseConfig {
            strategy: Strategy::Random { seed: order_seed },
            max_steps: Some(300),
            ..ChaseConfig::default()
        };
        assert_equivalent(&set, &inst, &cfg)?;
    }

    #[test]
    fn random_families_agree_three_way(
        seed in any::<u64>(),
        constraints in 1usize..=3,
        facts in 1usize..10,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints,
            predicates: 3,
            max_arity: 3,
            body_atoms: (1, 2),
            head_atoms: (1, 2),
            existential_prob: 0.35,
            seed,
        });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 4, seed });
        assert_three_way(&set, &inst, 200)?;
    }

    #[test]
    fn egd_heavy_random_families_agree_three_way(
        seed in any::<u64>(),
        facts in 1usize..10,
        egds in 1usize..=3,
    ) {
        // Existential-heavy TGDs invent nulls, random key EGDs merge them
        // away: every engine must repair its trigger state through the
        // merge delta and still replay the naive trace bit for bit.
        let set = random_egd_mix(&RandomTgdConfig {
            constraints: 2,
            predicates: 3,
            max_arity: 3,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.6,
            seed,
        }, egds);
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        assert_three_way(&set, &inst, 200)?;
    }

    #[test]
    fn egd_heavy_random_families_agree_oblivious(
        seed in any::<u64>(),
        facts in 1usize..8,
    ) {
        // Oblivious mode is the fired-memo path: merges must remap memo
        // keys identically in the naive and delta engines.
        let set = random_egd_mix(&RandomTgdConfig {
            constraints: 2,
            predicates: 2,
            max_arity: 3,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.5,
            seed,
        }, 2);
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        let cfg = ChaseConfig {
            mode: ChaseMode::Oblivious,
            max_steps: Some(200),
            ..ChaseConfig::default()
        };
        assert_equivalent(&set, &inst, &cfg)?;
    }

    #[test]
    fn random_families_agree_oblivious(
        seed in any::<u64>(),
        facts in 1usize..8,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints: 2,
            predicates: 2,
            max_arity: 2,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.3,
            seed,
        });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        let cfg = ChaseConfig {
            mode: ChaseMode::Oblivious,
            max_steps: Some(200),
            ..ChaseConfig::default()
        };
        assert_equivalent(&set, &inst, &cfg)?;
    }
}

#[test]
fn corpus_families_agree_across_strategies() {
    let cases: Vec<(chase_core::ConstraintSet, chase_core::Instance)> = vec![
        (families::copy_chain(4), families::chain_source_instance(3)),
        (families::lav_star(3), families::chain_source_instance(3)),
        (families::safe_family(3), families::path_instance(4)),
        (families::stratified_family(3), families::path_instance(3)),
        (families::full_tgd_cycle(3), families::cycle_instance(3)),
        (families::divergent_family(2), families::cycle_instance(2)),
    ];
    for (set, inst) in &cases {
        for cfg in [
            ChaseConfig::with_max_steps(200),
            ChaseConfig {
                strategy: Strategy::Random { seed: 7 },
                max_steps: Some(200),
                ..ChaseConfig::default()
            },
            ChaseConfig {
                strategy: Strategy::FixedCycle((0..set.len()).rev().collect()),
                max_steps: Some(200),
                ..ChaseConfig::default()
            },
        ] {
            assert_equivalent(set, inst, &cfg).unwrap_or_else(|e| panic!("{e:?}"));
        }
    }
}

#[test]
fn corpus_families_agree_three_way() {
    let cases: Vec<(chase_core::ConstraintSet, chase_core::Instance)> = vec![
        (families::copy_chain(4), families::chain_source_instance(3)),
        (families::lav_star(3), families::chain_source_instance(3)),
        (families::safe_family(3), families::path_instance(4)),
        (families::stratified_family(3), families::path_instance(3)),
        (families::full_tgd_cycle(3), families::cycle_instance(3)),
        (families::divergent_family(2), families::cycle_instance(2)),
        (
            chase_corpus::paper::example4_sigma(),
            families::unary_instance("R", 4),
        ),
        (
            chase_corpus::paper::fig9_travel(),
            chase_corpus::random::random_travel_instance(
                &chase_corpus::random::RandomTravelConfig {
                    cities: 8,
                    flights: 20,
                    rails: 10,
                    seed: 11,
                },
            ),
        ),
    ];
    for (set, inst) in &cases {
        assert_three_way(set, inst, 200).unwrap_or_else(|e| panic!("{e:?}"));
    }
}

/// An unstratified set must fall back to a single-phase schedule, and the
/// parallel engine must still replay the sequential trace on it.
#[test]
fn unstratified_sets_fall_back_to_single_phase() {
    let set = chase_core::ConstraintSet::parse("S(X) -> E(X,Y), S(Y)\nE(X,Y) -> T(Y)").unwrap();
    let schedule = phase_schedule(&set, &PrecedenceConfig::default());
    assert_ne!(schedule.stratified, Recognition::Yes);
    assert_eq!(schedule.phases, vec![vec![0, 1]]);
    assert_eq!(
        schedule.phases,
        PhaseSchedule::single_phase(set.len()).phases
    );
    let inst = chase_core::Instance::parse("S(n1). S(n2). E(n1,n2).").unwrap();
    assert_three_way(&set, &inst, 120).unwrap_or_else(|e| panic!("{e:?}"));
}

/// EGD-heavy workload: merges force the delta engine down its rebuild path.
#[test]
fn egd_workloads_agree() {
    let set =
        chase_core::ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z\nS(X) -> E(X,Y)\nE(X,Y) -> T(Y)")
            .unwrap();
    let inst =
        chase_core::Instance::parse("S(a). S(b). E(a,_n0). E(_n0,c). E(b,_n1). E(b,d).").unwrap();
    for strategy in [
        Strategy::RoundRobin,
        Strategy::Random { seed: 3 },
        Strategy::FixedCycle(vec![2, 1, 0]),
    ] {
        let cfg = ChaseConfig {
            strategy,
            max_steps: Some(200),
            ..ChaseConfig::default()
        };
        assert_equivalent(&set, &inst, &cfg).unwrap_or_else(|e| panic!("{e:?}"));
    }
}
