//! Equivalence of the delta-driven engine and the naive reference engine.
//!
//! The delta-driven trigger queue promises *identical semantics* to naive
//! per-step re-enumeration — same trigger fired at every step, so the same
//! trace, step count, fresh-null count, and final instance. These tests hold
//! the two engines against each other over the `chase-corpus` random
//! families and the named corpus families, across strategies and chase
//! modes. On terminating runs the results must additionally be
//! homomorphically equivalent (they are in fact equal, which is stronger;
//! the hom check guards the contract the chase actually promises).

use chase_core::homomorphism::hom_equivalent;
use chase_corpus::families;
use chase_corpus::random::{random_instance, random_tgds, RandomInstanceConfig, RandomTgdConfig};
use chase_engine::{chase, chase_naive, ChaseConfig, ChaseMode, Strategy};
use proptest::prelude::*;

fn assert_equivalent(
    set: &chase_core::ConstraintSet,
    inst: &chase_core::Instance,
    cfg: &ChaseConfig,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut cfg = cfg.clone();
    cfg.keep_trace = true;
    let fast = chase(inst, set, &cfg);
    let slow = chase_naive(inst, set, &cfg);
    prop_assert_eq!(
        &fast.reason, &slow.reason,
        "engines disagree on stop reason for:\n{}\non {}", set, inst
    );
    prop_assert_eq!(
        fast.steps, slow.steps,
        "engines disagree on step count for:\n{}\non {}", set, inst
    );
    prop_assert_eq!(
        fast.fresh_nulls, slow.fresh_nulls,
        "engines disagree on fresh nulls for:\n{}\non {}", set, inst
    );
    for (i, (a, b)) in fast.trace.iter().zip(&slow.trace).enumerate() {
        prop_assert_eq!(
            a.constraint, b.constraint,
            "step {} fired different constraints for:\n{}\non {}", i, set, inst
        );
        prop_assert_eq!(
            &a.assignment, &b.assignment,
            "step {} fired different assignments for:\n{}\non {}", i, set, inst
        );
    }
    prop_assert_eq!(
        &fast.instance, &slow.instance,
        "engines disagree on the final instance for:\n{}\non {}", set, inst
    );
    if fast.terminated() {
        prop_assert!(
            hom_equivalent(&fast.instance, &slow.instance),
            "terminating results not hom-equivalent for:\n{}\non {}", set, inst
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn random_families_agree_round_robin(
        seed in any::<u64>(),
        constraints in 1usize..=4,
        facts in 1usize..10,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints,
            predicates: 3,
            max_arity: 3,
            body_atoms: (1, 2),
            head_atoms: (1, 2),
            existential_prob: 0.35,
            seed,
        });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 4, seed });
        assert_equivalent(&set, &inst, &ChaseConfig::with_max_steps(300))?;
    }

    #[test]
    fn random_families_agree_random_strategy(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        facts in 1usize..8,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints: 3,
            predicates: 2,
            max_arity: 2,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.3,
            seed,
        });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        let cfg = ChaseConfig {
            strategy: Strategy::Random { seed: order_seed },
            max_steps: Some(300),
            ..ChaseConfig::default()
        };
        assert_equivalent(&set, &inst, &cfg)?;
    }

    #[test]
    fn random_families_agree_oblivious(
        seed in any::<u64>(),
        facts in 1usize..8,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints: 2,
            predicates: 2,
            max_arity: 2,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.3,
            seed,
        });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        let cfg = ChaseConfig {
            mode: ChaseMode::Oblivious,
            max_steps: Some(200),
            ..ChaseConfig::default()
        };
        assert_equivalent(&set, &inst, &cfg)?;
    }
}

#[test]
fn corpus_families_agree_across_strategies() {
    let cases: Vec<(chase_core::ConstraintSet, chase_core::Instance)> = vec![
        (families::copy_chain(4), families::chain_source_instance(3)),
        (families::lav_star(3), families::chain_source_instance(3)),
        (families::safe_family(3), families::path_instance(4)),
        (families::stratified_family(3), families::path_instance(3)),
        (families::full_tgd_cycle(3), families::cycle_instance(3)),
        (families::divergent_family(2), families::cycle_instance(2)),
    ];
    for (set, inst) in &cases {
        for cfg in [
            ChaseConfig::with_max_steps(200),
            ChaseConfig {
                strategy: Strategy::Random { seed: 7 },
                max_steps: Some(200),
                ..ChaseConfig::default()
            },
            ChaseConfig {
                strategy: Strategy::FixedCycle((0..set.len()).rev().collect()),
                max_steps: Some(200),
                ..ChaseConfig::default()
            },
        ] {
            assert_equivalent(set, inst, &cfg).unwrap_or_else(|e| panic!("{e:?}"));
        }
    }
}

/// EGD-heavy workload: merges force the delta engine down its rebuild path.
#[test]
fn egd_workloads_agree() {
    let set = chase_core::ConstraintSet::parse(
        "E(X,Y), E(X,Z) -> Y = Z\nS(X) -> E(X,Y)\nE(X,Y) -> T(Y)",
    )
    .unwrap();
    let inst =
        chase_core::Instance::parse("S(a). S(b). E(a,_n0). E(_n0,c). E(b,_n1). E(b,d).").unwrap();
    for strategy in [
        Strategy::RoundRobin,
        Strategy::Random { seed: 3 },
        Strategy::FixedCycle(vec![2, 1, 0]),
    ] {
        let cfg = ChaseConfig {
            strategy,
            max_steps: Some(200),
            ..ChaseConfig::default()
        };
        assert_equivalent(&set, &inst, &cfg).unwrap_or_else(|e| panic!("{e:?}"));
    }
}
