//! The oblivious chase (Definition of Section 2 / Definition 4's substrate):
//! fires every body match exactly once, satisfied or not. C-stratification's
//! termination guarantee (Theorem 3) is about *standard* sequences, but the
//! `≺c` oracle models oblivious steps — these tests pin the engine-level
//! semantics the oracle relies on.

use chase::prelude::*;
use chase_corpus::paper;

fn oblivious(max_steps: usize) -> ChaseConfig {
    ChaseConfig {
        mode: ChaseMode::Oblivious,
        max_steps: Some(max_steps),
        ..ChaseConfig::default()
    }
}

#[test]
fn oblivious_fires_each_trigger_once() {
    // Two S-facts, one already served: standard fires once, oblivious twice.
    let set = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
    let inst = Instance::parse("S(a). S(b). E(a,c).").unwrap();
    let std_res = chase_default(&inst, &set);
    assert_eq!(std_res.steps, 1);
    let obl_res = chase(&inst, &set, &oblivious(100));
    assert_eq!(obl_res.reason, StopReason::Satisfied);
    assert_eq!(obl_res.steps, 2);
    assert_eq!(obl_res.fresh_nulls, 2);
}

#[test]
fn oblivious_terminates_on_weakly_acyclic_sets() {
    let set = paper::data_exchange_baseline();
    let inst = Instance::parse("emp(alice,sales). emp(bob,hr).").unwrap();
    let res = chase(&inst, &set, &oblivious(10_000));
    assert_eq!(res.reason, StopReason::Satisfied);
    assert!(set.satisfied_by(&res.instance));
}

#[test]
fn c_stratified_sets_terminate_obliviously_too() {
    // γ (Example 2) is c-stratified: even the oblivious chase terminates —
    // the fresh 3-cycles never form new 2-cycles.
    let gamma = paper::example2_gamma();
    let inst = Instance::parse("E(a,b). E(b,a).").unwrap();
    assert!(chase_default(&inst, &gamma).terminated());
    let obl_res = chase(&inst, &gamma, &oblivious(1_000));
    assert_eq!(obl_res.reason, StopReason::Satisfied);
}

#[test]
fn oblivious_diverges_where_a_standard_order_terminates() {
    // Example 4's set is stratified but not c-stratified: the Theorem 2
    // standard order terminates from {R(a), T(b,b)}, while the oblivious
    // chase walks the same null-cascade the bad standard order does.
    let sigma = paper::example4_sigma();
    let inst = paper::example5_instance();
    let pc = PrecedenceConfig::default();
    let good = chase(
        &inst,
        &sigma,
        &ChaseConfig {
            strategy: Strategy::Phased(stratified_order(&sigma, &pc)),
            ..ChaseConfig::default()
        },
    );
    assert!(good.terminated());
    let obl_res = chase(&inst, &sigma, &oblivious(300));
    assert_eq!(obl_res.reason, StopReason::StepLimit(300));
}

#[test]
fn oblivious_never_refires_the_same_assignment() {
    // A full TGD whose head equals its body: one oblivious firing per
    // match, then done — the fired-set must dedupe.
    let set = ConstraintSet::parse("E(X,Y) -> E(X,Y)").unwrap();
    let inst = Instance::parse("E(a,b). E(b,c).").unwrap();
    let res = chase(&inst, &set, &oblivious(100));
    assert_eq!(res.reason, StopReason::Satisfied);
    assert_eq!(res.steps, 2);
    assert_eq!(res.instance, inst);
}

#[test]
fn oblivious_egd_steps_follow_standard_semantics() {
    let set = ConstraintSet::parse("F(X,Y), F(X,Z) -> Y = Z").unwrap();
    let inst = Instance::parse("F(a,_n0). F(a,b).").unwrap();
    let res = chase(&inst, &set, &oblivious(100));
    assert_eq!(res.reason, StopReason::Satisfied);
    assert_eq!(res.instance, Instance::parse("F(a,b).").unwrap());
}
