//! Property tests for the interned columnar fact store behind
//! [`chase_core::Instance`]:
//!
//! * [`chase_core::TermId`] interning round-trips every ground term, and id
//!   order equals term order (the property that lets canonical selection
//!   sort ids instead of terms without changing any chase trace);
//! * columnar `atoms()` iteration returns exactly the deduplicated insert
//!   stream, in insertion order — the invariant every engine's sharding and
//!   trace reproducibility rest on;
//! * registered composite buckets stay consistent with a brute-force scan
//!   across EGD merges (the id-remap path) and post-merge inserts.
//!
//! The vendored proptest stand-in has no collection strategies, so fact
//! streams are generated from a `u64` seed through a `StdRng`, like the
//! `chase-corpus` random families.

use chase_core::{Atom, FactId, Instance, Sym, Term, TermId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One ground term from a small pool of constants and nulls (small on
/// purpose — collisions are where dedup, buckets, and merges do real work).
fn ground(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.5) {
        Term::constant(&format!("pc{}", rng.gen_range(0..12u32)))
    } else {
        Term::null(rng.gen_range(0..6u32))
    }
}

/// A ground atom over a couple of predicates with arity 1–3.
fn fact(rng: &mut StdRng) -> Atom {
    let pred = ["P", "Q", "R"][rng.gen_range(0..3usize)];
    let arity = rng.gen_range(1..=3usize);
    Atom::new(pred, (0..arity).map(|_| ground(rng)).collect())
}

fn fact_stream(seed: u64, len: usize) -> Vec<Atom> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| fact(&mut rng)).collect()
}

/// The atom stream with `from` replaced by `to` everywhere — the input the
/// replay oracle re-inserts from scratch.
fn substituted(atoms: &[Atom], from: Term, to: Term) -> Vec<Atom> {
    atoms
        .iter()
        .map(|a| {
            Atom::new(
                a.pred(),
                a.terms()
                    .iter()
                    .map(|&t| if t == from { to } else { t })
                    .collect(),
            )
        })
        .collect()
}

/// A from-scratch store over `atoms` with the same composite registrations
/// the tests give the incrementally maintained instance.
fn replay_oracle(atoms: &[Atom]) -> Instance {
    let mut o = Instance::new();
    for pred in ["P", "Q", "R"] {
        o.register_composite(Sym::new(pred), 0b011);
        o.register_composite(Sym::new(pred), 0b101);
    }
    for a in atoms {
        o.insert(a.clone());
    }
    o
}

/// Compare every observable the planner and the matching paths read between
/// the incrementally maintained `inst` and the replay `oracle`: the fact
/// stream, dedup-visible membership, `by_pred`/`by_pos` buckets, composite
/// buckets (including stale keys mentioning the merged-away `from`), and
/// the cardinality/distinct statistics the join planner costs with.
fn same_store(inst: &Instance, oracle: &Instance, merge: (Term, Term)) -> Result<(), String> {
    macro_rules! check {
        ($l:expr, $r:expr, $($what:tt)+) => {{
            let (l, r) = (&$l, &$r);
            if l != r {
                return Err(format!(
                    "{} diverged\n  incremental: {:?}\n       oracle: {:?}",
                    format!($($what)+), l, r
                ));
            }
        }};
    }
    check!(inst.len(), oracle.len(), "len");
    check!(inst.atoms(), oracle.atoms(), "atoms");
    check!(inst.domain(), oracle.domain(), "domain");
    check!(inst.nulls(), oracle.nulls(), "nulls");
    check!(inst.constants(), oracle.constants(), "constants");
    // Probe by_pos through candidates() with every term either store has
    // seen plus both merge endpoints (the `from` probe checks the merged
    // term's buckets are gone, not merely unreachable).
    let (from, to) = merge;
    let mut probes: BTreeSet<Term> = inst.domain();
    probes.extend(oracle.domain());
    probes.insert(from);
    probes.insert(to);
    let atoms = oracle.atoms();
    for pred in ["P", "Q", "R"] {
        let p = Sym::new(pred);
        check!(
            inst.pred_cardinality(p),
            oracle.pred_cardinality(p),
            "pred_cardinality({pred})"
        );
        check!(
            inst.pred_bucket(p),
            oracle.pred_bucket(p),
            "pred_bucket({pred})"
        );
        for pos in 0..3usize {
            check!(
                inst.distinct_at(p, pos),
                oracle.distinct_at(p, pos),
                "distinct_at({pred}, {pos})"
            );
            for &t in &probes {
                check!(
                    inst.candidates(p, &[(pos, t)]),
                    oracle.candidates(p, &[(pos, t)]),
                    "candidates({pred}, {pos}, {t})"
                );
            }
        }
        check!(
            inst.registered_composites(p),
            oracle.registered_composites(p),
            "registered_composites({pred})"
        );
        let norm = |o: Option<&[FactId]>| o.map(<[FactId]>::to_vec).unwrap_or_default();
        for mask in [0b011u32, 0b101] {
            let positions: Vec<usize> = (0..32).filter(|i| mask & (1 << i) != 0).collect();
            for a in atoms.iter().filter(|a| a.pred() == p) {
                if positions.iter().any(|&i| i >= a.arity()) {
                    continue;
                }
                let key: Vec<Term> = positions.iter().map(|&i| a.terms()[i]).collect();
                check!(
                    norm(inst.composite_candidates(p, mask, &key)),
                    norm(oracle.composite_candidates(p, mask, &key)),
                    "composite({pred}, {mask:#b}, {key:?})"
                );
                // The same key with `to` swapped back to `from` probes the
                // bucket the merge had to empty out.
                let stale: Vec<Term> = key
                    .iter()
                    .map(|&t| if t == to { from } else { t })
                    .collect();
                if stale != key {
                    check!(
                        norm(inst.composite_candidates(p, mask, &stale)),
                        norm(oracle.composite_candidates(p, mask, &stale)),
                        "stale composite({pred}, {mask:#b}, {stale:?})"
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn interning_round_trips_every_ground_term(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let t = ground(&mut rng);
            let id = TermId::from_ground(t).expect("ground terms intern");
            prop_assert_eq!(id.term(), t);
            prop_assert_eq!(id.is_null(), t.is_null());
            prop_assert_eq!(id.as_null(), t.as_null());
        }
        // Variables are the one term kind without an id.
        prop_assert_eq!(TermId::from_ground(Term::var("X")), None);
    }

    #[test]
    fn term_id_order_is_term_order(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let (a, b) = (ground(&mut rng), ground(&mut rng));
            let (ia, ib) = (
                TermId::from_ground(a).unwrap(),
                TermId::from_ground(b).unwrap(),
            );
            prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
            prop_assert_eq!(ia == ib, a == b);
        }
    }

    #[test]
    fn atoms_iterate_in_insertion_order(seed in any::<u64>(), len in 0usize..40) {
        let stream = fact_stream(seed, len);
        let mut inst = Instance::new();
        // Reference: first occurrence of each fact, in stream order.
        let mut expected: Vec<Atom> = Vec::new();
        for a in &stream {
            let new = inst.insert(a.clone());
            prop_assert_eq!(new, !expected.contains(a), "dedup disagrees on {}", a);
            if new {
                expected.push(a.clone());
            }
        }
        prop_assert_eq!(inst.len(), expected.len());
        prop_assert_eq!(inst.atoms(), expected.clone());
        // atom_at / fact views agree with the materialized stream.
        for (i, a) in expected.iter().enumerate() {
            prop_assert_eq!(&inst.atom_at(i as FactId), a);
            let v = inst.fact(i as FactId);
            prop_assert_eq!(v.pred(), a.pred());
            prop_assert_eq!(v.arity(), a.arity());
            for (pos, &t) in a.terms().iter().enumerate() {
                prop_assert_eq!(v.term(pos), t);
                prop_assert_eq!(v.term_id(pos), TermId::from_ground(t).unwrap());
            }
        }
    }

    #[test]
    fn composite_buckets_survive_merges(
        seed in any::<u64>(),
        len in 1usize..30,
        extra_len in 0usize..8,
        merge_null in 0u32..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let merge_to = ground(&mut rng);
        let stream = fact_stream(seed, len);
        let extra = fact_stream(seed.wrapping_add(1), extra_len);
        let mut inst = Instance::new();
        for a in &stream {
            inst.insert(a.clone());
        }
        for pred in ["P", "Q", "R"] {
            inst.register_composite(Sym::new(pred), 0b011);
            inst.register_composite(Sym::new(pred), 0b101);
        }
        inst.merge_terms(Term::null(merge_null), merge_to);
        // Sticky registration: inserts after the merge keep indexing.
        for a in &extra {
            inst.insert(a.clone());
        }
        let atoms = inst.atoms();
        for pred in ["P", "Q", "R"] {
            let p = Sym::new(pred);
            prop_assert_eq!(inst.registered_composites(p), vec![0b011, 0b101]);
            for mask in [0b011u32, 0b101] {
                // Every stored fact covered by the mask must be findable
                // through its own key, in a bucket that exactly equals the
                // brute-force scan.
                for a in atoms.iter().filter(|a| a.pred() == p) {
                    let positions: Vec<usize> =
                        (0..32).filter(|i| mask & (1 << i) != 0).collect();
                    if positions.iter().any(|&i| i >= a.arity()) {
                        continue; // out-of-arity: legitimately unindexed
                    }
                    let key: Vec<Term> =
                        positions.iter().map(|&i| a.terms()[i]).collect();
                    let bucket = inst
                        .composite_candidates(p, mask, &key)
                        .expect("registered mask answers");
                    let scanned: Vec<FactId> = atoms
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| {
                            b.pred() == p
                                && positions
                                    .iter()
                                    .enumerate()
                                    .all(|(k, &i)| b.terms().get(i) == Some(&key[k]))
                        })
                        .map(|(i, _)| i as FactId)
                        .collect();
                    prop_assert_eq!(
                        bucket.to_vec(),
                        scanned,
                        "composite bucket drifted for {} mask {:#b} key {:?}",
                        pred,
                        mask,
                        &key
                    );
                }
            }
        }
        // The merged null is gone from every fact (unless it was merged
        // into itself, which merge_terms treats as a no-op) — except where
        // the post-merge extras legitimately reintroduced it.
        if merge_to != Term::null(merge_null)
            && !extra
                .iter()
                .any(|a| a.terms().contains(&Term::null(merge_null)))
        {
            prop_assert!(!inst.domain().contains(&Term::null(merge_null)));
        }
    }

    #[test]
    fn incremental_merges_match_the_replay_oracle(
        seed in any::<u64>(),
        len in 1usize..40,
        n0 in 0u32..6,
        n2 in 0u32..6,
    ) {
        // A chained null→null→constant merge sequence (plus one extra
        // random merge), each step checked against a from-scratch replay:
        // a fresh store over the pre-merge atom stream with `from`
        // substituted by `to`, inserted in insertion order. The incremental
        // delta pass must be observably identical — same fact stream, same
        // buckets, same statistics — and its MergeEffect must name exactly
        // the surviving rewritten rows.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5_5a5a_0f0f_f0f0);
        let n1 = (n0 + 1 + rng.gen_range(0..5u32)) % 6; // any null but n0
        let c = Term::constant(&format!("pc{}", rng.gen_range(0..12u32)));
        let g = ground(&mut rng);
        let merges = [
            (Term::null(n0), Term::null(n1)),
            (Term::null(n1), c),
            (Term::null(n2), g),
        ];
        let mut inst = Instance::new();
        for a in fact_stream(seed, len) {
            inst.insert(a);
        }
        for pred in ["P", "Q", "R"] {
            inst.register_composite(Sym::new(pred), 0b011);
            inst.register_composite(Sym::new(pred), 0b101);
        }
        for &(from, to) in &merges {
            if from == to {
                continue;
            }
            let pre_atoms = inst.atoms();
            let pre_len = inst.len();
            let pre_epoch = inst.merge_epoch();
            let occurs = pre_atoms.iter().any(|a| a.terms().contains(&from));
            let eff = inst.merge_terms(from, to);
            prop_assert_eq!((eff.from, eff.to), (from, to));
            prop_assert_eq!(
                eff.collapsed,
                pre_len - inst.len(),
                "collapsed must count exactly the rows the merge removed"
            );
            if occurs {
                prop_assert_eq!(inst.merge_epoch(), pre_epoch + 1);
            } else {
                prop_assert!(eff.is_noop(), "no occurrences: merge must be a no-op");
                prop_assert_eq!(
                    inst.merge_epoch(),
                    pre_epoch,
                    "a no-op merge must not bump merge_epoch"
                );
            }
            prop_assert!(
                eff.rewritten.windows(2).all(|w| w[0] < w[1]),
                "rewritten ids must be sorted and unique: {:?}",
                &eff.rewritten
            );
            for &f in &eff.rewritten {
                prop_assert!((f as usize) < inst.len(), "rewritten id {f} out of range");
                prop_assert!(
                    inst.atom_at(f).terms().contains(&to),
                    "rewritten row {f} = {} does not carry the merge target {}",
                    inst.atom_at(f),
                    to
                );
            }
            let oracle = replay_oracle(&substituted(&pre_atoms, from, to));
            let cmp = same_store(&inst, &oracle, (from, to));
            prop_assert!(
                cmp.is_ok(),
                "after merge {} -> {}: {}",
                from,
                to,
                cmp.unwrap_err()
            );
        }
        // Fresh inserts after the chain must dedup identically against the
        // rewritten rows — the dedup-table equivalent of the bucket checks.
        let last = merges[2];
        let mut oracle = replay_oracle(&inst.atoms());
        for a in fact_stream(seed.wrapping_mul(31).wrapping_add(7), 10) {
            prop_assert_eq!(
                inst.insert(a.clone()),
                oracle.insert(a.clone()),
                "post-merge dedup disagrees on {}",
                a
            );
        }
        let cmp = same_store(&inst, &oracle, last);
        prop_assert!(cmp.is_ok(), "after post-merge inserts: {}", cmp.unwrap_err());
    }
}
