//! Property tests for the interned columnar fact store behind
//! [`chase_core::Instance`]:
//!
//! * [`chase_core::TermId`] interning round-trips every ground term, and id
//!   order equals term order (the property that lets canonical selection
//!   sort ids instead of terms without changing any chase trace);
//! * columnar `atoms()` iteration returns exactly the deduplicated insert
//!   stream, in insertion order — the invariant every engine's sharding and
//!   trace reproducibility rest on;
//! * registered composite buckets stay consistent with a brute-force scan
//!   across EGD merges (the id-remap path) and post-merge inserts.
//!
//! The vendored proptest stand-in has no collection strategies, so fact
//! streams are generated from a `u64` seed through a `StdRng`, like the
//! `chase-corpus` random families.

use chase_core::{Atom, FactId, Instance, Sym, Term, TermId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One ground term from a small pool of constants and nulls (small on
/// purpose — collisions are where dedup, buckets, and merges do real work).
fn ground(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.5) {
        Term::constant(&format!("pc{}", rng.gen_range(0..12u32)))
    } else {
        Term::null(rng.gen_range(0..6u32))
    }
}

/// A ground atom over a couple of predicates with arity 1–3.
fn fact(rng: &mut StdRng) -> Atom {
    let pred = ["P", "Q", "R"][rng.gen_range(0..3usize)];
    let arity = rng.gen_range(1..=3usize);
    Atom::new(pred, (0..arity).map(|_| ground(rng)).collect())
}

fn fact_stream(seed: u64, len: usize) -> Vec<Atom> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| fact(&mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn interning_round_trips_every_ground_term(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let t = ground(&mut rng);
            let id = TermId::from_ground(t).expect("ground terms intern");
            prop_assert_eq!(id.term(), t);
            prop_assert_eq!(id.is_null(), t.is_null());
            prop_assert_eq!(id.as_null(), t.as_null());
        }
        // Variables are the one term kind without an id.
        prop_assert_eq!(TermId::from_ground(Term::var("X")), None);
    }

    #[test]
    fn term_id_order_is_term_order(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let (a, b) = (ground(&mut rng), ground(&mut rng));
            let (ia, ib) = (
                TermId::from_ground(a).unwrap(),
                TermId::from_ground(b).unwrap(),
            );
            prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
            prop_assert_eq!(ia == ib, a == b);
        }
    }

    #[test]
    fn atoms_iterate_in_insertion_order(seed in any::<u64>(), len in 0usize..40) {
        let stream = fact_stream(seed, len);
        let mut inst = Instance::new();
        // Reference: first occurrence of each fact, in stream order.
        let mut expected: Vec<Atom> = Vec::new();
        for a in &stream {
            let new = inst.insert(a.clone());
            prop_assert_eq!(new, !expected.contains(a), "dedup disagrees on {}", a);
            if new {
                expected.push(a.clone());
            }
        }
        prop_assert_eq!(inst.len(), expected.len());
        prop_assert_eq!(inst.atoms(), expected.clone());
        // atom_at / fact views agree with the materialized stream.
        for (i, a) in expected.iter().enumerate() {
            prop_assert_eq!(&inst.atom_at(i as FactId), a);
            let v = inst.fact(i as FactId);
            prop_assert_eq!(v.pred(), a.pred());
            prop_assert_eq!(v.arity(), a.arity());
            for (pos, &t) in a.terms().iter().enumerate() {
                prop_assert_eq!(v.term(pos), t);
                prop_assert_eq!(v.term_id(pos), TermId::from_ground(t).unwrap());
            }
        }
    }

    #[test]
    fn composite_buckets_survive_merges(
        seed in any::<u64>(),
        len in 1usize..30,
        extra_len in 0usize..8,
        merge_null in 0u32..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let merge_to = ground(&mut rng);
        let stream = fact_stream(seed, len);
        let extra = fact_stream(seed.wrapping_add(1), extra_len);
        let mut inst = Instance::new();
        for a in &stream {
            inst.insert(a.clone());
        }
        for pred in ["P", "Q", "R"] {
            inst.register_composite(Sym::new(pred), 0b011);
            inst.register_composite(Sym::new(pred), 0b101);
        }
        inst.merge_terms(Term::null(merge_null), merge_to);
        // Sticky registration: inserts after the merge keep indexing.
        for a in &extra {
            inst.insert(a.clone());
        }
        let atoms = inst.atoms();
        for pred in ["P", "Q", "R"] {
            let p = Sym::new(pred);
            prop_assert_eq!(inst.registered_composites(p), vec![0b011, 0b101]);
            for mask in [0b011u32, 0b101] {
                // Every stored fact covered by the mask must be findable
                // through its own key, in a bucket that exactly equals the
                // brute-force scan.
                for a in atoms.iter().filter(|a| a.pred() == p) {
                    let positions: Vec<usize> =
                        (0..32).filter(|i| mask & (1 << i) != 0).collect();
                    if positions.iter().any(|&i| i >= a.arity()) {
                        continue; // out-of-arity: legitimately unindexed
                    }
                    let key: Vec<Term> =
                        positions.iter().map(|&i| a.terms()[i]).collect();
                    let bucket = inst
                        .composite_candidates(p, mask, &key)
                        .expect("registered mask answers");
                    let scanned: Vec<FactId> = atoms
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| {
                            b.pred() == p
                                && positions
                                    .iter()
                                    .enumerate()
                                    .all(|(k, &i)| b.terms().get(i) == Some(&key[k]))
                        })
                        .map(|(i, _)| i as FactId)
                        .collect();
                    prop_assert_eq!(
                        bucket.to_vec(),
                        scanned,
                        "composite bucket drifted for {} mask {:#b} key {:?}",
                        pred,
                        mask,
                        &key
                    );
                }
            }
        }
        // The merged null is gone from every fact (unless it was merged
        // into itself, which merge_terms treats as a no-op) — except where
        // the post-merge extras legitimately reintroduced it.
        if merge_to != Term::null(merge_null)
            && !extra
                .iter()
                .any(|a| a.terms().contains(&Term::null(merge_null)))
        {
            prop_assert!(!inst.domain().contains(&Term::null(merge_null)));
        }
    }
}
