//! Cross-crate chase semantics: the classical guarantees the paper builds
//! on (soundness `I^Σ ⊨ Σ`, order-independence up to homomorphic
//! equivalence, oblivious-vs-standard relationships).

use chase::prelude::*;
use chase_core::homomorphism::{hom_equivalent, instance_hom};
use chase_corpus::paper;

#[test]
fn chase_results_satisfy_sigma() {
    let cases = [
        (paper::intro_alpha1(), paper::intro_instance()),
        (
            paper::example10_sigma(),
            chase_corpus::families::cycle_instance(3),
        ),
        (
            paper::safety_beta(),
            Instance::parse("R(a,b,c). S(b).").unwrap(),
        ),
        (
            paper::data_exchange_baseline(),
            Instance::parse("emp(alice,sales).").unwrap(),
        ),
    ];
    for (sigma, inst) in cases {
        let res = chase_default(&inst, &sigma);
        assert!(res.terminated());
        assert!(sigma.satisfied_by(&res.instance), "I^Σ ⊨ Σ for {sigma}");
    }
}

#[test]
fn original_instance_maps_into_the_result() {
    // For TGD-only sets the chase only adds atoms; with EGDs the original
    // maps in homomorphically.
    let sigma = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z\nS(X) -> E(X,Y)").unwrap();
    let inst = Instance::parse("S(a). E(a,_n5). E(a,b).").unwrap();
    let res = chase_default(&inst, &sigma);
    assert!(res.terminated());
    assert!(instance_hom(&inst, &res.instance).is_some());
}

#[test]
fn different_orders_give_hom_equivalent_results() {
    // Fagin et al.: two terminating chase orders yield homomorphically
    // equivalent results.
    let sigma = paper::example10_sigma();
    let inst = chase_corpus::families::path_instance(4);
    let baseline = chase_default(&inst, &sigma);
    assert!(baseline.terminated());
    for seed in 0..10 {
        let cfg = ChaseConfig {
            strategy: Strategy::Random { seed },
            max_steps: Some(5_000),
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &sigma, &cfg);
        assert!(res.terminated(), "seed {seed}");
        assert!(
            hom_equivalent(&baseline.instance, &res.instance),
            "seed {seed}: orders disagree beyond hom-equivalence"
        );
    }
}

#[test]
fn oblivious_chase_subsumes_standard_results() {
    // The oblivious result contains a homomorphic image of the standard
    // result (it fires a superset of triggers).
    let sigma = paper::intro_alpha1();
    let inst = paper::intro_instance();
    let std_res = chase_default(&inst, &sigma);
    let obl_cfg = ChaseConfig {
        mode: ChaseMode::Oblivious,
        ..ChaseConfig::default()
    };
    let obl_res = chase(&inst, &sigma, &obl_cfg);
    assert!(std_res.terminated());
    assert_eq!(obl_res.reason, StopReason::Satisfied);
    assert!(instance_hom(&std_res.instance, &obl_res.instance).is_some());
    // And it fired strictly more here: n1 already had an outgoing edge.
    assert!(obl_res.fresh_nulls > std_res.fresh_nulls);
}

#[test]
fn c_stratified_sets_terminate_under_every_tested_order() {
    // Theorem 3 exercised: γ is c-stratified; hammer it with random orders.
    let sigma = paper::example2_gamma();
    let inst = chase_corpus::families::cycle_instance(2); // a 2-cycle, E-only
    let inst = {
        // cycle_instance uses S/E; strip to E by rebuilding.
        let mut i = Instance::new();
        for a in inst.iter().filter(|a| a.pred() == Sym::new("E")) {
            i.insert(a.clone());
        }
        i
    };
    for seed in 0..15 {
        let cfg = ChaseConfig {
            strategy: Strategy::Random { seed },
            max_steps: Some(10_000),
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &sigma, &cfg);
        assert!(res.terminated(), "seed {seed}: {:?}", res.reason);
    }
}

#[test]
fn failing_chase_fails_under_every_order() {
    let sigma = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
    let inst = Instance::parse("E(a,b). E(a,c).").unwrap();
    for seed in 0..5 {
        let cfg = ChaseConfig {
            strategy: Strategy::Random { seed },
            ..ChaseConfig::default()
        };
        assert!(chase(&inst, &sigma, &cfg).failed(), "seed {seed}");
    }
}

#[test]
fn satisfied_input_is_a_fixpoint() {
    let sigma = paper::fig9_travel();
    let db = Instance::parse(
        "rail(c1,hub,d1). rail(hub,c1,d1). \
         fly(hub,far,d2). fly(far,hub,d2). \
         hasAirport(hub). hasAirport(far).",
    )
    .unwrap();
    assert!(sigma.satisfied_by(&db));
    let res = chase_default(&db, &sigma);
    assert!(res.terminated());
    assert_eq!(res.steps, 0);
    assert_eq!(res.instance, db);
}
