//! E4/E5 — Example 4 (stratified but divergent) and Example 5 / Theorem 2
//! (the statically constructed terminating order).

use chase::prelude::*;
use chase_corpus::paper;

fn cfg() -> PrecedenceConfig {
    PrecedenceConfig::default()
}

#[test]
fn example4_cyclic_order_reproduces_the_papers_prefix() {
    // The paper's diverging sequence applies α1, α2, α3, α4 cyclically from
    // {R(a)}. Reproduce the first 8 steps exactly (the paper displays two
    // full rounds; its nulls n1, n2 are our _n0, _n1).
    let sigma = paper::example4_sigma();
    let start = paper::example4_instance();
    let chase_cfg = ChaseConfig {
        strategy: Strategy::FixedCycle(vec![0, 1, 2, 3]),
        max_steps: Some(8),
        keep_trace: true,
        ..ChaseConfig::default()
    };
    let res = chase(&start, &sigma, &chase_cfg);
    assert_eq!(res.reason, StopReason::StepLimit(8), "still diverging");
    let fired: Vec<usize> = res.trace.iter().map(|s| s.constraint).collect();
    assert_eq!(fired, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    let expected = Instance::parse(
        "R(a). S(a,a). T(a,_n0). T(a,a). R(_n0). \
         S(_n0,_n0). T(_n0,_n1). T(_n0,_n0). R(_n1).",
    )
    .unwrap();
    assert_eq!(res.instance, expected, "the paper's 8-step instance");
}

#[test]
fn example4_diverges_under_larger_budgets_too() {
    let sigma = paper::example4_sigma();
    let start = paper::example4_instance();
    for budget in [100, 1000] {
        let chase_cfg = ChaseConfig {
            strategy: Strategy::FixedCycle(vec![0, 1, 2, 3]),
            max_steps: Some(budget),
            ..ChaseConfig::default()
        };
        let res = chase(&start, &sigma, &chase_cfg);
        assert_eq!(res.reason, StopReason::StepLimit(budget));
    }
}

#[test]
fn example4_monitor_catches_the_divergence() {
    let sigma = paper::example4_sigma();
    let start = paper::example4_instance();
    let chase_cfg = ChaseConfig {
        strategy: Strategy::FixedCycle(vec![0, 1, 2, 3]),
        ..ChaseConfig::with_monitor_depth(4)
    };
    let res = chase(&start, &sigma, &chase_cfg);
    assert_eq!(res.reason, StopReason::MonitorAbort { depth: 4 });
}

#[test]
fn example5_theorem2_order_terminates_with_the_papers_result() {
    // Theorem 2: chase the SCCs of G(Σ) in topological order. On
    // {R(a), T(b,b)} this terminates with exactly the paper's instance.
    let sigma = paper::example4_sigma();
    let start = paper::example5_instance();
    let phases = stratified_order(&sigma, &cfg());
    let chase_cfg = ChaseConfig {
        strategy: Strategy::Phased(phases),
        ..ChaseConfig::default()
    };
    let res = chase(&start, &sigma, &chase_cfg);
    assert!(res.terminated());
    assert_eq!(res.instance, paper::example5_expected_result());
    assert_eq!(res.fresh_nulls, 0, "the good order invents no nulls here");
}

#[test]
fn theorem2_order_terminates_from_example4s_own_instance() {
    // Even from {R(a)} — where the cyclic order diverges — the Theorem 2
    // order terminates.
    let sigma = paper::example4_sigma();
    let start = paper::example4_instance();
    let phases = stratified_order(&sigma, &cfg());
    let chase_cfg = ChaseConfig {
        strategy: Strategy::Phased(phases),
        max_steps: Some(1000),
        ..ChaseConfig::default()
    };
    let res = chase(&start, &sigma, &chase_cfg);
    assert!(res.terminated(), "stopped as {:?}", res.reason);
    assert!(sigma.satisfied_by(&res.instance));
}

#[test]
fn theorem2_order_terminates_on_random_instances() {
    // Theorem 1: for *every* instance some terminating sequence exists; the
    // Theorem 2 order realizes it. Sweep seeded random instances.
    use chase_corpus::random::{random_instance, RandomInstanceConfig};
    let sigma = paper::example4_sigma();
    let phases = stratified_order(&sigma, &cfg());
    for seed in 0..10 {
        let inst = random_instance(
            &sigma,
            &RandomInstanceConfig {
                facts: 12,
                domain: 4,
                seed,
            },
        );
        let chase_cfg = ChaseConfig {
            strategy: Strategy::Phased(phases.clone()),
            max_steps: Some(20_000),
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &sigma, &chase_cfg);
        assert!(res.terminated(), "seed {seed}: {:?}", res.reason);
        assert!(sigma.satisfied_by(&res.instance), "seed {seed}");
    }
}

#[test]
fn example4_is_the_stratification_counterexample() {
    // The crux of the correction: stratified yes, c-stratified no.
    let sigma = paper::example4_sigma();
    assert!(is_stratified(&sigma, &cfg()).is_yes());
    assert_eq!(is_c_stratified(&sigma, &cfg()), Recognition::No);
}
