//! The planned matcher's core contract: for arbitrary constraint sets and
//! instances, the `chase-plan` join programs enumerate **exactly** the same
//! homomorphism multiset as the unplanned backtracking searcher — for full
//! body enumeration, semi-naive delta re-matching, head activity checks,
//! and delta-seeded head revalidation. Plans change cost, never results;
//! everything the engines' trace equivalence rests on is pinned here at the
//! matcher level.

use chase_core::homomorphism::{find_all_homs, Subst};
use chase_core::{Atom, ConstraintSet, Instance, Sym, Term};
use chase_corpus::random::{random_instance, random_tgds, RandomInstanceConfig, RandomTgdConfig};
use chase_engine::{head_rests, Matcher};
use proptest::prelude::*;

/// Normalized multiset of substitutions (sorted variable bindings, then the
/// whole list sorted) for order-free comparison.
fn multiset(homs: &[Subst]) -> Vec<Vec<(Sym, Term)>> {
    let mut v: Vec<Vec<(Sym, Term)>> = homs.iter().map(|mu| mu.var_bindings()).collect();
    v.sort();
    v
}

fn collect_body(m: &Matcher, ci: usize, set: &ConstraintSet, inst: &Instance) -> Vec<Subst> {
    let mut out = Vec::new();
    m.for_each_body_hom(ci, &set[ci], inst, &mut |mu| {
        out.push(mu.clone());
        false
    });
    out
}

fn collect_delta(
    m: &Matcher,
    ci: usize,
    set: &ConstraintSet,
    inst: &Instance,
    delta: &[Atom],
) -> Vec<Subst> {
    let mut out = Vec::new();
    m.for_each_delta_match(ci, &set[ci], inst, delta, &mut |mu| {
        out.push(mu.clone());
        false
    });
    out
}

/// The whole matcher surface, planned vs unplanned, on one workload.
fn assert_matchers_agree(
    set: &ConstraintSet,
    inst: &mut Instance,
    delta_len: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let planned = Matcher::planned(set, inst);
    let unplanned = Matcher::unplanned();
    let delta: Vec<Atom> = inst.atoms().iter().take(delta_len).cloned().collect();
    for (ci, c) in set.enumerate() {
        // Full-body enumeration: same multiset as the classic searcher.
        let p = collect_body(&planned, ci, set, inst);
        let u = collect_body(&unplanned, ci, set, inst);
        prop_assert_eq!(
            multiset(&p),
            multiset(&u),
            "body multisets differ for constraint {} of:\n{}\non {}",
            ci,
            set,
            inst
        );
        prop_assert_eq!(
            multiset(&p),
            multiset(&find_all_homs(c.body(), inst)),
            "planned matcher diverges from for_each_hom on constraint {}",
            ci
        );
        // Delta re-matching: same multiset (per-delta-atom multiplicity
        // included — both report a match once per delta atom seeding it).
        let pd = collect_delta(&planned, ci, set, inst, &delta);
        let ud = collect_delta(&unplanned, ci, set, inst, &delta);
        prop_assert_eq!(
            multiset(&pd),
            multiset(&ud),
            "delta multisets differ for constraint {} of:\n{}\non {} with delta {:?}",
            ci,
            set,
            inst,
            delta
        );
        // Head checks: activity and delta-seeded revalidation agree hom by
        // hom.
        let Some(t) = c.as_tgd() else { continue };
        let rests = head_rests(t.head());
        for mu in &u {
            prop_assert_eq!(
                planned.is_active(ci, c, inst, mu),
                unplanned.is_active(ci, c, inst, mu),
                "activity differs for constraint {} under {}",
                ci,
                mu
            );
            prop_assert_eq!(
                planned.head_newly_satisfied(ci, t.head(), &rests, inst, &delta, mu),
                unplanned.head_newly_satisfied(ci, t.head(), &rests, inst, &delta, mu),
                "head revalidation differs for constraint {} under {}",
                ci,
                mu
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn planned_matcher_enumerates_the_same_homomorphisms(
        seed in any::<u64>(),
        constraints in 1usize..=4,
        facts in 1usize..24,
        delta_len in 0usize..6,
    ) {
        let set = random_tgds(&RandomTgdConfig {
            constraints,
            predicates: 3,
            max_arity: 3,
            body_atoms: (1, 3),
            head_atoms: (1, 2),
            existential_prob: 0.35,
            seed,
        });
        let mut inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 4, seed });
        assert_matchers_agree(&set, &mut inst, delta_len)?;
    }

    #[test]
    fn planned_matcher_agrees_on_join_heavy_bodies(
        seed in any::<u64>(),
        facts in 4usize..32,
    ) {
        // Wider bodies over fewer predicates: repeated variables and
        // multi-way joins stress the ordering and the composite indexes.
        let set = random_tgds(&RandomTgdConfig {
            constraints: 3,
            predicates: 2,
            max_arity: 3,
            body_atoms: (2, 4),
            head_atoms: (1, 1),
            existential_prob: 0.2,
            seed,
        });
        let mut inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        let delta_len = facts.min(4);
        assert_matchers_agree(&set, &mut inst, delta_len)?;
    }
}

/// Nulls in the data (not just constants): plans must treat them as plain
/// ground values, and the corpus families must agree too.
#[test]
fn corpus_and_null_workloads_agree() {
    use chase_corpus::families;
    let mut cases: Vec<(ConstraintSet, Instance)> = vec![
        (families::copy_chain(4), families::chain_source_instance(3)),
        (families::safe_family(3), families::path_instance(4)),
        (
            chase_corpus::paper::example4_sigma(),
            chase_corpus::paper::example5_instance(),
        ),
        (
            chase_corpus::paper::fig9_travel(),
            chase_corpus::random::random_travel_instance(
                &chase_corpus::random::RandomTravelConfig {
                    cities: 6,
                    flights: 14,
                    rails: 8,
                    seed: 5,
                },
            ),
        ),
    ];
    cases.push((
        ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)\nS(X) -> E(X,Y)").unwrap(),
        Instance::parse("E(a,_n0). E(_n0,b). E(b,_n1). S(a). S(_n1).").unwrap(),
    ));
    for (set, inst) in &mut cases {
        assert_matchers_agree(set, inst, 3).unwrap_or_else(|e| panic!("{e:?}"));
    }
}

/// Plans survive instance growth across statistics epochs: refresh
/// recompiles, matching stays equivalent at every size.
#[test]
fn refresh_keeps_equivalence_across_epochs() {
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z), S(Z) -> E(X,Z)").unwrap();
    let mut inst = Instance::parse("E(a,b). S(b).").unwrap();
    let mut planned = Matcher::planned(&set, &mut inst);
    for i in 0..40 {
        inst.insert(Atom::new(
            "E",
            vec![
                Term::constant(&format!("v{i}")),
                Term::constant(&format!("v{}", i + 1)),
            ],
        ));
        if i % 8 == 0 {
            inst.insert(Atom::new("S", vec![Term::constant(&format!("v{i}"))]));
        }
        planned.refresh(&set, &mut inst);
        let p = collect_body(&planned, 0, &set, &inst);
        assert_eq!(
            multiset(&p),
            multiset(&find_all_homs(set[0].body(), &inst)),
            "divergence after {} inserts",
            i + 1
        );
    }
}
