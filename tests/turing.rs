//! E12 — Theorem 8: the Turing-machine encoding. The chase of the empty
//! instance simulates the machine; marker predicates `B<i>` appear iff the
//! direct simulator fires transition `i`.

use chase::prelude::*;
use chase_corpus::turing::{
    encode, simulate, tm_flipper, tm_infinite, tm_writer, tm_writer_with_unreachable,
};

/// Chase the encoded machine and report which marker rules fired (by the
/// presence of their B-predicates).
fn chase_markers(
    enc: &chase_corpus::turing::TmEncoding,
    max_steps: usize,
) -> (ChaseResult, Vec<bool>) {
    let res = chase(
        &Instance::new(),
        &enc.constraints,
        &ChaseConfig::with_max_steps(max_steps),
    );
    let fired: Vec<bool> = (0..enc.marker_rules.len())
        .map(|i| {
            let b = Sym::new(&format!("B{i}"));
            res.instance.with_pred(b).next().is_some()
        })
        .collect();
    (res, fired)
}

#[test]
fn writer_machine_chase_agrees_with_simulator() {
    let tm = tm_writer(3);
    let sim = simulate(&tm, 1000);
    assert!(sim.halted);
    let enc = encode(&tm);
    let (res, fired) = chase_markers(&enc, 10_000);
    assert!(res.terminated(), "halting machine ⇒ terminating chase");
    for (i, &f) in fired.iter().enumerate() {
        assert_eq!(f, sim.fired.contains(&i), "transition {i}");
    }
}

#[test]
fn flipper_machine_exercises_all_move_kinds() {
    let tm = tm_flipper();
    let sim = simulate(&tm, 1000);
    assert!(sim.halted);
    assert_eq!(sim.fired, vec![0, 1, 2]);
    let enc = encode(&tm);
    let (res, fired) = chase_markers(&enc, 20_000);
    assert!(res.terminated());
    assert_eq!(fired, vec![true, true, true]);
}

#[test]
fn unreachable_transition_never_fires() {
    // The ⇐ direction of Theorem 8's equivalence, on the negative side: the
    // extra transition's marker stays absent.
    let tm = tm_writer_with_unreachable(2);
    let enc = encode(&tm);
    let (res, fired) = chase_markers(&enc, 10_000);
    assert!(res.terminated());
    assert_eq!(fired, vec![true, true, false]);
}

#[test]
fn diverging_machine_diverges_the_chase() {
    let tm = tm_infinite();
    assert!(!simulate(&tm, 200).halted);
    let enc = encode(&tm);
    let (res, fired) = chase_markers(&enc, 300);
    assert!(!res.terminated());
    assert!(fired[0], "the looping transition fires along the way");
}

#[test]
fn encoded_machines_are_far_outside_the_recognized_classes() {
    // Of course: termination of the chase here is TM halting.
    let enc = encode(&tm_infinite());
    assert!(!is_weakly_acyclic(&enc.constraints));
    assert!(!is_safe(&enc.constraints));
}

#[test]
fn chase_tape_row_matches_simulated_tape() {
    // Stronger bisimulation check: the final configuration row of the chase
    // contains exactly the simulator's tape symbols in order. We walk the
    // last row via the head marker of the halting state... rows are chained
    // by T-edges from the begin marker; the newest begin-marker node starts
    // the latest row.
    let tm = tm_writer(2);
    let sim = simulate(&tm, 100);
    let enc = encode(&tm);
    let res = chase(
        &Instance::new(),
        &enc.constraints,
        &ChaseConfig::with_max_steps(10_000),
    );
    assert!(res.terminated());
    // Collect T-edges: src -> (symbol, dst).
    let t = Sym::new("T");
    let edges: Vec<(Term, Sym, Term)> = res
        .instance
        .with_pred(t)
        .map(|a| {
            let ts = a.terms();
            (ts[0], ts[1].as_const().unwrap(), ts[2])
        })
        .collect();
    // Row starts: nodes with an outgoing bMark edge.
    let b_mark = Sym::new("bMark");
    let e_mark = Sym::new("eMark");
    let mut best_row: Vec<Sym> = Vec::new();
    for &(_, sym, ref dst) in edges.iter().filter(|&&(_, s, _)| s == b_mark) {
        assert_eq!(sym, b_mark);
        // Follow the row greedily (the encoding keeps rows deterministic
        // for this machine).
        let mut row = Vec::new();
        let mut node = *dst;
        'walk: loop {
            let next = edges
                .iter()
                .find(|&&(src, s, _)| src == node && s != b_mark);
            match next {
                Some(&(_, s, d)) if s != e_mark => {
                    row.push(s);
                    node = d;
                }
                _ => break 'walk,
            }
        }
        if row.len() > best_row.len() {
            best_row = row;
        }
    }
    let expected: Vec<Sym> = sim.tape.iter().map(|&s| Sym::new(&tm.symbols[s])).collect();
    assert_eq!(best_row, expected, "final tape row mismatch");
}
