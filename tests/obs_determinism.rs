//! Telemetry is write-only: recording must never perturb the chase.
//!
//! The chase-obs recorder threads through the engine's hottest paths
//! (phase timers in the delta re-match, head revalidation, insert and
//! merge repair; events per sampled step). Its contract is that it only
//! *observes* — the trigger selected at every step, and therefore the
//! trace, the step count and the final instance, are bit-identical whether
//! recording is on or off. These tests pin that contract on workloads long
//! enough to cross the per-step sampling boundary (`OBS_SAMPLE_MASK`
//! spaces full-decomposition steps 64 apart) and on an EGD workload where
//! merge repair runs, and additionally assert that the enabled recorder
//! really recorded — a vacuously green determinism check would also pass
//! if instrumentation silently disappeared.

use chase_core::{ConstraintSet, Instance};
use chase_engine::{chase_resume, ChaseConfig, EngineState, ResumeOutcome};
use chase_obs::{EventKind, Phase, Recorder};

/// Chase `inst` under `set` twice — recorder disabled and enabled — and
/// return both outcomes plus the final instances and the live recorder.
fn run_both(
    set: &ConstraintSet,
    inst: &Instance,
    cfg: &ChaseConfig,
) -> (ResumeOutcome, Instance, ResumeOutcome, Instance, Recorder) {
    let mut cold = EngineState::new(inst, set, cfg);
    cold.set_recorder(Recorder::disabled());
    let out_off = chase_resume(&mut cold, set, cfg);
    let inst_off = cold.into_instance();

    let rec = Recorder::enabled(256);
    let mut warm = EngineState::new(inst, set, cfg);
    warm.set_recorder(rec.clone());
    let out_on = chase_resume(&mut warm, set, cfg);
    let inst_on = warm.into_instance();
    (out_off, inst_off, out_on, inst_on, rec)
}

fn assert_identical(set: &ConstraintSet, inst: &Instance) -> Recorder {
    let cfg = ChaseConfig {
        keep_trace: true,
        ..ChaseConfig::default()
    };
    let (off, inst_off, on, inst_on, rec) = run_both(set, inst, &cfg);
    assert_eq!(
        off.reason, on.reason,
        "stop reason must not depend on recording"
    );
    assert_eq!(
        off.steps, on.steps,
        "step count must not depend on recording"
    );
    assert_eq!(
        off.fresh_nulls, on.fresh_nulls,
        "null invention must not depend on recording"
    );
    assert_eq!(
        format!("{:?}", off.trace),
        format!("{:?}", on.trace),
        "traces must be bit-identical with recording on"
    );
    assert_eq!(
        format!("{inst_off}"),
        format!("{inst_on}"),
        "final instances must be identical"
    );
    rec
}

#[test]
fn tgd_trace_identical_across_sampling_boundary() {
    // Transitive closure over a 14-node chain: ~90 steps, so the run
    // crosses the 64-step sampling grid and mixes sampled and unsampled
    // steps.
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    let facts: Vec<String> = (0..14).map(|i| format!("E(n{i},n{}).", i + 1)).collect();
    let inst = Instance::parse(&facts.join(" ")).unwrap();

    let rec = assert_identical(&set, &inst);

    // The enabled run must have genuinely recorded: inserts from both
    // sampled steps, a resume bracket, and sampled step events.
    assert!(rec.phase_snapshot(Phase::Insert).count() >= 2);
    assert!(rec.phase_snapshot(Phase::DeltaMatch).count() >= 1);
    let events = rec.events();
    assert!(events.iter().any(|e| e.kind == EventKind::ResumeBegin));
    assert!(events.iter().any(|e| e.kind == EventKind::ResumeEnd));
    assert!(events.iter().any(|e| e.kind == EventKind::StepFired));
}

#[test]
fn egd_merge_trace_identical() {
    // TGD growth plus an EGD collapsing the invented null onto a constant:
    // the null also lives in `S`, so the merge rewrites a surviving row and
    // merge repair (plus the EgdMerge event) runs on the enabled side.
    let set = ConstraintSet::parse("P(X) -> R(X,Y), S(Y); R(X,Y), R(X,Z) -> Y = Z; S(Y) -> Q(Y)")
        .unwrap();
    let inst = Instance::parse("P(a). P(b). R(a,c1). R(b,c2).").unwrap();

    let rec = assert_identical(&set, &inst);

    assert!(rec.phase_snapshot(Phase::MergeRepair).count() >= 1);
    assert!(rec.events().iter().any(|e| e.kind == EventKind::EgdMerge));
}
