//! Edge-case coverage across crates: intro idea 2 (harmless nulls), EGD
//! merge cascades, empty-body constraints, parser failure modes, strategy
//! corner cases.

use chase::prelude::*;
use chase_corpus::paper;

fn pc() -> PrecedenceConfig {
    PrecedenceConfig::default()
}

#[test]
fn intro_idea2_harmless_nulls_are_safe() {
    // α3 := S(x), E(x,y) → ∃z E(z,x): creates nulls at E^1, but S^1 is
    // never affected, so the cascade is bounded — exactly the paper's
    // "identification of harmless null values". Safety recognizes it.
    let s = paper::intro_alpha3();
    assert!(!is_weakly_acyclic(&s));
    assert!(is_safe(&s));
    // And the chase indeed terminates: on a path only the head node lacks
    // a predecessor, and the invented one is never special, so the cascade
    // stops immediately.
    let inst = chase_corpus::families::path_instance(6);
    let res = chase_default(&inst, &s);
    assert!(res.terminated());
    assert_eq!(res.fresh_nulls, 1, "only v0 needs an invented predecessor");
    // On a cycle every node already has one: zero steps.
    let res = chase_default(&chase_corpus::families::cycle_instance(6), &s);
    assert!(res.terminated());
    assert_eq!(res.steps, 0);
}

#[test]
fn egd_merge_cascades_through_shared_nulls() {
    // Functional dependency firing twice, second firing enabled by the
    // first merge.
    let set = ConstraintSet::parse("F(X,Y), F(X,Z) -> Y = Z").unwrap();
    let inst = Instance::parse("F(a,_n0). F(a,b). F(_n0,c). F(b,_n1).").unwrap();
    let res = chase_default(&inst, &set);
    assert!(res.terminated());
    // _n0 merged into b; then F(b,c) and F(b,_n1) force _n1 = c.
    assert_eq!(res.instance, Instance::parse("F(a,b). F(b,c).").unwrap());
}

#[test]
fn egd_failure_after_merge() {
    // First merge succeeds, the uncovered constant pair then fails.
    let set = ConstraintSet::parse("F(X,Y), F(X,Z) -> Y = Z").unwrap();
    let inst = Instance::parse("F(a,_n0). F(a,b). F(b,c). F(b,d).").unwrap();
    let res = chase_default(&inst, &set);
    assert!(res.failed());
}

#[test]
fn empty_body_tgd_fires_once_even_on_empty_instance() {
    let set = ConstraintSet::parse("-> S(X), E(X,Y)").unwrap();
    let res = chase_default(&Instance::new(), &set);
    assert!(res.terminated());
    assert_eq!(res.steps, 1);
    assert_eq!(res.instance.len(), 2);
    assert_eq!(res.fresh_nulls, 2);
}

#[test]
fn constants_in_constraints_are_respected() {
    let set = ConstraintSet::parse("E(c1,X) -> marked(X)").unwrap();
    let inst = Instance::parse("E(c1,a). E(c2,b).").unwrap();
    let res = chase_default(&inst, &set);
    assert!(res.terminated());
    assert!(res
        .instance
        .contains(&chase_core::parser::parse_atom("marked(a)").unwrap()));
    assert!(!res
        .instance
        .contains(&chase_core::parser::parse_atom("marked(b)").unwrap()));
}

#[test]
fn fixed_cycle_with_repeats_and_gaps() {
    // A cycle order may repeat constraints and omit others; the final
    // round-robin guarantee comes from termination detection per pass.
    let set = ConstraintSet::parse("S(X) -> T(X)\nT(X) -> U(X)").unwrap();
    let inst = Instance::parse("S(a).").unwrap();
    let cfg = ChaseConfig {
        strategy: Strategy::FixedCycle(vec![1, 1, 0]),
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &set, &cfg);
    assert!(res.terminated());
    assert_eq!(res.instance.len(), 3);
}

#[test]
fn phased_strategy_covers_missing_constraints() {
    // Phases that omit a constraint still end satisfied thanks to the
    // safety-net pass.
    let set = ConstraintSet::parse("S(X) -> T(X)\nT(X) -> U(X)").unwrap();
    let inst = Instance::parse("S(a).").unwrap();
    let cfg = ChaseConfig {
        strategy: Strategy::Phased(vec![vec![0]]),
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &set, &cfg);
    assert!(res.terminated());
    assert!(set.satisfied_by(&res.instance));
}

#[test]
fn parser_rejects_malformed_inputs() {
    for bad in [
        "S(X) ->", // missing head
        "-> ",     // empty everything
        "S(X) -> T(X",
        "S(X) T(X)",             // missing arrow
        "S(X) -> X = ",          // half an EGD
        "s(X) -> T(X) extra(Y)", // trailing garbage
        "E(X,Y) -> x = Y",       // EGD over a constant
    ] {
        assert!(ConstraintSet::parse(bad).is_err(), "accepted: {bad}");
    }
    for bad in ["S(X).", "S(_weird).", "S(a"] {
        assert!(Instance::parse(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn arity_consistency_is_enforced_across_sides() {
    assert!(ConstraintSet::parse("S(X) -> S(X,Y)").is_err());
    assert!(ConstraintSet::parse("S(X) -> T(X)\nT(X,Y) -> S(X)").is_err());
}

#[test]
fn analysis_of_single_constraint_families_is_stable() {
    // Sweep the corpus families at size 1 — degenerate but legal inputs.
    use chase_corpus::families::*;
    for set in [
        copy_chain(1),
        lav_star(1),
        safe_family(1),
        stratified_family(1),
        full_tgd_cycle(1),
        divergent_family(1),
    ] {
        // No panics, definite verdicts.
        let r = analyze(&set, 3, &pc());
        let _ = r.to_string();
        assert!(!r.t_level_unknown);
    }
}

#[test]
fn full_tgd_cycles_are_safe_and_terminate() {
    let set = chase_corpus::families::full_tgd_cycle(4);
    assert!(is_safe(&set), "no existentials ⇒ safe");
    let inst = Instance::parse("R0(a,b).").unwrap();
    let res = chase_default(&inst, &set);
    assert!(res.terminated());
    // The fact orbits the cycle: R1(b,a), R2(a,b), R3(b,a), R0(a,b)✓ …
    assert_eq!(res.instance.len(), 4);
}

#[test]
fn monitor_and_null_budget_compose() {
    let set = paper::intro_alpha2();
    let inst = Instance::parse("S(a).").unwrap();
    // Whichever guard trips first stops the run.
    let cfg = ChaseConfig {
        monitor_depth: Some(50), // effectively disabled
        max_nulls: Some(5),
        max_steps: None,
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &set, &cfg);
    assert_eq!(res.reason, StopReason::NullLimit(5));
    let cfg = ChaseConfig {
        monitor_depth: Some(2),
        max_nulls: Some(1_000),
        max_steps: None,
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &set, &cfg);
    assert_eq!(res.reason, StopReason::MonitorAbort { depth: 2 });
}

#[test]
fn core_chase_is_exposed_through_the_prelude() {
    let set = ConstraintSet::parse("D(X) -> E(X,Y)\nE(X,Y) -> D(Y)\nE(X,Y) -> E(X,X)").unwrap();
    let inst = Instance::parse("D(a).").unwrap();
    let res = core_chase(&inst, &set, 20);
    assert!(res.satisfied);
    assert_eq!(res.instance, Instance::parse("D(a). E(a,a).").unwrap());
    assert!(is_core(&res.instance));
}

#[test]
fn deeply_chained_instances_stress_the_indexes() {
    // A 300-fact chain through the homomorphism engine and the chase.
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> P(X,Z)").unwrap();
    let mut text = String::new();
    for i in 0..300 {
        text.push_str(&format!("E(v{i},v{}). ", i + 1));
    }
    let inst = Instance::parse(&text).unwrap();
    let res = chase(&inst, &set, &ChaseConfig::with_max_steps(5_000));
    assert!(res.terminated());
    assert_eq!(res.instance.len(), 300 + 299);
}
