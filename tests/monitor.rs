//! E14 — the monitor graph (Examples 17/18) and the pay-as-you-go guard
//! (Proposition 11).

use chase::prelude::*;
use chase_corpus::paper;

#[test]
fn example17_monitor_graph_matches_the_paper() {
    // Σ3 (arity 3) on {S(a1), S(a2), S(a3), R(a1,a2,a3)}: the only chase
    // sequence has three steps; the monitor graph is the path
    // (y1) → (y2) → (y3) sharing one signature, plus the edge (y1) → (y3)
    // with a different body-position label.
    let sigma = paper::sigma_family(3);
    let inst = paper::example17_instance();
    let cfg = ChaseConfig {
        keep_monitor: true,
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &sigma, &cfg);
    assert!(res.terminated());
    assert_eq!(res.steps, 3);
    let g = res.monitor.expect("monitor kept");
    assert_eq!(g.nodes().len(), 3);
    assert_eq!(g.edges().len(), 3);
    // All three nulls were created in position R^1.
    for n in g.nodes() {
        let pos: Vec<String> = n.positions.iter().map(|p| p.to_string()).collect();
        assert_eq!(pos, vec!["R^1"]);
    }
    // Example 18: 2-cyclic but not 3-cyclic.
    assert!(g.is_k_cyclic(2));
    assert!(!g.is_k_cyclic(3));
    assert_eq!(g.max_chain(), 2);
}

#[test]
fn prop11_sequences_are_exactly_k_minus_1_cyclic() {
    for k in 2..=6 {
        let (sigma, inst) = paper::prop11_family(k);
        let cfg = ChaseConfig {
            keep_monitor: true,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &sigma, &cfg);
        assert!(res.terminated(), "k={k}");
        let g = res.monitor.expect("monitor kept");
        assert!(g.is_k_cyclic(k - 1), "k={k}: must be (k−1)-cyclic");
        assert!(!g.is_k_cyclic(k), "k={k}: must not be k-cyclic");
    }
}

#[test]
fn prop11_pay_as_you_go_depth_choice() {
    // Depth k lets the chase finish; depth k−1 aborts it. "For larger
    // k-values the chase succeeds in more cases."
    for k in 3..=6 {
        let (sigma, inst) = paper::prop11_family(k);
        let permissive = chase(&inst, &sigma, &ChaseConfig::with_monitor_depth(k));
        assert!(permissive.terminated(), "k={k} with depth k");
        let strict = chase(&inst, &sigma, &ChaseConfig::with_monitor_depth(k - 1));
        assert_eq!(
            strict.reason,
            StopReason::MonitorAbort { depth: k - 1 },
            "k={k} with depth k−1"
        );
    }
}

#[test]
fn prop11_family_is_not_inductively_restricted() {
    // Proposition 11(a): the data-independent conditions all fail, yet the
    // chase terminates on Ik — the motivation for data-dependent guards.
    let pc = PrecedenceConfig::default();
    for k in 2..=3 {
        let (sigma, _) = paper::prop11_family(k);
        assert_eq!(
            is_inductively_restricted(&sigma, &pc),
            Recognition::No,
            "k={k}"
        );
    }
}

#[test]
fn genuinely_divergent_runs_trip_any_depth() {
    // Lemma 5: an infinite sequence has k-cyclic prefixes for every k.
    let sigma = paper::intro_alpha2();
    let inst = paper::intro_instance();
    for depth in 2..=5 {
        let res = chase(&inst, &sigma, &ChaseConfig::with_monitor_depth(depth));
        assert_eq!(res.reason, StopReason::MonitorAbort { depth });
    }
}

#[test]
fn terminating_runs_have_bounded_chains() {
    // For every terminating sequence there is a k such that it is not
    // k-cyclic — the converse direction justifying pay-as-you-go.
    let sigma = paper::example10_sigma();
    let inst = chase_corpus::families::cycle_instance(4);
    let cfg = ChaseConfig {
        keep_monitor: true,
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &sigma, &cfg);
    assert!(res.terminated());
    let g = res.monitor.expect("monitor kept");
    assert!(!g.is_k_cyclic(g.max_chain() + 1));
}

#[test]
fn monitor_overhead_reports_graph_size() {
    // The monitor graph is polynomial in the run: nodes = fresh nulls.
    let sigma = paper::intro_alpha2();
    let inst = Instance::parse("S(a).").unwrap();
    let cfg = ChaseConfig {
        keep_monitor: true,
        max_steps: Some(40),
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &sigma, &cfg);
    let g = res.monitor.expect("monitor kept");
    assert_eq!(g.nodes().len(), res.fresh_nulls);
}
