//! E3 — the position graphs of Figures 3 and 6, with DOT exports.

use chase::prelude::*;
use chase_corpus::paper;

#[test]
fn figure3_dependency_graph_of_the_travel_schema() {
    let sigma = paper::fig9_travel();
    let g = dependency_graph(&sigma);
    // Nodes: every position of fly, rail, hasAirport (3 + 3 + 1).
    assert_eq!(g.positions.len(), 7);
    // Example 1's witness: the special self-loop fly^2 *→ fly^2 from α3.
    let fly2 = Position::new("fly", 1);
    assert!(g.edges().contains(&(fly2, fly2, true)));
    // α2 gives rail-position swaps.
    let rail1 = Position::new("rail", 0);
    let rail2 = Position::new("rail", 1);
    assert!(g.edges().contains(&(rail1, rail2, false)));
    assert!(g.edges().contains(&(rail2, rail1, false)));
    // α1 copies fly positions into hasAirport.
    let fly1 = Position::new("fly", 0);
    let ha = Position::new("hasAirport", 0);
    assert!(g.edges().contains(&(fly1, ha, false)));
    assert!(g.edges().contains(&(fly2, ha, false)));
    assert!(g.has_special_cycle());
}

#[test]
fn figure6_dependency_vs_propagation_graph() {
    // Left of Figure 6: dep(β) has a special cycle; right: prop(β) has the
    // single node R^2 and no edges.
    let beta = paper::safety_beta();
    let dep = dependency_graph(&beta);
    assert!(dep.has_special_cycle());
    let prop = propagation_graph(&beta);
    assert_eq!(prop.positions, vec![Position::new("R", 1)]);
    assert!(prop.edges().is_empty());
}

#[test]
fn dot_exports_are_well_formed() {
    let sigma = paper::fig9_travel();
    let dep = dependency_graph(&sigma).to_dot("dep");
    assert!(dep.starts_with("digraph dep {"));
    assert!(dep.contains("fly^2"));
    assert!(dep.contains("style=dashed"), "special edges drawn dashed");
    assert!(dep.trim_end().ends_with('}'));

    let pc = PrecedenceConfig::default();
    let cg = chase_graph(&paper::example4_sigma(), &pc).to_dot("chase");
    assert!(cg.contains("α1") && cg.contains("α4"));
}

#[test]
fn affected_positions_of_the_travel_schema() {
    // α3 invents values in fly^2 and fly^3; fly^2 feeds itself and fly^1
    // via the copy of C2... Exact fixpoint:
    let sigma = paper::fig9_travel();
    let aff = affected_positions(&sigma);
    assert!(aff.contains(&Position::new("fly", 1)));
    assert!(aff.contains(&Position::new("fly", 2)));
    // hasAirport^1 receives C2 which occurs at the affected fly^2 — but C2
    // (in α1) also occurs nowhere else, so hasAirport^1 is affected via α1
    // once fly^1/fly^2 are.
    assert!(aff.contains(&Position::new("hasAirport", 0)));
}

#[test]
fn example4_chase_graphs_figures_4_and_5() {
    let sigma = paper::example4_sigma();
    let pc = PrecedenceConfig::default();
    // Figure 4 (standard ≺): α2 is a sink; cycle α1 → α3 → α4 → α1.
    let g = chase_graph(&sigma, &pc);
    assert!(g.graph.successors(1).is_empty());
    let sccs = g.graph.nontrivial_sccs();
    assert_eq!(sccs, vec![vec![0, 2, 3]]);
    // Figure 5 (≺c): one component containing everything.
    let gc = c_chase_graph(&sigma, &pc);
    assert_eq!(gc.graph.nontrivial_sccs(), vec![vec![0, 1, 2, 3]]);
}
