//! E2 — Figure 2 / Example 15: the T-hierarchy is strict, and levels track
//! the arity of the Σ-family.

use chase::prelude::*;
use chase_corpus::paper;

fn cfg() -> PrecedenceConfig {
    PrecedenceConfig::default()
}

#[test]
fn fig2_sits_exactly_at_t3() {
    let s = paper::fig2_sigma();
    assert_eq!(check(&s, 2, &cfg()), Recognition::No);
    assert_eq!(check(&s, 3, &cfg()), Recognition::Yes);
    assert_eq!(t_level(&s, 5, &cfg()), (Some(3), false));
}

#[test]
fn family_levels_track_arity() {
    // The arity-n member sits in T[n+1] \ T[n] (DESIGN.md §4.3: the paper's
    // Figure 2 anchor; Example 15's prose is off by one against it).
    for arity in 2..=4 {
        let s = paper::sigma_family(arity);
        let (level, indefinite) = t_level(&s, arity + 2, &cfg());
        assert!(!indefinite, "arity {arity}: search was indefinite");
        assert_eq!(level, Some(arity + 1), "arity {arity}");
    }
}

#[test]
fn levels_are_upward_closed() {
    // Proposition 5: T[k] ⊆ T[k+1].
    for arity in 2..=3 {
        let s = paper::sigma_family(arity);
        let mut seen_yes = false;
        for k in 2..=arity + 2 {
            let r = check(&s, k, &cfg());
            if seen_yes {
                assert!(r.is_yes(), "arity {arity}: T[{k}] lost membership");
            }
            if r.is_yes() {
                seen_yes = true;
            }
        }
        assert!(seen_yes);
    }
}

#[test]
fn family_members_terminate_on_their_canonical_instances() {
    // The point of the hierarchy: these sets do terminate (every sequence).
    for arity in 2..=5 {
        let (sigma, inst) = paper::prop11_family(arity);
        let res = chase_default(&inst, &sigma);
        assert!(res.terminated(), "arity {arity}");
        // Exactly arity steps: the cascade walks the R-tuple once.
        assert_eq!(res.steps, arity, "arity {arity}");
    }
}

#[test]
fn intro_alpha2_stays_outside_every_level() {
    let s = paper::intro_alpha2();
    let (level, indefinite) = t_level(&s, 5, &cfg());
    assert!(!indefinite);
    assert_eq!(level, None);
}

#[test]
fn restriction_system_edges_thin_out_with_k() {
    // The mechanism behind the levels: the arity-3 member has a 2- and
    // 3-self-loop but an edgeless 4-restriction system.
    let s = paper::sigma_family(3);
    let rs2 = minimal_restriction_system(&s, 2, &cfg());
    assert!(rs2.edges.contains(&(0, 0)));
    let rs3 = minimal_restriction_system(&s, 3, &cfg());
    assert!(rs3.edges.contains(&(0, 0)));
    let rs4 = minimal_restriction_system(&s, 4, &cfg());
    assert!(rs4.edges.is_empty(), "got {:?}", rs4.edges);
}
