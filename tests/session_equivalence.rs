//! The serving layer's correctness contract: a [`ChaseSession`] that
//! absorbs update batches `B1..Bn` warm must be indistinguishable — up to
//! core isomorphism and certain answers — from chasing `B1 ∪ … ∪ Bn` from
//! scratch.
//!
//! Warm and cold runs generally do *not* produce equal instances: the warm
//! session chases earlier batches before later ones arrive, so it can
//! invent nulls a from-scratch chase of the union never needs (a base fact
//! arriving in a later batch may satisfy a TGD the warm session already
//! fired). What the chase actually promises is a *universal model*, and
//! universal models of the same base facts have isomorphic cores. These
//! tests pin exactly that, over paper-corpus-derived and seeded random
//! families, plus the exact equality of certain answers — the observable a
//! serving deployment actually exposes.

use chase::prelude::*;
use chase_core::homomorphism::hom_equivalent;
use chase_corpus::random::{
    random_instance, random_tgds, random_travel_stream, update_stream, RandomInstanceConfig,
    RandomTgdConfig, RandomTravelConfig, UpdateStreamConfig,
};
use chase_engine::chase;
use chase_serve::ChaseSession;

/// Chase the union of all batches from scratch.
fn scratch_chase(set: &ConstraintSet, batches: &[Vec<Atom>], cfg: &ChaseConfig) -> ChaseResult {
    let mut union = Instance::new();
    for b in batches {
        union.extend(b.iter().cloned());
    }
    chase(&union, set, cfg)
}

/// Drive a fresh session over the stream and return it.
fn warm_session(set: &ConstraintSet, batches: &[Vec<Atom>], cfg: &SessionConfig) -> ChaseSession {
    let mut s = ChaseSession::with_config(set.clone(), cfg.clone());
    for (i, b) in batches.iter().enumerate() {
        let out = s
            .apply(b.iter().cloned())
            .unwrap_or_else(|e| panic!("batch {i} refused: {e}"));
        assert_eq!(
            out.reason,
            StopReason::Satisfied,
            "batch {i} did not quiesce"
        );
    }
    s
}

/// The pin: warm-session result and from-scratch result have isomorphic
/// cores, and the given queries return exactly the same certain answers.
fn assert_session_equivalent(
    name: &str,
    set: &ConstraintSet,
    batches: &[Vec<Atom>],
    queries: &[&str],
) {
    let scfg = SessionConfig::default();
    let mut session = warm_session(set, batches, &scfg);
    let scratch = scratch_chase(set, batches, &scfg.chase);
    assert!(
        scratch.terminated(),
        "{name}: from-scratch chase must terminate for this pin"
    );
    let warm_core = core_of(session.instance());
    let cold_core = core_of(&scratch.instance);
    assert_eq!(
        warm_core.len(),
        cold_core.len(),
        "{name}: cores differ in size\nwarm: {warm_core}\ncold: {cold_core}"
    );
    assert!(
        hom_equivalent(&warm_core, &cold_core),
        "{name}: cores are not hom-equivalent (hence not isomorphic)\nwarm: {warm_core}\ncold: {cold_core}"
    );
    for q_text in queries {
        let q = ConjunctiveQuery::parse(q_text).unwrap();
        let warm_answers = session.query(&q).unwrap();
        let cold_answers = q.evaluate_certain(&scratch.instance);
        assert_eq!(
            warm_answers, cold_answers,
            "{name}: certain answers differ for {q_text}"
        );
    }
}

/// Travel corpus (the terminating part of Figure 9: airport extraction and
/// rail symmetry) over seeded travel update streams.
#[test]
fn travel_streams_match_from_scratch() {
    let set = ConstraintSet::parse(
        "fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)\n\
         rail(C1,C2,D) -> rail(C2,C1,D)",
    )
    .unwrap();
    for seed in 0..3 {
        let stream = random_travel_stream(
            &RandomTravelConfig {
                cities: 16,
                flights: 60,
                rails: 40,
                seed,
            },
            5,
        );
        assert_session_equivalent(
            &format!("travel(seed {seed})"),
            &set,
            &stream,
            &[
                "airports(C) <- hasAirport(C)",
                "back(X,D) <- rail(city0,X,D), rail(X,city0,D)",
            ],
        );
    }
}

/// Transitive closure over random edge streams: null-free, so this also
/// exercises exact-instance agreement through the core check.
#[test]
fn transitive_closure_streams_match_from_scratch() {
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    for seed in 0..3 {
        let edges = random_instance(
            &set,
            &RandomInstanceConfig {
                facts: 30,
                domain: 8,
                seed,
            },
        );
        let stream = update_stream(&edges, &UpdateStreamConfig { batches: 6, seed });
        assert_session_equivalent(
            &format!("tc(seed {seed})"),
            &set,
            &stream,
            &["q(X,Y) <- E(X,Y)", "loop(X) <- E(X,X)"],
        );
    }
}

/// The null-inventing family (intro α1 plus closure): a warm session
/// invents nulls for S-facts whose base E-edge only arrives in a later
/// batch, so warm and cold instances genuinely differ — only their cores
/// agree. This is the pin that makes `core_of` necessary.
#[test]
fn null_inventing_streams_match_up_to_core() {
    let set = ConstraintSet::parse(
        "S(X) -> E(X,Y)\n\
         E(X,Y), E(Y,Z) -> E(X,Z)",
    )
    .unwrap();
    // Hand-built stream: S(a) chases before E(a,b) arrives.
    let batches: Vec<Vec<Atom>> = vec![
        Instance::parse("S(a). S(b).").unwrap().atoms(),
        Instance::parse("E(a,b). E(b,c).").unwrap().atoms(),
        Instance::parse("S(c). E(c,a).").unwrap().atoms(),
    ];
    // Sanity: the warm path really does invent more nulls than cold.
    let warm = warm_session(&set, &batches, &SessionConfig::default());
    let cold = scratch_chase(&set, &batches, &ChaseConfig::default());
    assert!(
        warm.instance().nulls().len() > cold.instance.nulls().len(),
        "expected the warm path to over-invent nulls (warm {:?} vs cold {:?})",
        warm.instance().nulls(),
        cold.instance.nulls()
    );
    assert_session_equivalent(
        "lav_tc",
        &set,
        &batches,
        &["q(X,Y) <- E(X,Y)", "q2(X) <- E(a,X)"],
    );

    // Seeded variants: random S/E streams over a small domain.
    for seed in 0..3 {
        let base = random_instance(
            &set,
            &RandomInstanceConfig {
                facts: 25,
                domain: 6,
                seed: 100 + seed,
            },
        );
        let mut with_sources = base.clone();
        for i in 0..4 {
            with_sources.insert(Atom::new("S", vec![Term::constant(&format!("c{i}"))]));
        }
        let stream = update_stream(&with_sources, &UpdateStreamConfig { batches: 5, seed });
        assert_session_equivalent(
            &format!("lav_tc(seed {seed})"),
            &set,
            &stream,
            &["q(X,Y) <- E(X,Y)"],
        );
    }
}

/// EGD keys over nulls: merges force the session's pool rebuild path
/// mid-stream, the hardest state to keep warm correctly.
#[test]
fn egd_merge_streams_match_from_scratch() {
    let set = ConstraintSet::parse(
        "S(X) -> E(X,Y)\n\
         E(X,Y), E(X,Z) -> Y = Z",
    )
    .unwrap();
    // S-facts arrive first (inventing null targets), the real edges later
    // (merging the nulls away) — every batch boundary crosses a merge.
    let batches: Vec<Vec<Atom>> = vec![
        Instance::parse("S(a). S(b). S(c).").unwrap().atoms(),
        Instance::parse("E(a,u). E(b,v).").unwrap().atoms(),
        Instance::parse("S(d). E(c,w).").unwrap().atoms(),
        Instance::parse("E(d,x).").unwrap().atoms(),
    ];
    assert_session_equivalent(
        "egd_keys",
        &set,
        &batches,
        &["q(X,Y) <- E(X,Y)", "q2(Y) <- E(a,Y)"],
    );
}

/// Seeded random TGD sets: any seed whose from-scratch chase terminates in
/// budget must agree with the warm session. Divergent seeds are skipped
/// (the contract under comparison is about terminating chases).
#[test]
fn random_tgd_streams_match_from_scratch() {
    let mut checked = 0;
    for seed in 0..8 {
        let set = random_tgds(&RandomTgdConfig {
            constraints: 4,
            predicates: 3,
            max_arity: 2,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.2,
            seed,
        });
        let inst = random_instance(
            &set,
            &RandomInstanceConfig {
                facts: 15,
                domain: 5,
                seed,
            },
        );
        let cfg = ChaseConfig::with_max_steps(2_000);
        let scratch = chase(&inst, &set, &cfg);
        if !scratch.terminated() {
            continue; // divergent seed: no universal model to compare
        }
        let stream = update_stream(&inst, &UpdateStreamConfig { batches: 4, seed });
        assert_session_equivalent(&format!("random(seed {seed})"), &set, &stream, &[]);
        checked += 1;
    }
    assert!(
        checked >= 3,
        "too few terminating random seeds ({checked}) — regenerate the family"
    );
}
