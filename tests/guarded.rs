//! E15 — Section 5: weakly/restrictedly guarded sets and the guarded null
//! property (Lemma 7), validated over randomized chase orders.

use chase::prelude::*;
use chase_corpus::paper;
use chase_guarded::guards::{is_restrictedly_guarded, is_weakly_guarded};
use chase_guarded::nullprop::guarded_null_property;
use chase_guarded::qa::certain_answers;

fn pc() -> PrecedenceConfig {
    PrecedenceConfig::default()
}

/// The definition-faithful WG ⊊ RG separation witness (DESIGN.md §4.2).
fn separation_witness() -> ConstraintSet {
    ConstraintSet::parse(
        "R(X1,X2,X3), S(X2) -> R(X2,Y,X1)\n\
         R(A,U,B), T(U), R(C,V,D), T(V) -> H(U,V)",
    )
    .unwrap()
}

#[test]
fn separation_witness_separates_the_classes() {
    let s = separation_witness();
    assert!(!is_weakly_guarded(&s));
    assert_eq!(is_restrictedly_guarded(&s, &pc()), Recognition::Yes);
}

#[test]
fn example19_wg_failure_matches_the_paper() {
    // The paper's WG-side claim about Example 19 holds verbatim; the RG
    // side depends on the per-constraint f (see DESIGN.md §4.2) and is
    // covered by unit tests in chase-guarded.
    assert!(!is_weakly_guarded(&paper::example19_guarded()));
}

#[test]
fn rg_sets_have_the_guarded_null_property_on_random_orders() {
    // Lemma 7(3): every chase sequence of an RG set has the guarded null
    // property. Drive many random orders through the checker.
    let s = separation_witness();
    let inst = Instance::parse("R(a,b,c). S(b). T(b). T(c). R(c,b,a). R(b,a,c).").unwrap();
    for seed in 0..20 {
        let cfg = ChaseConfig {
            strategy: Strategy::Random { seed },
            keep_trace: true,
            max_steps: Some(2_000),
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &s, &cfg);
        assert!(res.terminated(), "seed {seed}: {:?}", res.reason);
        assert!(
            guarded_null_property(&res.trace, &s, &inst).is_none(),
            "seed {seed}: guarded null property violated"
        );
    }
}

#[test]
fn weakly_guarded_sets_also_have_the_property() {
    // WG ⊆ RG, so Lemma 7(3) applies a fortiori.
    let s = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
    assert!(is_weakly_guarded(&s));
    let inst = Instance::parse("S(a).").unwrap();
    for seed in 0..5 {
        let cfg = ChaseConfig {
            strategy: Strategy::Random { seed },
            keep_trace: true,
            max_steps: Some(30),
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &s, &cfg);
        // Divergent, but every *prefix* must satisfy the property.
        assert!(guarded_null_property(&res.trace, &s, &inst).is_none());
    }
}

#[test]
fn unguarded_set_violates_the_property() {
    // The contrapositive sanity check for the checker itself.
    let s = ConstraintSet::parse(
        "A(X) -> P(Z)\n\
         B(X) -> Q(Z)\n\
         P(X), Q(Y) -> R(X,Y)",
    )
    .unwrap();
    assert!(!is_weakly_guarded(&s));
    assert_eq!(is_restrictedly_guarded(&s, &pc()), Recognition::No);
    let inst = Instance::parse("A(a). B(b).").unwrap();
    let cfg = ChaseConfig {
        keep_trace: true,
        ..ChaseConfig::default()
    };
    let res = chase(&inst, &s, &cfg);
    assert!(res.terminated());
    assert!(guarded_null_property(&res.trace, &s, &inst).is_some());
}

#[test]
fn kb_query_answering_on_a_guarded_terminating_kb() {
    // End-to-end Section 5 flavor: recognize the class, chase, answer.
    let s = paper::data_exchange_baseline();
    assert!(is_weakly_guarded(&s));
    let kb = Instance::parse("emp(alice,sales).").unwrap();
    let q = ConjunctiveQuery::parse("q(D) <- dept(D)").unwrap();
    let ans = certain_answers(&kb, &s, &q, &ChaseConfig::default()).unwrap();
    assert_eq!(ans, vec![vec![Term::constant("sales")]]);
    // Boolean query over invented values is certain; their identity is not.
    let b = ConjunctiveQuery::parse("q() <- mgr(sales,M)").unwrap();
    let ans = certain_answers(&kb, &s, &b, &ChaseConfig::default()).unwrap();
    assert_eq!(ans.len(), 1);
    let m = ConjunctiveQuery::parse("q(M) <- mgr(sales,M)").unwrap();
    let ans = certain_answers(&kb, &s, &m, &ChaseConfig::default()).unwrap();
    assert!(ans.is_empty());
}
