//! E13 — the Section 4 travel-agency scenario, end to end: static
//! irrelevance (Example 16), dynamic guards for q1, and the SQO pipeline
//! producing the paper's rewritings q2'' and q2'''.

use chase::prelude::*;
use chase_corpus::paper;
use chase_sqo::rewrite::{
    body_signature, equivalent_subqueries, minimal_rewritings, universal_plan,
};

fn pc() -> PrecedenceConfig {
    PrecedenceConfig::default()
}

#[test]
fn travel_constraints_have_no_data_independent_guarantee() {
    let sigma = paper::fig9_travel();
    let report = analyze(&sigma, 3, &pc());
    assert!(!report.guarantees_some_sequence());
}

#[test]
fn q1_chase_diverges_and_the_monitor_stops_it() {
    let sigma = paper::fig9_travel();
    let (frozen, _) = paper::q1().freeze();
    // Static analysis: no guarantee.
    assert_eq!(
        data_dependent_terminates(&frozen, &sigma, 3, &pc()).unwrap(),
        Recognition::No
    );
    // Dynamic guard: the run is cut off.
    let res = chase(&frozen, &sigma, &ChaseConfig::with_monitor_depth(3));
    assert_eq!(res.reason, StopReason::MonitorAbort { depth: 3 });
    // And indeed a plain budgeted run never satisfies Σ.
    let res = chase(&frozen, &sigma, &ChaseConfig::with_max_steps(200));
    assert_eq!(res.reason, StopReason::StepLimit(200));
}

#[test]
fn example16_q2_static_guarantee_via_irrelevance() {
    let sigma = paper::fig9_travel();
    let (frozen, _) = paper::q2().freeze();
    let (irrelevant, unknown) = irrelevant_constraints(&frozen, &sigma, &pc()).unwrap();
    assert!(!unknown);
    assert_eq!(irrelevant, vec![1, 2], "Example 16: α2, α3 irrelevant");
    assert_eq!(
        data_dependent_terminates(&frozen, &sigma, 2, &pc()).unwrap(),
        Recognition::Yes
    );
    // The guaranteed chase indeed terminates.
    let res = chase_default(&frozen, &sigma);
    assert!(res.terminated());
}

/// Chase configuration for candidate rewritings: divergent candidates are
/// cut off by the Section 4.2 monitor guard instead of burning the whole
/// step budget (exactly the pipeline the paper advocates).
fn guarded_cfg() -> ChaseConfig {
    ChaseConfig {
        monitor_depth: Some(3),
        max_steps: Some(2_000),
        ..ChaseConfig::default()
    }
}

#[test]
fn q2_universal_plan_is_the_papers_q2_prime() {
    let sigma = paper::fig9_travel();
    let cfg = guarded_cfg();
    let plan = universal_plan(&paper::q2(), &sigma, &cfg).unwrap();
    // q2' = q2 plus hasAirport(x1), hasAirport(x2).
    assert_eq!(
        body_signature(&plan),
        vec!["fly", "fly", "hasAirport", "hasAirport", "rail", "rail"]
    );
    // Structurally the paper's q2' (hom-equivalent canonical instances).
    let expected = paper::q2_universal_plan();
    assert!(chase_sqo::rewrite::queries_hom_equivalent(&plan, &expected));
}

#[test]
fn q2_rewritings_include_the_papers_q2pp_and_q2ppp() {
    let sigma = paper::fig9_travel();
    let cfg = guarded_cfg();
    let q2 = paper::q2();
    let all = equivalent_subqueries(&q2, &sigma, &cfg, 12).unwrap();
    assert!(!all.is_empty());
    // q2'' (3 atoms, rail-fly-fly) is among the minimal rewritings.
    let minimal = minimal_rewritings(&q2, &sigma, &cfg, 12).unwrap();
    let q2pp_sig = vec!["fly".to_string(), "fly".into(), "rail".into()];
    assert!(
        minimal.iter().any(|c| body_signature(c) == q2pp_sig),
        "q2'' missing from minimal rewritings: {minimal:?}"
    );
    // q2''' (q2'' + hasAirport filter) is among the equivalent subqueries.
    let q2ppp_sig = vec![
        "fly".to_string(),
        "fly".into(),
        "hasAirport".into(),
        "rail".into(),
    ];
    assert!(
        all.iter().any(|c| body_signature(c) == q2ppp_sig),
        "q2''' missing from equivalent subqueries"
    );
    // Every enumerated rewriting is genuinely equivalent to q2 under Σ.
    for c in &all {
        assert_eq!(
            chase_sqo::containment::equivalent_under(c, &q2, &sigma, &cfg),
            Some(true)
        );
    }
}

#[test]
fn q2_and_its_rewritings_agree_on_data() {
    // Sanity beyond theory: evaluate q2, q2'' and q2''' on a concrete
    // Σ-satisfying database and compare answers.
    let db = Instance::parse(
        "rail(c1,hub,d1). rail(hub,c1,d1). \
         fly(hub,far,d2). fly(far,hub,d2). \
         fly(far,xyz,d3). fly(xyz,far,d3). \
         hasAirport(hub). hasAirport(far). hasAirport(xyz).",
    )
    .unwrap();
    let sigma = paper::fig9_travel();
    assert!(sigma.satisfied_by(&db), "test database must satisfy Σ");
    let a0 = paper::q2().evaluate(&db);
    let a1 = paper::q2_rewritten().evaluate(&db);
    let a2 = paper::q2_rewritten_with_filter().evaluate(&db);
    assert_eq!(a0, a1);
    assert_eq!(a0, a2);
    assert_eq!(a0, vec![vec![Term::constant("far")]]);
}

#[test]
fn monitor_depth_sweep_on_q1_is_monotone() {
    // Pay-as-you-go: larger depths only run longer before aborting.
    let sigma = paper::fig9_travel();
    let (frozen, _) = paper::q1().freeze();
    let mut last_steps = 0;
    for depth in 2..=5 {
        let res = chase(&frozen, &sigma, &ChaseConfig::with_monitor_depth(depth));
        assert_eq!(res.reason, StopReason::MonitorAbort { depth });
        assert!(res.steps >= last_steps, "depth {depth}");
        last_steps = res.steps;
    }
}
