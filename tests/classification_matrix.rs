//! E1 — Figure 1: the hierarchy of termination conditions.
//!
//! Classifies every corpus constraint set against every recognizer and pins
//! the expected verdicts, then checks each strict inclusion and
//! incomparability of Figure 1 on concrete witnesses.

use chase::prelude::*;
use chase_corpus::paper;

fn cfg() -> PrecedenceConfig {
    PrecedenceConfig::default()
}

/// Expected classification of one corpus entry.
struct Expected {
    name: &'static str,
    set: ConstraintSet,
    weakly_acyclic: bool,
    safe: bool,
    stratified: Recognition,
    c_stratified: Recognition,
    inductively_restricted: Recognition,
    /// Least T-level within 2..=4, if any.
    t_level: Option<usize>,
}

fn matrix() -> Vec<Expected> {
    use Recognition::{No, Yes};
    vec![
        Expected {
            name: "intro α1 (S→E)",
            set: paper::intro_alpha1(),
            weakly_acyclic: true,
            safe: true,
            stratified: Yes,
            c_stratified: Yes,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
        Expected {
            name: "intro α2 (divergent)",
            set: paper::intro_alpha2(),
            weakly_acyclic: false,
            safe: false,
            stratified: No,
            c_stratified: No,
            inductively_restricted: No,
            t_level: None,
        },
        Expected {
            name: "fig2 Σ",
            set: paper::fig2_sigma(),
            weakly_acyclic: false,
            safe: false,
            stratified: No,
            c_stratified: No,
            inductively_restricted: No,
            t_level: Some(3),
        },
        Expected {
            name: "example2 γ",
            set: paper::example2_gamma(),
            weakly_acyclic: false,
            safe: false,
            stratified: Yes,
            c_stratified: Yes,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
        Expected {
            name: "example4 Σ",
            set: paper::example4_sigma(),
            weakly_acyclic: false,
            safe: false,
            stratified: Yes,
            c_stratified: No,
            inductively_restricted: No,
            t_level: None,
        },
        Expected {
            name: "safety β",
            set: paper::safety_beta(),
            weakly_acyclic: false,
            safe: true,
            stratified: Yes,
            c_stratified: Yes,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
        Expected {
            name: "thm4 {α,β}",
            set: paper::thm4_safe_not_stratified(),
            weakly_acyclic: false,
            safe: true,
            stratified: No,
            c_stratified: No,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
        Expected {
            name: "example10 Σ",
            set: paper::example10_sigma(),
            weakly_acyclic: false,
            safe: false,
            stratified: No,
            c_stratified: No,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
        Expected {
            name: "example13 Σ'",
            set: paper::example13_sigma_prime(),
            weakly_acyclic: false,
            safe: false,
            stratified: No,
            c_stratified: No,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
        Expected {
            name: "§3.7 Σ''",
            set: paper::sec37_sigma_dprime(),
            weakly_acyclic: false,
            safe: false,
            stratified: No,
            c_stratified: No,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
        Expected {
            name: "fig9 travel",
            set: paper::fig9_travel(),
            weakly_acyclic: false,
            safe: false,
            stratified: No,
            c_stratified: No,
            inductively_restricted: No,
            t_level: None,
        },
        Expected {
            // The copy cycle emp → dept → mgr → emp never passes through
            // the special edge into mgr^2, so the set is weakly acyclic.
            name: "data-exchange baseline",
            set: paper::data_exchange_baseline(),
            weakly_acyclic: true,
            safe: true,
            stratified: Yes,
            c_stratified: Yes,
            inductively_restricted: Yes,
            t_level: Some(2),
        },
    ]
}

#[test]
fn corpus_classification_matches_the_paper() {
    for e in matrix() {
        assert_eq!(
            is_weakly_acyclic(&e.set),
            e.weakly_acyclic,
            "weak acyclicity of {}",
            e.name
        );
        assert_eq!(is_safe(&e.set), e.safe, "safety of {}", e.name);
        assert_eq!(
            is_stratified(&e.set, &cfg()),
            e.stratified,
            "stratification of {}",
            e.name
        );
        assert_eq!(
            is_c_stratified(&e.set, &cfg()),
            e.c_stratified,
            "c-stratification of {}",
            e.name
        );
        assert_eq!(
            is_inductively_restricted(&e.set, &cfg()),
            e.inductively_restricted,
            "inductive restriction of {}",
            e.name
        );
        let (level, indefinite) = t_level(&e.set, 4, &cfg());
        assert!(!indefinite, "indefinite T-level search for {}", e.name);
        assert_eq!(level, e.t_level, "T-level of {}", e.name);
    }
}

#[test]
fn figure1_inclusions_hold_on_the_corpus() {
    for e in matrix() {
        // WA ⊂ safe ⊂ IR = T[2] ⊆ T[3] ⊆ T[4]; WA ⊂ stratified;
        // c-stratified ⊂ IR.
        if e.weakly_acyclic {
            assert!(e.safe, "{}: WA ⇒ safe", e.name);
            assert!(e.stratified.is_yes(), "{}: WA ⇒ stratified", e.name);
            assert!(e.c_stratified.is_yes(), "{}: WA ⇒ c-stratified", e.name);
        }
        if e.safe {
            assert!(e.inductively_restricted.is_yes(), "{}: safe ⇒ IR", e.name);
        }
        if e.c_stratified.is_yes() {
            assert!(
                e.inductively_restricted.is_yes(),
                "{}: c-stratified ⇒ IR",
                e.name
            );
            assert!(
                e.stratified.is_yes(),
                "{}: c-stratified ⇒ stratified",
                e.name
            );
        }
        if e.inductively_restricted.is_yes() {
            assert_eq!(e.t_level, Some(2), "{}: IR = T[2]", e.name);
        }
        // Any T-level membership propagates upward.
        if let Some(k) = e.t_level {
            for k2 in k..=4 {
                assert!(
                    check(&e.set, k2, &cfg()).is_yes(),
                    "{}: T[{k}] ⊆ T[{k2}]",
                    e.name
                );
            }
        }
    }
}

#[test]
fn figure1_strictness_witnesses() {
    // Safe but not weakly acyclic: β (Examples 8/9).
    let beta = paper::safety_beta();
    assert!(is_safe(&beta) && !is_weakly_acyclic(&beta));
    // Stratified but not safe: γ (Theorem 4).
    let gamma = paper::example2_gamma();
    assert!(is_stratified(&gamma, &cfg()).is_yes() && !is_safe(&gamma));
    // Safe but not stratified: Theorem 4's pair.
    let pair = paper::thm4_safe_not_stratified();
    assert!(is_safe(&pair) && !is_stratified(&pair, &cfg()).is_yes());
    // IR but neither safe nor c-stratified: Σ' (Proposition 2).
    let sp = paper::example13_sigma_prime();
    assert!(is_inductively_restricted(&sp, &cfg()).is_yes());
    assert!(!is_safe(&sp) && !is_c_stratified(&sp, &cfg()).is_yes());
    // Stratified but not IR: Example 4 (Proposition 2).
    let e4 = paper::example4_sigma();
    assert!(is_stratified(&e4, &cfg()).is_yes());
    assert!(!is_inductively_restricted(&e4, &cfg()).is_yes());
    // T[3] \ T[2]: Figure 2 (Proposition 5 strictness).
    let f2 = paper::fig2_sigma();
    assert!(!check(&f2, 2, &cfg()).is_yes() && check(&f2, 3, &cfg()).is_yes());
}

#[test]
fn analysis_report_is_consistent_with_the_matrix() {
    for e in matrix() {
        let r = analyze(&e.set, 4, &cfg());
        assert_eq!(r.weakly_acyclic, e.weakly_acyclic, "{}", e.name);
        assert_eq!(r.safe, e.safe, "{}", e.name);
        assert_eq!(r.stratified, e.stratified, "{}", e.name);
        assert_eq!(r.t_level, e.t_level, "{}", e.name);
        // The report's headline verdicts.
        if e.t_level.is_some() || e.c_stratified.is_yes() {
            assert!(r.guarantees_all_sequences(), "{}", e.name);
        }
        if e.name == "example4 Σ" {
            assert!(!r.guarantees_all_sequences() && r.guarantees_some_sequence());
        }
        if e.name == "fig9 travel" {
            assert!(!r.guarantees_some_sequence());
        }
    }
}
