//! Durability, pinned at the only boundary that matters: **a SIGKILL at
//! any point costs nothing that was acknowledged.** A durable
//! [`ChaseSession`] appends every batch to a checksummed write-ahead log
//! *before* applying it, so the session that
//! [`ChaseSession::open`]s the directory after a crash must be
//! indistinguishable — core isomorphism and exact certain answers — from a
//! cold chase of every batch the dead process acknowledged.
//!
//! The suite simulates the crash the honest way an in-process test can:
//! under [`FsyncPolicy::EveryBatch`] an acknowledged apply is already on
//! disk, so dropping the session without ceremony *is* the kill (the CI
//! smoke test does the real `kill -9` against the example server). On top
//! of the clean-kill pin it drives the corruption paths by hand — a tail
//! truncated mid-record, garbage appended past the last record — and the
//! compaction machinery: snapshots are a cache over the log, so loading
//! one must only change how fast reopen is (`replayed_records`), never
//! what it converges to.
//!
//! The vendored proptest stand-in has no collection strategies, so random
//! kill points and streams derive from a `u64` seed through `StdRng`,
//! like `session_server.rs`.

use chase::prelude::*;
use chase_core::homomorphism::hom_equivalent;
use chase_corpus::random::{
    random_instance, random_travel_stream, update_stream, RandomInstanceConfig, RandomTravelConfig,
    UpdateStreamConfig,
};
use chase_engine::chase;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fs::OpenOptions;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A fresh per-test directory under the system temp dir. Each test name
/// appears once per process, so recreating from scratch keeps reruns
/// hermetic without a tempdir dependency.
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chase-durability-test-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn atoms(text: &str) -> Vec<Atom> {
    Instance::parse(text).unwrap().atoms()
}

/// Durability knobs with compaction off: every batch stays in the WAL, so
/// `replayed_records` counts exactly the acknowledged stream.
fn no_compaction() -> DurabilityConfig {
    DurabilityConfig {
        snapshot_every_batches: 0,
        snapshot_every_bytes: 0,
        ..DurabilityConfig::default()
    }
}

/// Chase the union of all batches from scratch (the cold reference).
fn scratch_chase(set: &ConstraintSet, batches: &[Vec<Atom>], cfg: &ChaseConfig) -> ChaseResult {
    let mut union = Instance::new();
    for b in batches {
        union.extend(b.iter().cloned());
    }
    chase(&union, set, cfg)
}

/// The recovery pin: the (re)opened session and a cold chase of every
/// acknowledged batch have isomorphic cores and agree exactly on certain
/// answers.
fn assert_recovered_equivalent(
    name: &str,
    session: &mut ChaseSession,
    batches: &[Vec<Atom>],
    queries: &[&str],
) {
    let scratch = scratch_chase(
        session.constraints(),
        batches,
        &session.config().chase.clone(),
    );
    assert!(
        scratch.terminated(),
        "{name}: the cold reference chase must terminate for this pin"
    );
    let warm_core = core_of(session.instance());
    let cold_core = core_of(&scratch.instance);
    assert_eq!(
        warm_core.len(),
        cold_core.len(),
        "{name}: cores differ in size\nrecovered: {warm_core}\ncold: {cold_core}"
    );
    assert!(
        hom_equivalent(&warm_core, &cold_core),
        "{name}: cores are not hom-equivalent\nrecovered: {warm_core}\ncold: {cold_core}"
    );
    for q_text in queries {
        let q = ConjunctiveQuery::parse(q_text).unwrap();
        let recovered = session.query(&q).unwrap();
        let cold = q.evaluate_certain(&scratch.instance);
        assert_eq!(
            recovered, cold,
            "{name}: certain answers differ for {q_text}"
        );
    }
}

/// Build a durable session in `dir`, apply `batches`, and assert each one
/// quiesced.
fn durable_over(
    dir: &PathBuf,
    set: &ConstraintSet,
    durability: DurabilityConfig,
    batches: &[Vec<Atom>],
) -> ChaseSession {
    let mut s = ChaseSession::builder(set.clone())
        .durable(dir)
        .durability(durability)
        .try_build()
        .unwrap();
    for (i, b) in batches.iter().enumerate() {
        let out = s
            .apply(b.iter().cloned())
            .unwrap_or_else(|e| panic!("batch {i} refused: {e}"));
        assert_eq!(
            out.reason,
            StopReason::Satisfied,
            "batch {i} did not quiesce"
        );
    }
    s
}

// ---------------------------------------------------------------------------
// Clean-kill recovery
// ---------------------------------------------------------------------------

/// Travel corpus over a durable session: kill after the full stream,
/// reopen, and the recovered state matches a cold chase — with the replay
/// counter showing exactly one WAL record per acknowledged batch (no
/// snapshot was taken, so reopen is pure replay).
#[test]
fn reopened_session_matches_cold_chase() {
    let set = ConstraintSet::parse(
        "fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)\n\
         rail(C1,C2,D) -> rail(C2,C1,D)",
    )
    .unwrap();
    let stream = random_travel_stream(
        &RandomTravelConfig {
            cities: 12,
            flights: 40,
            rails: 30,
            seed: 7,
        },
        5,
    );
    let dir = test_dir("reopen-matches-cold");
    let session = durable_over(&dir, &set, no_compaction(), &stream);
    let epoch_at_kill = session.stats().epoch;
    drop(session); // the kill: EveryBatch fsync means nothing unflushed

    let mut reopened = ChaseSession::open(&dir).unwrap();
    assert_eq!(reopened.stats().epoch, epoch_at_kill);
    let d = reopened.durability().unwrap();
    assert!(!d.loaded_snapshot, "no snapshot existed to load");
    assert_eq!(d.replayed_records, stream.len() as u64);
    assert_eq!(d.truncated_bytes, 0, "a clean kill leaves no torn tail");
    assert_recovered_equivalent(
        "travel reopen",
        &mut reopened,
        &stream,
        &[
            "airports(C) <- hasAirport(C)",
            "back(X,D) <- rail(city0,X,D), rail(X,city0,D)",
        ],
    );
}

/// The null-inventing family survives recovery: the WAL logs the *base*
/// batches (never invented nulls beyond what the batch text carries), so
/// replay re-runs the same warm chase and lands on the same universal
/// model.
#[test]
fn null_inventing_stream_recovers_up_to_core() {
    let set = ConstraintSet::parse(
        "S(X) -> E(X,Y)\n\
         E(X,Y), E(Y,Z) -> E(X,Z)",
    )
    .unwrap();
    let batches: Vec<Vec<Atom>> = vec![
        atoms("S(a). S(b)."),
        atoms("E(a,b). E(b,c)."),
        atoms("S(c). E(c,a)."),
    ];
    let dir = test_dir("null-inventing");
    drop(durable_over(&dir, &set, no_compaction(), &batches));
    let mut reopened = ChaseSession::open(&dir).unwrap();
    assert_recovered_equivalent(
        "lav_tc reopen",
        &mut reopened,
        &batches,
        &["q(X,Y) <- E(X,Y)", "q2(X) <- E(a,X)"],
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The central property: kill a durable session at a *random* batch
    /// boundary, reopen, apply the rest of the stream, and the result is
    /// core-isomorphic (with identical certain answers) to a cold chase of
    /// the whole stream. Snapshot cadence is randomized too, so the kill
    /// lands before, on, and after compaction points across seeds.
    #[test]
    fn kill_at_any_batch_boundary_recovers(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = ConstraintSet::parse(
            "S(X) -> E(X,Y)\n\
             E(X,Y), E(Y,Z) -> E(X,Z)",
        )
        .unwrap();
        let mut base = random_instance(
            &set,
            &RandomInstanceConfig {
                facts: 20,
                domain: 6,
                seed: rng.next_u64(),
            },
        );
        for i in 0..3 {
            base.insert(Atom::new("S", vec![Term::constant(&format!("c{i}"))]));
        }
        let stream = update_stream(&base, &UpdateStreamConfig { batches: 5, seed: rng.next_u64() });
        let kill_at = rng.gen_range(0..=stream.len());
        let durability = DurabilityConfig {
            snapshot_every_batches: rng.gen_range(0..4u32),
            snapshot_every_bytes: 0,
            keep_snapshots: rng.gen_range(1..3usize),
            ..DurabilityConfig::default()
        };

        let dir = test_dir(&format!("kill-boundary-{seed}"));
        drop(durable_over(&dir, &set, durability, &stream[..kill_at]));

        let mut reopened = ChaseSession::open(&dir).unwrap();
        prop_assert_eq!(reopened.stats().epoch, kill_at as u64);
        for b in &stream[kill_at..] {
            let out = reopened.apply(b.iter().cloned()).unwrap();
            prop_assert_eq!(out.reason, StopReason::Satisfied);
        }
        assert_recovered_equivalent(
            &format!("kill at {kill_at}/{} (seed {seed})", stream.len()),
            &mut reopened,
            &stream,
            &["q(X,Y) <- E(X,Y)"],
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A tail torn *mid-record* (the crash landed inside an append that was
    /// never acknowledged) rewinds to the last whole record: reopen drops
    /// exactly the torn batch, reports the truncated bytes, and a second
    /// reopen finds a clean log.
    #[test]
    fn torn_tail_rewinds_to_the_last_whole_record(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let edges = random_instance(
            &set,
            &RandomInstanceConfig { facts: 18, domain: 6, seed: rng.next_u64() },
        );
        let stream = update_stream(&edges, &UpdateStreamConfig { batches: 4, seed: rng.next_u64() });

        let dir = test_dir(&format!("torn-tail-{seed}"));
        drop(durable_over(&dir, &set, no_compaction(), &stream));

        // Tear the tail: chop 1..8 bytes off the last record (at least its
        // CRC is damaged, so the whole record must be discarded).
        let wal = dir.join("wal.log");
        let full_len = std::fs::metadata(&wal).unwrap().len();
        let bite = rng.gen_range(1..8u64).min(full_len);
        OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(full_len - bite)
            .unwrap();

        let acknowledged = &stream[..stream.len() - 1];
        let mut reopened = ChaseSession::open(&dir).unwrap();
        let d = reopened.durability().unwrap();
        prop_assert!(d.truncated_bytes > 0, "the torn record must be counted");
        prop_assert_eq!(d.replayed_records, acknowledged.len() as u64);
        prop_assert_eq!(reopened.stats().epoch, acknowledged.len() as u64);
        assert_recovered_equivalent(
            &format!("torn tail (seed {seed})"),
            &mut reopened,
            acknowledged,
            &["q(X,Y) <- E(X,Y)"],
        );
        drop(reopened);

        // The truncation is durable: a second open sees a clean log.
        let again = ChaseSession::open(&dir).unwrap();
        prop_assert_eq!(again.durability().unwrap().truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Garbage appended past the last record (a crash mid-append that wrote
/// only junk) is truncated byte-for-byte, keeping every whole record.
#[test]
fn trailing_garbage_is_truncated_exactly() {
    let set = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
    let batches = vec![atoms("rail(a,b,d1)."), atoms("rail(b,c,d2).")];
    let dir = test_dir("trailing-garbage");
    drop(durable_over(&dir, &set, no_compaction(), &batches));

    let wal = dir.join("wal.log");
    let clean_len = std::fs::metadata(&wal).unwrap().len();
    use std::io::Write;
    let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
    // Looks like the start of a record (plausible length prefix, right
    // version and tag) but ends mid-payload.
    f.write_all(&[64, 0, 0, 0, 1, 1, 9, 9, 9]).unwrap();
    drop(f);

    let reopened = ChaseSession::open(&dir).unwrap();
    let d = reopened.durability().unwrap();
    assert_eq!(d.truncated_bytes, 9);
    assert_eq!(d.replayed_records, 2);
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), clean_len);
}

// ---------------------------------------------------------------------------
// Write-ahead ordering
// ---------------------------------------------------------------------------

/// The ordering pin: a batch is logged *before* it is applied, so the
/// batch that poisons a session IS in the WAL (reopen re-poisons
/// deterministically), while a batch refused after poisoning is NOT (the
/// epoch does not move across the crash).
#[test]
fn poisoning_batch_is_logged_refused_batch_is_not() {
    let set = ConstraintSet::parse("p(X), p(Y) -> X = Y").unwrap();
    let dir = test_dir("write-ahead-ordering");
    let mut s = ChaseSession::builder(set)
        .durable(&dir)
        .durability(no_compaction())
        .try_build()
        .unwrap();
    s.apply(atoms("p(a).")).unwrap();
    let out = s.apply(atoms("p(a). p(b).")).unwrap();
    assert_eq!(out.reason, StopReason::Failed, "two constants must clash");
    assert!(s.poisoned().is_some());
    // Refused after poisoning: must not reach the log.
    assert!(matches!(
        s.apply(atoms("p(c).")),
        Err(ServeError::Poisoned(_))
    ));
    let epoch_at_kill = s.stats().epoch;
    assert_eq!(epoch_at_kill, 2);
    drop(s);

    let mut reopened = ChaseSession::open(&dir).unwrap();
    assert_eq!(
        reopened.poisoned(),
        Some(&StopReason::Failed),
        "replaying the logged poisoning batch must re-poison the session"
    );
    assert_eq!(
        reopened.stats().epoch,
        epoch_at_kill,
        "the refused batch must not have advanced the on-disk epoch"
    );
    assert!(matches!(
        reopened.apply(atoms("p(d).")),
        Err(ServeError::Poisoned(_))
    ));
}

// ---------------------------------------------------------------------------
// Snapshots: warm restart is replay-since-snapshot, not re-chase
// ---------------------------------------------------------------------------

/// `persist` writes a snapshot and compacts the log; a later reopen loads
/// it and replays only the records past it. The counters make the warm
/// path observable: `loaded_snapshot` true, `replayed_records` exactly
/// the post-persist batches.
#[test]
fn reopen_after_persist_replays_only_the_tail() {
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    let stream: Vec<Vec<Atom>> = vec![
        atoms("E(a,b). E(b,c)."),
        atoms("E(c,d)."),
        atoms("E(d,e)."),
        atoms("E(e,f)."),
        atoms("E(f,g)."),
    ];
    let dir = test_dir("persist-tail");
    let mut s = durable_over(&dir, &set, no_compaction(), &stream[..3]);
    let covered = s.persist().unwrap();
    assert_eq!(covered, 3, "persist covers everything applied so far");
    for b in &stream[3..] {
        s.apply(b.iter().cloned()).unwrap();
    }
    drop(s);

    let mut reopened = ChaseSession::open(&dir).unwrap();
    let d = reopened.durability().unwrap();
    assert!(
        d.loaded_snapshot,
        "the persist point must be loaded, not re-chased"
    );
    assert_eq!(d.snapshot_epoch, 3);
    assert_eq!(
        d.replayed_records, 2,
        "only the two post-persist batches go through replay"
    );
    assert_eq!(reopened.stats().epoch, 5);
    assert_recovered_equivalent("persist tail", &mut reopened, &stream, &["q(X) <- E(a,X)"]);
}

/// Periodic compaction: with a batch-count trigger the session snapshots
/// on cadence, truncates the WAL each time, and prunes old generations
/// down to `keep_snapshots`.
#[test]
fn periodic_snapshots_compact_and_prune() {
    let set = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
    let batches: Vec<Vec<Atom>> = (0..6)
        .map(|i| atoms(&format!("rail(s{i},s{},d).", i + 1)))
        .collect();
    let dir = test_dir("periodic-compaction");
    let durability = DurabilityConfig {
        snapshot_every_batches: 2,
        snapshot_every_bytes: 0,
        keep_snapshots: 1,
        ..DurabilityConfig::default()
    };
    let s = durable_over(&dir, &set, durability, &batches);
    let d = s.durability().unwrap();
    assert_eq!(d.snapshots_written, 3, "a snapshot every 2 batches over 6");
    assert_eq!(d.snapshot_epoch, 6);
    assert_eq!(d.snapshot_errors, 0);
    drop(s);

    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name().to_string_lossy().into_owned();
            n.starts_with("snapshot-") && n.ends_with(".csnp")
        })
        .collect();
    assert_eq!(snapshots.len(), 1, "pruned down to keep_snapshots");

    let reopened = ChaseSession::open(&dir).unwrap();
    let d = reopened.durability().unwrap();
    assert!(d.loaded_snapshot);
    assert_eq!(d.replayed_records, 0, "the WAL was compacted away entirely");
    assert_eq!(reopened.stats().epoch, 6);
}

/// A corrupt newest snapshot is skipped, not fatal: reopen falls back to
/// full WAL replay when no older generation exists, because the log —
/// not the snapshot — is the source of truth.
#[test]
fn corrupt_snapshot_falls_back_to_replay() {
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    let batches = vec![atoms("E(a,b)."), atoms("E(b,c).")];
    let dir = test_dir("corrupt-snapshot");
    let mut s = durable_over(&dir, &set, no_compaction(), &batches);
    s.persist().unwrap();
    // Two more batches so the log is non-empty past the snapshot.
    s.apply(atoms("E(c,d).")).unwrap();
    drop(s);

    // Flip a byte in the snapshot body: the CRC check must reject it.
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("snapshot-"))
        .expect("persist wrote a snapshot")
        .path();
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, bytes).unwrap();

    // The WAL only holds the post-persist batch, so a reopen that merely
    // skipped the bad snapshot would be missing the first two batches —
    // it must fail loudly instead of resurrecting a partial state.
    match ChaseSession::open(&dir) {
        Err(ServeError::Durability(_)) => {} // replay noticed the gap
        Ok(reopened) => {
            // If open succeeded, the implementation kept enough log to
            // recover fully — then the state must still be complete.
            let d = reopened.durability().unwrap();
            assert!(!d.loaded_snapshot, "the corrupt snapshot must not load");
            assert_eq!(reopened.stats().epoch, 3);
        }
        Err(other) => panic!("unexpected error kind: {other}"),
    }
}

// ---------------------------------------------------------------------------
// Modes and policies
// ---------------------------------------------------------------------------

/// Oblivious sessions never snapshot chased state (a bare instance cannot
/// resume an oblivious engine without re-firing old triggers): `persist`
/// only flushes, and reopen replays the full log to the *identical*
/// instance — oblivious replay is deterministic, so this is exact
/// equality, not just core isomorphism.
#[test]
fn oblivious_sessions_recover_by_full_replay() {
    let set = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
    let mut cfg = SessionConfig::default();
    cfg.chase.mode = ChaseMode::Oblivious;
    let dir = test_dir("oblivious-replay");
    let mut s = ChaseSession::builder(set)
        .config(cfg)
        .durable(&dir)
        .durability(no_compaction())
        .try_build()
        .unwrap();
    s.apply(atoms("S(a). S(b).")).unwrap();
    s.apply(atoms("S(c).")).unwrap();
    s.persist().unwrap();
    let before = s.instance().clone();
    let d = s.durability().unwrap();
    assert_eq!(
        d.snapshots_written, 0,
        "persist on oblivious flushes the log, never snapshots"
    );
    drop(s);

    let reopened = ChaseSession::open(&dir).unwrap();
    let d = reopened.durability().unwrap();
    assert!(!d.loaded_snapshot);
    assert_eq!(d.replayed_records, 2);
    assert_eq!(
        reopened.instance(),
        &before,
        "deterministic oblivious replay reproduces the instance exactly"
    );
}

/// `FsyncPolicy::Interval(n)` amortizes flushes: 8 appends cost 2 fsyncs
/// at interval 4, versus one per append under the default.
#[test]
fn interval_fsync_amortizes_flushes() {
    let set = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
    let batches: Vec<Vec<Atom>> = (0..8)
        .map(|i| atoms(&format!("rail(a{i},b{i},d).")))
        .collect();

    let dir = test_dir("fsync-interval");
    let s = durable_over(
        &dir,
        &set,
        DurabilityConfig {
            fsync: FsyncPolicy::Interval(4),
            ..no_compaction()
        },
        &batches,
    );
    let d = s.durability().unwrap();
    assert_eq!(d.wal_appends, 8);
    assert_eq!(d.wal_fsyncs, 2, "interval 4 over 8 appends");
    drop(s);

    let dir = test_dir("fsync-every");
    let s = durable_over(&dir, &set, no_compaction(), &batches);
    let d = s.durability().unwrap();
    assert_eq!(d.wal_fsyncs, 8, "the default flushes every append");
}

/// Forks and in-memory snapshots are just that — in memory. The log stays
/// with the original: nothing a fork applies can reach the original's
/// directory.
#[test]
fn forks_do_not_inherit_the_log() {
    let set = ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap();
    let dir = test_dir("fork-no-log");
    let mut s = durable_over(&dir, &set, no_compaction(), &[atoms("rail(a,b,d1).")]);
    let mut fork = s.fork();
    assert!(!fork.is_durable());
    assert!(fork.durability().is_none());
    fork.apply(atoms("rail(x,y,d9).")).unwrap();
    s.apply(atoms("rail(b,c,d2).")).unwrap();
    drop((s, fork));

    let reopened = ChaseSession::open(&dir).unwrap();
    assert_eq!(
        reopened.stats().epoch,
        2,
        "only the original's batches are in the log"
    );
    let q = ConjunctiveQuery::parse("q(X,Y) <- rail(X,Y,d9)").unwrap();
    let mut reopened = reopened;
    assert!(
        reopened.query(&q).unwrap().is_empty(),
        "the fork's batch must not leak into the durable state"
    );
}

/// `restore` on a durable session re-anchors the log at the restored
/// epoch: the abandoned future is gone from disk, and batches applied
/// after the restore extend the restored timeline.
#[test]
fn restore_re_anchors_the_log() {
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
    let dir = test_dir("restore-reanchor");
    let mut s = durable_over(&dir, &set, no_compaction(), &[atoms("E(a,b).")]);
    let snap = s.snapshot();
    s.apply(atoms("E(b,c).")).unwrap(); // the future to abandon
    s.restore(&snap);
    assert_eq!(s.stats().epoch, 1);
    s.apply(atoms("E(b,z).")).unwrap(); // the replacement timeline
    drop(s);

    let mut reopened = ChaseSession::open(&dir).unwrap();
    assert_eq!(reopened.stats().epoch, 2);
    let q = ConjunctiveQuery::parse("q(X) <- E(a,X)").unwrap();
    let mut answers = reopened.query(&q).unwrap();
    answers.sort();
    assert_eq!(
        answers,
        vec![vec![Term::constant("b")], vec![Term::constant("z")]],
        "the abandoned E(b,c) closure must not survive the restore"
    );
}

// ---------------------------------------------------------------------------
// Conductor warm restart
// ---------------------------------------------------------------------------

/// A conductor pointed at a durable root warm-restarts every session it
/// finds there: same ids, same answers, id allocation continuing past the
/// reopened maximum, and the reopen surfaced in the server-wide metrics.
#[test]
fn conductor_warm_restarts_its_fleet() {
    let root = test_dir("conductor-restart");
    let cfg = ConductorConfig {
        durable_root: Some(root.clone()),
        ..ConductorConfig::default()
    };

    let first = Conductor::new(cfg.clone());
    let rail = first
        .open(ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap())
        .unwrap();
    let tc = first
        .open(ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap())
        .unwrap();
    first
        .route(rail)
        .unwrap()
        .apply(atoms("rail(berlin,paris,d9)."))
        .unwrap();
    first
        .route(tc)
        .unwrap()
        .apply(atoms("E(a,b). E(b,c)."))
        .unwrap();
    first.shutdown();
    drop(first);

    let second = Conductor::new(cfg);
    assert_eq!(second.session_count(), 2, "both sessions warm-restarted");
    let text = second.metrics_text();
    assert!(
        text.contains("chase_sessions_reopened_total 2"),
        "reopen must be observable in the exposition:\n{text}"
    );

    // Same ids, same answers.
    let q = ConjunctiveQuery::parse("q(X) <- rail(X,berlin,D)").unwrap();
    let answers = second
        .route(rail)
        .unwrap()
        .query(&q, QueryOpts::default())
        .unwrap();
    assert_eq!(answers, vec![vec![Term::constant("paris")]]);
    let q = ConjunctiveQuery::parse("q(X) <- E(a,X)").unwrap();
    let answers = second
        .route(tc)
        .unwrap()
        .query(&q, QueryOpts::default())
        .unwrap();
    assert_eq!(answers.len(), 2, "the closure survived the restart");

    // The epoch stream continues where the dead process stopped.
    let out = second.route(tc).unwrap().apply(atoms("E(c,d).")).unwrap();
    assert_eq!(out.epoch, 2);

    // Fresh ids continue past the reopened maximum.
    let fresh = second
        .open(ConstraintSet::parse("p(X) -> q(X)").unwrap())
        .unwrap();
    assert!(
        fresh > rail.max(tc),
        "id allocation must not collide with warm-restarted sessions"
    );
    second.shutdown();
}

/// A session directory that cannot be reopened (here: a manifest whose
/// constraint set no longer parses) is skipped and counted, never fatal —
/// the rest of the fleet still comes up.
#[test]
fn unreopenable_directories_are_skipped_and_counted() {
    let root = test_dir("conductor-skip");
    let cfg = ConductorConfig {
        durable_root: Some(root.clone()),
        ..ConductorConfig::default()
    };
    let first = Conductor::new(cfg.clone());
    let good = first
        .open(ConstraintSet::parse("rail(X,Y,D) -> rail(Y,X,D)").unwrap())
        .unwrap();
    let bad = first
        .open(ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap())
        .unwrap();
    first
        .route(good)
        .unwrap()
        .apply(atoms("rail(a,b,d)."))
        .unwrap();
    first.shutdown();
    drop(first);

    // Vandalize the second session's manifest.
    std::fs::write(
        root.join(format!("session-{bad}")).join("MANIFEST"),
        "chase-session v1\nsigma\nnot a constraint set\n",
    )
    .unwrap();

    let second = Conductor::new(cfg);
    assert_eq!(second.session_count(), 1, "the good session still comes up");
    assert!(second.route(good).is_ok());
    assert!(
        second.route(bad).is_err(),
        "the broken one is not resurrected"
    );
    let text = second.metrics_text();
    assert!(text.contains("chase_sessions_reopened_total 1"), "{text}");
    assert!(
        text.contains("chase_sessions_reopen_failed_total 1"),
        "{text}"
    );
    second.shutdown();
}

/// Restore on a durable *oblivious* session is refused through the
/// conductor with a typed durability error: its log cannot be re-anchored
/// (re-anchoring writes a snapshot, which oblivious state forbids).
#[test]
fn durable_oblivious_restore_is_refused() {
    let root = test_dir("oblivious-restore");
    let mut session = SessionConfig::default();
    session.chase.mode = ChaseMode::Oblivious;
    let conductor = Conductor::new(ConductorConfig {
        durable_root: Some(root),
        session,
        ..ConductorConfig::default()
    });
    let id = conductor
        .open(ConstraintSet::parse("S(X) -> E(X,Y)").unwrap())
        .unwrap();
    let h = conductor.route(id).unwrap();
    h.apply(atoms("S(a).")).unwrap();
    let snap = h.snapshot().unwrap();
    match h.restore(snap) {
        Err(ServeError::Durability(_)) => {}
        other => panic!("expected a durability refusal, got {other:?}"),
    }
    // The session is untouched by the refusal.
    assert_eq!(h.stats().unwrap().epoch, 1);
    conductor.shutdown();
}
