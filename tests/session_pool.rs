//! The bounded worker pool, pinned at serving scale: **thousands of
//! mostly-idle sessions cost run-queue entries, not OS threads.**
//!
//! * **No starvation.** A 4-worker pool soaked with hundreds of sessions
//!   (thousands under `CHASE_POOL_FULL=1`) acknowledges every session's
//!   apply and then answers every session's read-your-writes query — no
//!   tenant waits forever behind a busy neighbour.
//!
//! * **Eviction round-trip.** A durable session idled past `evict_after`
//!   is persisted and torn down; the next touch warm-restarts it from its
//!   `durable_root` directory, and the reattached session is
//!   indistinguishable — isomorphic cores via [`core_of`] and exact
//!   certain-answer agreement — from a twin that was never evicted.
//!
//! * **Fault containment.** An EGD-poisoned chase mid-dispatch, or an
//!   injected panic inside a dispatch, wedges nothing: the worker marks
//!   that one session poisoned, requeues nothing, and keeps serving every
//!   other tenant.
//!
//! The quick tier keeps CI fast; `CHASE_POOL_FULL=1` runs the ≥2k-session
//! soak from the acceptance criteria.

use chase::prelude::*;
use chase::serve::proto::{ErrorCode, Request, Response};
use chase_core::homomorphism::hom_equivalent;
use std::path::PathBuf;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Sessions in the soak: 256 in CI, ≥2048 when `CHASE_POOL_FULL=1`.
fn soak_sessions() -> usize {
    if std::env::var("CHASE_POOL_FULL").is_ok() {
        2048
    } else {
        256
    }
}

/// A fresh per-test directory under the system temp dir (same idiom as
/// `session_durability.rs`: hermetic reruns without a tempdir crate).
fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chase-pool-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn atoms(text: &str) -> Vec<Atom> {
    Instance::parse(text).unwrap().atoms()
}

fn normalized(mut answers: Vec<Vec<Term>>) -> Vec<Vec<Term>> {
    answers.sort();
    answers
}

/// Spin until `cond` holds or the deadline passes.
fn wait_for(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------------
// Soak: no starvation, bounded workers
// ---------------------------------------------------------------------------

/// Hundreds-to-thousands of sessions on a 4-worker pool: every apply is
/// acknowledged, every session then answers its own read-your-writes
/// query, and the pool never grew beyond its 4 threads.
#[test]
fn a_four_worker_pool_serves_thousands_of_sessions_without_starvation() {
    let n = soak_sessions();
    let conductor = Conductor::new(ConductorConfig {
        max_sessions: n + 8,
        workers: 4,
        dispatch_budget: 8,
        ..ConductorConfig::default()
    });
    let sigma = ConstraintSet::parse("e(X,Y) -> e(Y,X)").unwrap();

    // Open + enqueue an apply on every session before reading any ack, so
    // the run queue really holds ~n sessions at once.
    let mut pending = Vec::with_capacity(n);
    for i in 0..n {
        let id = conductor.open(sigma.clone()).unwrap();
        let h = conductor.route(id).unwrap();
        let rx = h.apply_async(atoms(&format!("e(s{i},t{i}).")));
        pending.push((i, id, h, rx));
    }

    // No starvation: every ack arrives (generous per-recv deadline; the
    // whole soak finishes orders of magnitude faster).
    for (i, _, _, rx) in &pending {
        let out = rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| panic!("session #{i} starved: apply never acknowledged"))
            .unwrap();
        assert_eq!(out.total_facts, 2, "session #{i}");
    }

    // Read-your-writes after the ack, for every tenant.
    for (i, _, h, _) in &pending {
        let q = ConjunctiveQuery::parse(&format!("q(X) <- e(t{i},X)")).unwrap();
        let ans = h.query(&q, QueryOpts::default()).unwrap();
        assert_eq!(
            ans,
            vec![vec![Term::constant(&format!("s{i}"))]],
            "session #{i}"
        );
    }

    let text = conductor.metrics_text();
    assert!(text.contains("chase_pool_workers 4"), "{text}");
    for (_, id, _, _) in pending.drain(..) {
        conductor.close(id).unwrap();
    }
    conductor.shutdown();
}

/// Read-your-writes under pipelining over real TCP: one connection keeps a
/// whole batch in flight across many tenants, and every query in the batch
/// sees the apply pipelined ahead of it.
#[test]
fn pipelined_batches_preserve_read_your_writes_across_tenants() {
    let server = serve(
        "127.0.0.1:0",
        ConductorConfig {
            workers: 4,
            ..ConductorConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let tenants: Vec<u64> = (0..8)
        .map(|_| c.open("e(X,Y) -> e(Y,X)").unwrap())
        .collect();

    // Interleave apply/query across tenants in one pipelined batch: the
    // server handles a connection's frames in order, so each query must
    // see the apply for the same tenant written just before it.
    let mut reqs = Vec::new();
    for round in 0..4 {
        for (t, &session) in tenants.iter().enumerate() {
            reqs.push(Request::Apply {
                session,
                facts: format!("e(t{t}_{round},t{t}_{n}).", n = round + 1),
            });
            reqs.push(Request::Query {
                session,
                cq: format!("q(X) <- e(t{t}_{n},X)", n = round + 1),
                opts: QueryOpts::default(),
            });
        }
    }
    let replies = c.pipeline(&reqs).unwrap();
    assert_eq!(replies.len(), reqs.len());
    for (i, reply) in replies.iter().enumerate() {
        match (i % 2, reply) {
            (0, Ok(Response::Applied { .. })) => {}
            (1, Ok(Response::Answers { tuples })) => {
                let t = (i / 2) % tenants.len();
                let round = i / (2 * tenants.len());
                assert_eq!(
                    tuples,
                    &vec![vec![format!("t{t}_{round}")]],
                    "query #{i} did not see its own tenant's pipelined write"
                );
            }
            other => panic!("reply #{i} unexpected: {other:?}"),
        }
    }
    for s in tenants {
        c.close(s).unwrap();
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Eviction round-trip
// ---------------------------------------------------------------------------

/// The eviction pin from the issue: a durable session evicted by TTL and
/// reattached on the next touch has a core isomorphic to a never-evicted
/// twin's and agrees with it exactly on certain answers.
#[test]
fn an_evicted_durable_session_reattaches_equivalent_to_a_never_evicted_twin() {
    let root = test_dir("evict-roundtrip");
    let evicting = Conductor::new(ConductorConfig {
        durable_root: Some(root.clone()),
        workers: 2,
        evict_after: Some(Duration::from_millis(60)),
        ..ConductorConfig::default()
    });
    let plain = Conductor::new(ConductorConfig {
        workers: 2,
        ..ConductorConfig::default()
    });

    // Existential TGDs so the instances carry labeled nulls — core
    // isomorphism is then a real check, not a set equality.
    let sigma = ConstraintSet::parse(
        "person(X) -> hasParent(X,Y); hasParent(X,Y), hasParent(Y,Z) -> ancestor(X,Z)",
    )
    .unwrap();
    let a = evicting.open(sigma.clone()).unwrap();
    let b = plain.open(sigma).unwrap();
    let batches = [
        "person(ada). person(bob).",
        "hasParent(ada,cleo). person(cleo).",
        "hasParent(bob,cleo).",
    ];
    for batch in batches {
        evicting.route(a).unwrap().apply(atoms(batch)).unwrap();
        plain.route(b).unwrap().apply(atoms(batch)).unwrap();
    }

    // Let the janitor evict the idle durable session (persist + teardown).
    wait_for(
        "TTL eviction of the durable session",
        Duration::from_secs(10),
        || evicting.session_count() == 0,
    );
    let text = evicting.metrics_text();
    assert!(text.contains("chase_evictions_total 1"), "{text}");

    // The next touch reattaches transparently from the durable directory.
    let reattached = evicting.route(a).unwrap();
    let twin = plain.route(b).unwrap();
    let core_a = core_of(&Instance::parse(&reattached.dump().unwrap()).unwrap());
    let core_b = core_of(&Instance::parse(&twin.dump().unwrap()).unwrap());
    assert!(
        hom_equivalent(&core_a, &core_b),
        "reattached core differs from the never-evicted twin"
    );
    for cq in [
        "q(X) <- ancestor(X,Z)",
        "q(X,Y) <- hasParent(X,Y)",
        "q(X) <- person(X)",
    ] {
        let q = ConjunctiveQuery::parse(cq).unwrap();
        assert_eq!(
            normalized(reattached.query(&q, QueryOpts::default()).unwrap()),
            normalized(twin.query(&q, QueryOpts::default()).unwrap()),
            "certain answers diverged on {cq}"
        );
    }
    assert!(
        evicting
            .metrics_text()
            .contains("chase_evictions_restored_total 1"),
        "restore not counted"
    );
    evicting.shutdown();
    plain.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

/// A non-durable session evicted by TTL is gone for good, and says so
/// with the dedicated error — both in-process and over the wire.
#[test]
fn evicted_transient_sessions_answer_with_the_evicted_error() {
    let server = serve(
        "127.0.0.1:0",
        ConductorConfig {
            workers: 2,
            evict_after: Some(Duration::from_millis(60)),
            ..ConductorConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let s = c.open("e(X,Y) -> e(Y,X)").unwrap();
    c.apply(s, "e(a,b).").unwrap();
    wait_for("TTL eviction", Duration::from_secs(10), || {
        server.conductor().session_count() == 0
    });
    match c.stats(s).unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Evicted),
        other => panic!("expected a server error, got {other:?}"),
    }
    // A fresh id is still served: the conductor did not wedge.
    let s2 = c.open("e(X,Y) -> e(Y,X)").unwrap();
    c.apply(s2, "e(x,y).").unwrap();
    c.close(s2).unwrap();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Fault containment
// ---------------------------------------------------------------------------

/// An EGD failure mid-dispatch poisons only its own session: on a
/// single-worker pool the *same* worker goes on serving the other tenant,
/// and the poisoned session answers with the poison error, not a hang.
#[test]
fn an_egd_poisoned_chase_does_not_wedge_its_worker() {
    let conductor = Conductor::new(ConductorConfig {
        workers: 1,
        ..ConductorConfig::default()
    });
    let poisoned = conductor
        .open(ConstraintSet::parse("p(X), p(Y) -> X = Y").unwrap())
        .unwrap();
    let healthy = conductor
        .open(ConstraintSet::parse("e(X,Y) -> e(Y,X)").unwrap())
        .unwrap();
    let hp = conductor.route(poisoned).unwrap();
    let hh = conductor.route(healthy).unwrap();

    // Two distinct constants through one EGD: terminal failure.
    let out = hp.apply(atoms("p(a). p(b).")).unwrap();
    assert_eq!(out.reason, StopReason::Failed);

    // The one worker keeps serving the healthy session afterwards.
    let out = hh.apply(atoms("e(a,b).")).unwrap();
    assert_eq!(out.total_facts, 2);
    let q = ConjunctiveQuery::parse("q(X) <- e(b,X)").unwrap();
    assert_eq!(
        hh.query(&q, QueryOpts::default()).unwrap(),
        vec![vec![Term::constant("a")]]
    );

    // The poisoned session answers with the poison error — no hang.
    let q = ConjunctiveQuery::parse("q(X) <- p(X)").unwrap();
    assert!(matches!(
        hp.query(&q, QueryOpts::default()),
        Err(ServeError::Poisoned(StopReason::Failed))
    ));
    conductor.shutdown();
}

/// The panic path: a dispatch that panics is caught by the worker, the
/// session is marked poisoned and never requeued, and the pool keeps
/// serving everything else. (The injection hook exists only for this pin.)
#[test]
fn a_panicking_dispatch_is_caught_poisons_the_session_and_requeues_nothing() {
    let conductor = Conductor::new(ConductorConfig {
        workers: 1,
        ..ConductorConfig::default()
    });
    let victim = conductor
        .open(ConstraintSet::parse("e(X,Y) -> e(Y,X)").unwrap())
        .unwrap();
    let bystander = conductor
        .open(ConstraintSet::parse("e(X,Y) -> e(Y,X)").unwrap())
        .unwrap();
    let hv = conductor.route(victim).unwrap();
    let hb = conductor.route(bystander).unwrap();
    hv.apply(atoms("e(a,b).")).unwrap();
    hv.inject_panic();

    // The worker survives: the bystander is served by the same thread.
    let out = hb.apply(atoms("e(x,y).")).unwrap();
    assert_eq!(out.total_facts, 2);

    // The victim is poisoned, its mailbox dead — requeued nothing.
    let q = ConjunctiveQuery::parse("q(X) <- e(a,X)").unwrap();
    assert!(matches!(
        hv.query(&q, QueryOpts::default()),
        Err(ServeError::Poisoned(StopReason::Failed))
    ));
    assert!(matches!(
        hv.apply(atoms("e(c,d).")),
        Err(ServeError::SessionGone)
    ));
    assert!(
        conductor
            .metrics_text()
            .contains("chase_pool_panics_total 1"),
        "panic not counted"
    );
    // Close still releases the slot; the conductor is fully usable.
    conductor.close(victim).unwrap();
    conductor.close(bystander).unwrap();
    assert_eq!(conductor.session_count(), 0);
    conductor.shutdown();
}
