//! Property-based tests over random TGD sets and instances: the paper's
//! class-inclusion lattice (Figure 1), chase soundness, and structural
//! invariants must hold on *arbitrary* well-formed inputs, not just the
//! corpus.

use chase::prelude::*;
use chase_corpus::random::{random_instance, random_tgds, RandomInstanceConfig, RandomTgdConfig};
use chase_engine::Strategy as ChaseStrategy;
use chase_termination::restriction::minimal_restriction_system;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

fn pc() -> PrecedenceConfig {
    PrecedenceConfig::default()
}

/// Strategy: a seeded random TGD set, small enough for the coNP oracles.
fn arb_tgds() -> impl proptest::strategy::Strategy<Value = ConstraintSet> {
    (any::<u64>(), 1usize..=4, 2usize..=3).prop_map(|(seed, constraints, preds)| {
        random_tgds(&RandomTgdConfig {
            constraints,
            predicates: preds,
            max_arity: 3,
            body_atoms: (1, 2),
            head_atoms: (1, 2),
            existential_prob: 0.35,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn weak_acyclicity_implies_safety(set in arb_tgds()) {
        if is_weakly_acyclic(&set) {
            prop_assert!(is_safe(&set), "WA ⇒ safe failed on:\n{set}");
        }
    }

    #[test]
    fn propagation_graph_is_a_subgraph_of_dependency_graph(set in arb_tgds()) {
        let dep = dependency_graph(&set);
        let prop = propagation_graph(&set);
        for p in &prop.positions {
            prop_assert!(dep.index.contains_key(p), "node {p} missing in dep graph");
        }
        for e in prop.edges() {
            prop_assert!(dep.edges().contains(&e), "edge {e:?} missing in dep graph");
        }
    }

    #[test]
    fn restriction_f_is_contained_in_affected(set in arb_tgds()) {
        let aff = affected_positions(&set);
        let rs = minimal_restriction_system(&set, 2, &pc());
        for p in &rs.f {
            prop_assert!(aff.contains(p), "f position {p} not affected:\n{set}");
        }
    }

    #[test]
    fn safety_implies_membership_in_t2(set in arb_tgds()) {
        if is_safe(&set) {
            let r = is_inductively_restricted(&set, &pc());
            prop_assert!(r != Recognition::No, "safe but IR says No:\n{set}");
            let c = check(&set, 2, &pc());
            prop_assert!(c != Recognition::No, "safe but T[2] says No:\n{set}");
        }
    }

    #[test]
    fn definition13_and_figure8_agree_on_t2(set in arb_tgds()) {
        let a = is_inductively_restricted(&set, &pc());
        let b = check(&set, 2, &pc());
        if a != Recognition::Unknown && b != Recognition::Unknown {
            prop_assert_eq!(a, b, "Def 13 vs Fig 8 disagree on:\n{}", set);
        }
    }

    #[test]
    fn t_levels_are_upward_closed(set in arb_tgds()) {
        let two = check(&set, 2, &pc());
        let three = check(&set, 3, &pc());
        if two == Recognition::Yes {
            prop_assert!(three != Recognition::No, "T[2] ⊄ T[3] on:\n{set}");
        }
    }

    #[test]
    fn weak_acyclicity_implies_stratification(set in arb_tgds()) {
        if is_weakly_acyclic(&set) {
            prop_assert!(
                is_stratified(&set, &pc()) != Recognition::No,
                "WA but not stratified:\n{set}"
            );
            prop_assert!(
                is_c_stratified(&set, &pc()) != Recognition::No,
                "WA but not c-stratified:\n{set}"
            );
        }
    }

    #[test]
    fn precedence_is_monotone_in_p(set in arb_tgds()) {
        // Definition 10's null-position condition only weakens as P grows:
        // ≺∅ ⊆ ≺pos(Σ).
        let empty = chase_core::PosSet::new();
        let full = set.positions();
        for a in 0..set.len() {
            for b in 0..set.len() {
                let small = precedes_k(&set, &[a, b], &empty, &pc());
                let big = precedes_k(&set, &[a, b], &full, &pc());
                if small == Verdict::Holds {
                    prop_assert_eq!(
                        big, Verdict::Holds,
                        "≺∅ held but ≺pos(Σ) failed for ({},{}) on:\n{}", a, b, set
                    );
                }
            }
        }
    }

    #[test]
    fn display_parse_roundtrip(set in arb_tgds()) {
        let reparsed = ConstraintSet::parse(&set.to_string()).expect("display parses");
        prop_assert_eq!(reparsed.to_string(), set.to_string());
    }

    #[test]
    fn chase_terminated_means_satisfied(
        set in arb_tgds(),
        facts in 1usize..12,
        dom in 2usize..5,
        iseed in any::<u64>(),
    ) {
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: dom, seed: iseed });
        let res = chase(&inst, &set, &ChaseConfig::with_max_steps(400));
        if res.terminated() {
            prop_assert!(set.satisfied_by(&res.instance), "terminated but unsatisfied:\n{set}\non {inst}");
        }
    }

    #[test]
    fn safe_sets_terminate_under_random_orders(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
        facts in 1usize..10,
    ) {
        // Restrict to generated sets that happen to be safe; Theorem 5 says
        // every sequence terminates polynomially.
        let set = random_tgds(&RandomTgdConfig {
            constraints: 3,
            predicates: 2,
            max_arity: 2,
            body_atoms: (1, 2),
            head_atoms: (1, 1),
            existential_prob: 0.3,
            seed,
        });
        prop_assume!(is_safe(&set));
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed });
        let cfg = ChaseConfig {
            strategy: ChaseStrategy::Random { seed: order_seed },
            max_steps: Some(50_000),
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        prop_assert!(res.terminated(), "safe set did not terminate:\n{set}\non {inst}");
    }

    #[test]
    fn monitor_cyclicity_is_monotone(
        set in arb_tgds(),
        facts in 1usize..8,
        iseed in any::<u64>(),
    ) {
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: 3, seed: iseed });
        let cfg = ChaseConfig {
            keep_monitor: true,
            max_steps: Some(120),
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        let g = res.monitor.expect("monitor kept");
        for k in 1..=g.max_chain() {
            prop_assert!(g.is_k_cyclic(k));
        }
        prop_assert!(!g.is_k_cyclic(g.max_chain() + 1));
        prop_assert_eq!(g.nodes().len(), res.fresh_nulls);
    }

    #[test]
    fn instance_display_roundtrip(
        facts in 1usize..15,
        dom in 1usize..5,
        seed in any::<u64>(),
    ) {
        let set = random_tgds(&RandomTgdConfig { constraints: 2, seed, ..RandomTgdConfig::default() });
        let inst = random_instance(&set, &RandomInstanceConfig { facts, domain: dom, seed });
        let reparsed = Instance::parse(&inst.to_string()).expect("display parses");
        prop_assert_eq!(reparsed, inst);
    }
}
