//! The session server, pinned at its two trust boundaries:
//!
//! * **The wire.** Every [`Request`]/[`Response`] round-trips bit-exactly
//!   through the framed codec (property-tested over seeded random
//!   messages), and *no* byte-level corruption — truncation at every
//!   prefix, random flips, oversized length prefixes — can make decoding
//!   panic: malformed input always comes back as a [`ProtoError`] value.
//!
//! * **The clock.** A query admitted while an apply is chasing inside the
//!   session's actor is answered from the *published* snapshot: it sees
//!   exactly the pre-batch instance (never a torn intermediate state), and
//!   once the apply's acknowledgement is observed, reads see the post-batch
//!   instance (read-your-writes).
//!
//! Plus the full loopback TCP lifecycle: multi-tenant isolation under
//! concurrent connections and every protocol error path.
//!
//! The vendored proptest stand-in has no collection strategies, so random
//! messages are generated from a `u64` seed through a `StdRng`, like the
//! `chase-corpus` random families.

use chase::prelude::*;
use chase::serve::proto::{read_frame, ErrorCode, ProtoError, Request, Response, MAX_FRAME};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::Cursor;

// ---------------------------------------------------------------------------
// Seeded message generators
// ---------------------------------------------------------------------------

/// A string the protocol may carry: anything UTF-8, including separators,
/// quotes, multi-byte characters and embedded newlines.
fn wire_text(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '0', '_', '(', ')', ',', '.', ';', ' ', '\n', '\t', '"', '\\', 'é', 'π', '→',
        '🦀',
    ];
    let len = rng.gen_range(0..24usize);
    (0..len)
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

fn opts(rng: &mut StdRng) -> QueryOpts {
    QueryOpts {
        all: rng.gen_bool(0.5),
        sqo: rng.gen_bool(0.5),
    }
}

fn stop_reason(rng: &mut StdRng) -> StopReason {
    match rng.gen_range(0..5u8) {
        0 => StopReason::Satisfied,
        1 => StopReason::Failed,
        2 => StopReason::StepLimit(rng.gen_range(0..1_000_000usize)),
        3 => StopReason::NullLimit(rng.gen_range(0..1_000_000usize)),
        _ => StopReason::MonitorAbort {
            depth: rng.gen_range(0..64usize),
        },
    }
}

fn request(rng: &mut StdRng) -> Request {
    let session = rng.next_u64();
    match rng.gen_range(0..8u8) {
        0 => Request::Open {
            sigma: wire_text(rng),
        },
        1 => Request::Apply {
            session,
            facts: wire_text(rng),
        },
        2 => Request::Query {
            session,
            cq: wire_text(rng),
            opts: opts(rng),
        },
        3 => Request::Snapshot { session },
        4 => Request::Restore {
            session,
            snapshot: rng.next_u64(),
        },
        5 => Request::Stats { session },
        6 => Request::Dump { session },
        _ => Request::Close { session },
    }
}

fn response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..9u8) {
        0 => Response::Opened {
            session: rng.next_u64(),
        },
        1 => Response::Applied {
            outcome: ChaseOutcome {
                reason: stop_reason(rng),
                steps: rng.gen_range(0..1_000_000usize),
                fresh_nulls: rng.gen_range(0..10_000usize),
                new_facts: rng.gen_range(0..10_000usize),
                total_facts: rng.gen_range(0..1_000_000usize),
                epoch: rng.next_u64(),
            },
        },
        2 => {
            let tuples = (0..rng.gen_range(0..6usize))
                .map(|_| {
                    (0..rng.gen_range(0..4usize))
                        .map(|_| wire_text(rng))
                        .collect()
                })
                .collect();
            Response::Answers { tuples }
        }
        3 => Response::Snapshotted {
            snapshot: rng.next_u64(),
        },
        4 => Response::Restored,
        5 => Response::Stats {
            stats: SessionStats {
                epoch: rng.next_u64(),
                total_facts: rng.next_u64(),
                total_steps: rng.next_u64(),
                plan_recompiles: rng.next_u64(),
                merge_rewritten: rng.next_u64(),
                merge_collapsed: rng.next_u64(),
                last_reason: if rng.gen_bool(0.5) {
                    Some(stop_reason(rng))
                } else {
                    None
                },
                quiescent: rng.gen_bool(0.5),
            },
        },
        6 => Response::Dump {
            text: wire_text(rng),
        },
        7 => Response::Closed,
        _ => Response::Error {
            code: [
                ErrorCode::Parse,
                ErrorCode::Poisoned,
                ErrorCode::Capacity,
                ErrorCode::UnknownSession,
                ErrorCode::UnknownSnapshot,
                ErrorCode::SessionGone,
                ErrorCode::Internal,
            ][rng.gen_range(0..7usize)],
            message: wire_text(rng),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Every message round-trips bit-exactly through encode/frame/decode,
    /// including back-to-back frames sharing one stream.
    #[test]
    fn codec_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reqs: Vec<Request> = (0..8).map(|_| request(&mut rng)).collect();
        let resps: Vec<Response> = (0..8).map(|_| response(&mut rng)).collect();
        let mut stream = Vec::new();
        for r in &reqs {
            r.write_to(&mut stream).unwrap();
        }
        let mut cursor = Cursor::new(stream);
        for r in &reqs {
            let got = Request::read_from(&mut cursor).unwrap();
            prop_assert_eq!(got.as_ref(), Some(r));
        }
        prop_assert_eq!(Request::read_from(&mut cursor).unwrap(), None);
        for r in &resps {
            let bytes = r.encode();
            prop_assert_eq!(&Response::decode(&bytes).unwrap(), r);
        }
    }

    /// No byte-level corruption panics the decoder: every strict prefix of
    /// a valid payload is an error, and arbitrary single-byte flips decode
    /// to *something* (a value or an error), never a crash.
    #[test]
    fn corruption_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payloads = [request(&mut rng).encode(), response(&mut rng).encode()];
        for (which, payload) in payloads.iter().enumerate() {
            for cut in 0..payload.len() {
                let err_req = Request::decode(&payload[..cut]).is_err();
                let err_resp = Response::decode(&payload[..cut]).is_err();
                // A strict prefix can never be a complete message of the
                // *same* kind it was cut from.
                if which == 0 {
                    prop_assert!(err_req, "prefix of len {cut} decoded as a request");
                } else {
                    prop_assert!(err_resp, "prefix of len {cut} decoded as a response");
                }
            }
            for _ in 0..64 {
                let mut bent = payload.clone();
                let at = rng.gen_range(0..bent.len());
                bent[at] ^= 1 << rng.gen_range(0..8u32);
                let _ = Request::decode(&bent);
                let _ = Response::decode(&bent);
            }
            // Appending garbage is always trailing-bytes, never accepted
            // (as the message kind the payload came from; the other kind's
            // tag space may happen to fit the bytes).
            let mut long = payload.clone();
            long.push(rng.next_u64() as u8);
            if which == 0 {
                prop_assert!(Request::decode(&long).is_err());
            } else {
                prop_assert!(Response::decode(&long).is_err());
            }
        }
    }

    /// Frame reading rejects truncated and oversized frames without
    /// allocating or panicking, whatever the declared length.
    #[test]
    fn bad_frames_are_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Truncated mid-prefix.
        let cut = rng.gen_range(1..4usize);
        let mut c = Cursor::new(vec![0u8; cut]);
        prop_assert_eq!(read_frame(&mut c).unwrap_err(), ProtoError::Truncated);
        // Truncated mid-payload.
        let declared = rng.gen_range(1..64u32);
        let supplied = rng.gen_range(0..declared) as usize;
        let mut bytes = declared.to_le_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(0u8, supplied));
        let mut c = Cursor::new(bytes);
        prop_assert_eq!(read_frame(&mut c).unwrap_err(), ProtoError::Truncated);
        // Oversized declared length: rejected before allocation.
        let len = MAX_FRAME + 1 + rng.gen_range(0..1_000_000u32);
        let mut c = Cursor::new(len.to_le_bytes().to_vec());
        prop_assert_eq!(read_frame(&mut c).unwrap_err(), ProtoError::Oversized { len });
    }
}

// ---------------------------------------------------------------------------
// Snapshot isolation under concurrency
// ---------------------------------------------------------------------------

fn atoms(text: &str) -> Vec<Atom> {
    Instance::parse(text).unwrap().atoms()
}

fn normalized(mut answers: Vec<Vec<Term>>) -> Vec<Vec<Term>> {
    answers.sort();
    answers
}

/// A query answered while an apply is chasing inside the actor sees
/// exactly the pre-batch snapshot; after the apply's acknowledgement, the
/// post-batch instance (read-your-writes). Nothing in between is ever
/// observable.
#[test]
fn query_mid_apply_sees_exactly_the_pre_batch_snapshot() {
    let conductor = Conductor::new(ConductorConfig {
        step_budget: None,
        ..ConductorConfig::default()
    });
    let id = conductor
        .open(ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap())
        .unwrap();
    let h = conductor.route(id).unwrap();

    // Pre-batch state: one short chain from `a`.
    h.apply(atoms("E(a,b). E(b,c).")).unwrap();
    let q = ConjunctiveQuery::parse("q(X) <- E(a,X)").unwrap();
    let pre = normalized(h.query(&q, QueryOpts::default()).unwrap());
    assert_eq!(pre.len(), 2); // b and c

    // The batch extends the chain from `c`, so its closure adds new
    // `E(a, _)` answers — pre and post are disjoint in size.
    let mut batch = String::new();
    batch.push_str("E(c,m0). ");
    for i in 0..160 {
        batch.push_str(&format!("E(m{i},m{}). ", i + 1));
    }
    let pending = h.apply_async(atoms(&batch));

    // Issued immediately after enqueueing: the actor is (at most) mid-way
    // through the batch, and the published snapshot is still pre-batch.
    let mid = normalized(h.query(&q, QueryOpts::default()).unwrap());
    assert_eq!(
        mid, pre,
        "a query racing the apply must see exactly the pre-batch snapshot"
    );

    // Every answer until the ack is either the pre-batch snapshot or the
    // complete post-batch one — never a torn intermediate.
    let post = loop {
        let now = normalized(h.query(&q, QueryOpts::default()).unwrap());
        if now != pre {
            break now;
        }
        if pending.try_recv().is_ok() {
            // Ack observed: from here on, reads must be post-batch.
            break normalized(h.query(&q, QueryOpts::default()).unwrap());
        }
    };
    assert_eq!(
        post.len(),
        2 + 161,
        "post-batch closure from `a`: b, c, m0..m160"
    );
    // Drain the ack if the loop broke on publication first.
    let _ = pending.recv();
    let settled = normalized(h.query(&q, QueryOpts::default()).unwrap());
    assert_eq!(settled, post, "after the ack, reads are post-batch");
}

// ---------------------------------------------------------------------------
// Loopback TCP
// ---------------------------------------------------------------------------

/// Concurrent tenants over real connections: every tenant's chased state
/// stays its own (no cross-session leakage), and the conductor serves all
/// of them to completion.
#[test]
fn concurrent_tenants_are_isolated() {
    let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let s = c.open("rail(X,Y,D) -> rail(Y,X,D)").expect("open");
                for i in 0..5 {
                    c.apply(s, &format!("rail(t{t}_{i},t{t}_{next},d).", next = i + 1))
                        .map_err(|e| format!("{e}"))
                        .expect("apply");
                }
                let mine = c
                    .query(
                        s,
                        &format!("q(X) <- rail(X,t{t}_0,D)"),
                        QueryOpts::default(),
                    )
                    .expect("query");
                let stats = c.stats(s).expect("stats");
                c.close(s).expect("close");
                (mine, stats)
            })
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let (mine, stats) = h.join().unwrap();
        // Only this tenant's own symmetric edge answers its query.
        assert_eq!(mine, vec![vec![format!("t{t}_1")]]);
        assert_eq!(stats.epoch, 5);
        assert_eq!(stats.total_facts, 10);
    }
    assert_eq!(server.conductor().session_count(), 0);
    server.shutdown();
}

/// Every protocol error path over the wire: parse failures, unknown ids,
/// capacity, poisoning — each as a typed [`ErrorCode`], with the session
/// (where one exists) left usable.
#[test]
fn protocol_error_paths() {
    let server = serve(
        "127.0.0.1:0",
        ConductorConfig {
            max_sessions: 2,
            ..ConductorConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let code = |e: ClientError| match e {
        ClientError::Server { code, .. } => code,
        other => panic!("expected server error, got {other:?}"),
    };

    // Parse errors: sigma, facts, query.
    assert_eq!(code(c.open("not a sigma").unwrap_err()), ErrorCode::Parse);
    let s = c.open("p(X), p(Y) -> X = Y").unwrap();
    assert_eq!(code(c.apply(s, "p(").unwrap_err()), ErrorCode::Parse);
    assert_eq!(
        code(c.query(s, "garbage", QueryOpts::default()).unwrap_err()),
        ErrorCode::Parse
    );

    // Unknown ids.
    assert_eq!(code(c.stats(999).unwrap_err()), ErrorCode::UnknownSession);
    assert_eq!(
        code(c.restore(s, 42).unwrap_err()),
        ErrorCode::UnknownSnapshot
    );

    // Capacity: the cap counts sessions, and close frees the slot.
    let s2 = c.open("e(X,Y) -> e(Y,X)").unwrap();
    assert_eq!(
        code(c.open("e(X,Y) -> e(Y,X)").unwrap_err()),
        ErrorCode::Capacity
    );
    c.close(s2).unwrap();
    let s3 = c.open("e(X,Y) -> e(Y,X)").unwrap();
    c.close(s3).unwrap();

    // Poisoning: a failing EGD poisons the session; snapshots taken before
    // the poisoning batch recover it.
    let snap = c.snapshot(s).unwrap();
    let out = c.apply(s, "p(a). p(b).").unwrap();
    assert_eq!(out.reason, StopReason::Failed);
    assert_eq!(
        code(
            c.query(s, "q(X) <- p(X)", QueryOpts::default())
                .unwrap_err()
        ),
        ErrorCode::Poisoned
    );
    assert_eq!(code(c.dump(s).unwrap_err()), ErrorCode::Poisoned);
    c.restore(s, snap).unwrap();
    c.apply(s, "p(a).").unwrap();
    assert_eq!(
        c.query(s, "q(X) <- p(X)", QueryOpts::default()).unwrap(),
        vec![vec!["a".to_string()]]
    );
    c.close(s).unwrap();
    server.shutdown();
}

/// `QueryOpts` travel the wire: `all` keeps labeled-null tuples that the
/// certain-answer default projects away.
#[test]
fn query_opts_select_evaluation_over_the_wire() {
    let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let s = c.open("person(X) -> hasParent(X,Y)").unwrap();
    c.apply(s, "person(ada).").unwrap();
    let certain = c
        .query(s, "q(X,Y) <- hasParent(X,Y)", QueryOpts::default())
        .unwrap();
    assert!(certain.is_empty(), "null parent is not a certain answer");
    let all = c
        .query(s, "q(X,Y) <- hasParent(X,Y)", QueryOpts::all_tuples())
        .unwrap();
    assert_eq!(all.len(), 1, "the full evaluation keeps the null tuple");
    c.close(s).unwrap();
    server.shutdown();
}
