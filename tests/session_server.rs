//! The session server, pinned at its two trust boundaries:
//!
//! * **The wire.** Every [`Request`]/[`Response`] round-trips bit-exactly
//!   through the framed codec (property-tested over seeded random
//!   messages), correlation ids are echoed verbatim and associate replies
//!   even when they arrive out of request order, and *no* byte-level
//!   corruption — truncation at every prefix, random flips, oversized
//!   length prefixes — can make decoding panic: malformed input always
//!   comes back as a [`ProtoError`] value. A v1 (no-correlation) client is
//!   answered with a clean version error frame, never silence.
//!
//! * **The clock.** A query admitted while an apply is chasing inside the
//!   session's actor is answered from the *published* snapshot: it sees
//!   exactly the pre-batch instance (never a torn intermediate state), and
//!   once the apply's acknowledgement is observed, reads see the post-batch
//!   instance (read-your-writes).
//!
//! Plus the full loopback TCP lifecycle: multi-tenant isolation under
//! concurrent connections and every protocol error path — each concurrency
//! test run against **both** schedulers (the pooled run queue and the
//! legacy `workers: 0` thread-per-session escape hatch), so their
//! equivalence is pinned rather than assumed.
//!
//! The vendored proptest stand-in has no collection strategies, so random
//! messages are generated from a `u64` seed through a `StdRng`, like the
//! `chase-corpus` random families.

use chase::prelude::*;
use chase::serve::proto::{
    read_frame, write_frame, ErrorCode, ProtoError, Request, Response, MAX_FRAME,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::Cursor;

/// The two conductor scheduling modes every concurrency test must agree
/// across: the bounded worker pool (default) and the legacy
/// thread-per-session escape hatch (`workers: 0`, kept for one release).
fn scheduler_modes() -> [(&'static str, ConductorConfig); 2] {
    [
        ("pool", ConductorConfig::default()),
        (
            "legacy-threads",
            ConductorConfig {
                workers: 0,
                ..ConductorConfig::default()
            },
        ),
    ]
}

// ---------------------------------------------------------------------------
// Seeded message generators
// ---------------------------------------------------------------------------

/// A string the protocol may carry: anything UTF-8, including separators,
/// quotes, multi-byte characters and embedded newlines.
fn wire_text(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '0', '_', '(', ')', ',', '.', ';', ' ', '\n', '\t', '"', '\\', 'é', 'π', '→',
        '🦀',
    ];
    let len = rng.gen_range(0..24usize);
    (0..len)
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

fn opts(rng: &mut StdRng) -> QueryOpts {
    QueryOpts {
        all: rng.gen_bool(0.5),
        sqo: rng.gen_bool(0.5),
    }
}

fn stop_reason(rng: &mut StdRng) -> StopReason {
    match rng.gen_range(0..5u8) {
        0 => StopReason::Satisfied,
        1 => StopReason::Failed,
        2 => StopReason::StepLimit(rng.gen_range(0..1_000_000usize)),
        3 => StopReason::NullLimit(rng.gen_range(0..1_000_000usize)),
        _ => StopReason::MonitorAbort {
            depth: rng.gen_range(0..64usize),
        },
    }
}

fn request(rng: &mut StdRng) -> Request {
    let session = rng.next_u64();
    match rng.gen_range(0..8u8) {
        0 => Request::Open {
            sigma: wire_text(rng),
        },
        1 => Request::Apply {
            session,
            facts: wire_text(rng),
        },
        2 => Request::Query {
            session,
            cq: wire_text(rng),
            opts: opts(rng),
        },
        3 => Request::Snapshot { session },
        4 => Request::Restore {
            session,
            snapshot: rng.next_u64(),
        },
        5 => Request::Stats { session },
        6 => Request::Dump { session },
        _ => Request::Close { session },
    }
}

fn response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..9u8) {
        0 => Response::Opened {
            session: rng.next_u64(),
        },
        1 => Response::Applied {
            outcome: ChaseOutcome {
                reason: stop_reason(rng),
                steps: rng.gen_range(0..1_000_000usize),
                fresh_nulls: rng.gen_range(0..10_000usize),
                new_facts: rng.gen_range(0..10_000usize),
                total_facts: rng.gen_range(0..1_000_000usize),
                epoch: rng.next_u64(),
            },
        },
        2 => {
            let tuples = (0..rng.gen_range(0..6usize))
                .map(|_| {
                    (0..rng.gen_range(0..4usize))
                        .map(|_| wire_text(rng))
                        .collect()
                })
                .collect();
            Response::Answers { tuples }
        }
        3 => Response::Snapshotted {
            snapshot: rng.next_u64(),
        },
        4 => Response::Restored,
        5 => Response::Stats {
            stats: SessionStats {
                epoch: rng.next_u64(),
                total_facts: rng.next_u64(),
                total_steps: rng.next_u64(),
                plan_recompiles: rng.next_u64(),
                merge_rewritten: rng.next_u64(),
                merge_collapsed: rng.next_u64(),
                last_reason: if rng.gen_bool(0.5) {
                    Some(stop_reason(rng))
                } else {
                    None
                },
                quiescent: rng.gen_bool(0.5),
            },
        },
        6 => Response::Dump {
            text: wire_text(rng),
        },
        7 => Response::Closed,
        _ => Response::Error {
            code: [
                ErrorCode::Parse,
                ErrorCode::Poisoned,
                ErrorCode::Capacity,
                ErrorCode::UnknownSession,
                ErrorCode::UnknownSnapshot,
                ErrorCode::SessionGone,
                ErrorCode::Internal,
            ][rng.gen_range(0..7usize)],
            message: wire_text(rng),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Every message round-trips bit-exactly through encode/frame/decode —
    /// including its correlation id, echoed verbatim over the full u64
    /// range — with back-to-back frames sharing one stream.
    #[test]
    fn codec_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reqs: Vec<(u64, Request)> = (0..8)
            .map(|_| (rng.next_u64(), request(&mut rng)))
            .collect();
        let resps: Vec<(u64, Response)> = (0..8)
            .map(|_| (rng.next_u64(), response(&mut rng)))
            .collect();
        let mut stream = Vec::new();
        for (corr, r) in &reqs {
            r.write_to(&mut stream, *corr).unwrap();
        }
        let mut cursor = Cursor::new(stream);
        for (corr, r) in &reqs {
            let got = Request::read_from(&mut cursor).unwrap();
            prop_assert_eq!(got.as_ref(), Some(&(*corr, r.clone())));
        }
        prop_assert_eq!(Request::read_from(&mut cursor).unwrap(), None);
        for (corr, r) in &resps {
            let bytes = r.encode(*corr);
            prop_assert_eq!(&Response::decode(&bytes).unwrap(), &(*corr, r.clone()));
        }
    }

    /// Correlation ids associate replies with their requests even when the
    /// replies arrive in a different order than the requests were issued:
    /// shuffling the reply stream loses nothing and confuses nothing.
    #[test]
    fn out_of_order_replies_associate_by_correlation_id(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..10usize);
        let base = rng.next_u64();
        // Distinct ids (sequential from a random base, as Client issues).
        let resps: Vec<(u64, Response)> = (0..n)
            .map(|i| (base.wrapping_add(i as u64), response(&mut rng)))
            .collect();
        // Serve the replies in a shuffled order.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut stream = Vec::new();
        for &i in &order {
            resps[i].1.write_to(&mut stream, resps[i].0).unwrap();
        }
        // Reassociate by id: every reply lands on its own request slot.
        let mut cursor = Cursor::new(stream);
        let mut slots: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        while let Some((corr, resp)) = Response::read_from(&mut cursor).unwrap() {
            let idx = usize::try_from(corr.wrapping_sub(base)).unwrap();
            prop_assert!(idx < n, "correlation id outside the batch");
            prop_assert!(slots[idx].is_none(), "duplicate correlation id");
            slots[idx] = Some(resp);
        }
        for (i, slot) in slots.into_iter().enumerate() {
            prop_assert_eq!(slot.as_ref(), Some(&resps[i].1));
        }
    }

    /// No byte-level corruption panics the decoder: every strict prefix of
    /// a valid payload is an error, and arbitrary single-byte flips decode
    /// to *something* (a value or an error), never a crash.
    #[test]
    fn corruption_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payloads = [
            request(&mut rng).encode(rng.next_u64()),
            response(&mut rng).encode(rng.next_u64()),
        ];
        for (which, payload) in payloads.iter().enumerate() {
            for cut in 0..payload.len() {
                let err_req = Request::decode(&payload[..cut]).is_err();
                let err_resp = Response::decode(&payload[..cut]).is_err();
                // A strict prefix can never be a complete message of the
                // *same* kind it was cut from.
                if which == 0 {
                    prop_assert!(err_req, "prefix of len {cut} decoded as a request");
                } else {
                    prop_assert!(err_resp, "prefix of len {cut} decoded as a response");
                }
            }
            for _ in 0..64 {
                let mut bent = payload.clone();
                let at = rng.gen_range(0..bent.len());
                bent[at] ^= 1 << rng.gen_range(0..8u32);
                let _ = Request::decode(&bent);
                let _ = Response::decode(&bent);
            }
            // Appending garbage is always trailing-bytes, never accepted
            // (as the message kind the payload came from; the other kind's
            // tag space may happen to fit the bytes).
            let mut long = payload.clone();
            long.push(rng.next_u64() as u8);
            if which == 0 {
                prop_assert!(Request::decode(&long).is_err());
            } else {
                prop_assert!(Response::decode(&long).is_err());
            }
        }
    }

    /// Frame reading rejects truncated and oversized frames without
    /// allocating or panicking, whatever the declared length.
    #[test]
    fn bad_frames_are_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Truncated mid-prefix.
        let cut = rng.gen_range(1..4usize);
        let mut c = Cursor::new(vec![0u8; cut]);
        prop_assert_eq!(read_frame(&mut c).unwrap_err(), ProtoError::Truncated);
        // Truncated mid-payload.
        let declared = rng.gen_range(1..64u32);
        let supplied = rng.gen_range(0..declared) as usize;
        let mut bytes = declared.to_le_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(0u8, supplied));
        let mut c = Cursor::new(bytes);
        prop_assert_eq!(read_frame(&mut c).unwrap_err(), ProtoError::Truncated);
        // Oversized declared length: rejected before allocation.
        let len = MAX_FRAME + 1 + rng.gen_range(0..1_000_000u32);
        let mut c = Cursor::new(len.to_le_bytes().to_vec());
        prop_assert_eq!(read_frame(&mut c).unwrap_err(), ProtoError::Oversized { len });
    }
}

// ---------------------------------------------------------------------------
// Snapshot isolation under concurrency
// ---------------------------------------------------------------------------

fn atoms(text: &str) -> Vec<Atom> {
    Instance::parse(text).unwrap().atoms()
}

fn normalized(mut answers: Vec<Vec<Term>>) -> Vec<Vec<Term>> {
    answers.sort();
    answers
}

/// A query answered while an apply is chasing inside the actor sees
/// exactly the pre-batch snapshot; after the apply's acknowledgement, the
/// post-batch instance (read-your-writes). Nothing in between is ever
/// observable — under either scheduler.
#[test]
fn query_mid_apply_sees_exactly_the_pre_batch_snapshot() {
    for (mode, cfg) in scheduler_modes() {
        eprintln!("scheduler mode: {mode}");
        query_mid_apply_in(cfg);
    }
}

fn query_mid_apply_in(cfg: ConductorConfig) {
    let conductor = Conductor::new(ConductorConfig {
        step_budget: None,
        ..cfg
    });
    let id = conductor
        .open(ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap())
        .unwrap();
    let h = conductor.route(id).unwrap();

    // Pre-batch state: one short chain from `a`.
    h.apply(atoms("E(a,b). E(b,c).")).unwrap();
    let q = ConjunctiveQuery::parse("q(X) <- E(a,X)").unwrap();
    let pre = normalized(h.query(&q, QueryOpts::default()).unwrap());
    assert_eq!(pre.len(), 2); // b and c

    // The batch extends the chain from `c`, so its closure adds new
    // `E(a, _)` answers — pre and post are disjoint in size.
    let mut batch = String::new();
    batch.push_str("E(c,m0). ");
    for i in 0..160 {
        batch.push_str(&format!("E(m{i},m{}). ", i + 1));
    }
    let pending = h.apply_async(atoms(&batch));

    // Issued immediately after enqueueing: the actor is (at most) mid-way
    // through the batch, and the published snapshot is still pre-batch.
    let mid = normalized(h.query(&q, QueryOpts::default()).unwrap());
    assert_eq!(
        mid, pre,
        "a query racing the apply must see exactly the pre-batch snapshot"
    );

    // Every answer until the ack is either the pre-batch snapshot or the
    // complete post-batch one — never a torn intermediate.
    let post = loop {
        let now = normalized(h.query(&q, QueryOpts::default()).unwrap());
        if now != pre {
            break now;
        }
        if pending.try_recv().is_ok() {
            // Ack observed: from here on, reads must be post-batch.
            break normalized(h.query(&q, QueryOpts::default()).unwrap());
        }
    };
    assert_eq!(
        post.len(),
        2 + 161,
        "post-batch closure from `a`: b, c, m0..m160"
    );
    // Drain the ack if the loop broke on publication first.
    let _ = pending.recv();
    let settled = normalized(h.query(&q, QueryOpts::default()).unwrap());
    assert_eq!(settled, post, "after the ack, reads are post-batch");
}

// ---------------------------------------------------------------------------
// Loopback TCP
// ---------------------------------------------------------------------------

/// Concurrent tenants over real connections: every tenant's chased state
/// stays its own (no cross-session leakage), and the conductor serves all
/// of them to completion — under either scheduler.
#[test]
fn concurrent_tenants_are_isolated() {
    for (mode, cfg) in scheduler_modes() {
        eprintln!("scheduler mode: {mode}");
        concurrent_tenants_in(cfg);
    }
}

fn concurrent_tenants_in(cfg: ConductorConfig) {
    let server = serve("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let s = c.open("rail(X,Y,D) -> rail(Y,X,D)").expect("open");
                for i in 0..5 {
                    c.apply(s, &format!("rail(t{t}_{i},t{t}_{next},d).", next = i + 1))
                        .map_err(|e| format!("{e}"))
                        .expect("apply");
                }
                let mine = c
                    .query(
                        s,
                        &format!("q(X) <- rail(X,t{t}_0,D)"),
                        QueryOpts::default(),
                    )
                    .expect("query");
                let stats = c.stats(s).expect("stats");
                c.close(s).expect("close");
                (mine, stats)
            })
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let (mine, stats) = h.join().unwrap();
        // Only this tenant's own symmetric edge answers its query.
        assert_eq!(mine, vec![vec![format!("t{t}_1")]]);
        assert_eq!(stats.epoch, 5);
        assert_eq!(stats.total_facts, 10);
    }
    assert_eq!(server.conductor().session_count(), 0);
    server.shutdown();
}

/// Every protocol error path over the wire: parse failures, unknown ids,
/// capacity, poisoning — each as a typed [`ErrorCode`], with the session
/// (where one exists) left usable.
#[test]
fn protocol_error_paths() {
    let server = serve(
        "127.0.0.1:0",
        ConductorConfig {
            max_sessions: 2,
            ..ConductorConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let code = |e: ClientError| match e {
        ClientError::Server { code, .. } => code,
        other => panic!("expected server error, got {other:?}"),
    };

    // Parse errors: sigma, facts, query.
    assert_eq!(code(c.open("not a sigma").unwrap_err()), ErrorCode::Parse);
    let s = c.open("p(X), p(Y) -> X = Y").unwrap();
    assert_eq!(code(c.apply(s, "p(").unwrap_err()), ErrorCode::Parse);
    assert_eq!(
        code(c.query(s, "garbage", QueryOpts::default()).unwrap_err()),
        ErrorCode::Parse
    );

    // Unknown ids.
    assert_eq!(code(c.stats(999).unwrap_err()), ErrorCode::UnknownSession);
    assert_eq!(
        code(c.restore(s, 42).unwrap_err()),
        ErrorCode::UnknownSnapshot
    );

    // Capacity: the cap counts sessions, and close frees the slot.
    let s2 = c.open("e(X,Y) -> e(Y,X)").unwrap();
    assert_eq!(
        code(c.open("e(X,Y) -> e(Y,X)").unwrap_err()),
        ErrorCode::Capacity
    );
    c.close(s2).unwrap();
    let s3 = c.open("e(X,Y) -> e(Y,X)").unwrap();
    c.close(s3).unwrap();

    // Poisoning: a failing EGD poisons the session; snapshots taken before
    // the poisoning batch recover it.
    let snap = c.snapshot(s).unwrap();
    let out = c.apply(s, "p(a). p(b).").unwrap();
    assert_eq!(out.reason, StopReason::Failed);
    assert_eq!(
        code(
            c.query(s, "q(X) <- p(X)", QueryOpts::default())
                .unwrap_err()
        ),
        ErrorCode::Poisoned
    );
    assert_eq!(code(c.dump(s).unwrap_err()), ErrorCode::Poisoned);
    c.restore(s, snap).unwrap();
    c.apply(s, "p(a).").unwrap();
    assert_eq!(
        c.query(s, "q(X) <- p(X)", QueryOpts::default()).unwrap(),
        vec![vec!["a".to_string()]]
    );
    c.close(s).unwrap();
    server.shutdown();
}

/// `QueryOpts` travel the wire: `all` keeps labeled-null tuples that the
/// certain-answer default projects away.
#[test]
fn query_opts_select_evaluation_over_the_wire() {
    let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let s = c.open("person(X) -> hasParent(X,Y)").unwrap();
    c.apply(s, "person(ada).").unwrap();
    let certain = c
        .query(s, "q(X,Y) <- hasParent(X,Y)", QueryOpts::default())
        .unwrap();
    assert!(certain.is_empty(), "null parent is not a certain answer");
    let all = c
        .query(s, "q(X,Y) <- hasParent(X,Y)", QueryOpts::all_tuples())
        .unwrap();
    assert_eq!(all.len(), 1, "the full evaluation keeps the null tuple");
    c.close(s).unwrap();
    server.shutdown();
}

/// A v1 (pre-correlation-id) client talking to the new server gets a
/// clean version error frame followed by hangup — never a hang, never
/// silence. The v1 payload layout was `[version][tag][fields]` with no
/// correlation id, so its Metrics request was the two bytes `[1, 9]`.
#[test]
fn v1_clients_get_a_clean_version_error_not_a_hang() {
    let server = serve("127.0.0.1:0", ConductorConfig::default()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, &[1u8, 9]).unwrap();
    // The server replies with exactly one error frame...
    let payload = read_frame(&mut stream)
        .expect("a reply frame, not a hang")
        .expect("a reply frame, not silence");
    let (corr, resp) = Response::decode(&payload).unwrap();
    assert_eq!(corr, 0, "a v1 frame has no id to echo; the reply carries 0");
    match resp {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(message.contains("version"), "unhelpful message: {message}");
        }
        other => panic!("expected an error reply, got {other:?}"),
    }
    // ...then hangs up (resync with a v1 peer is hopeless).
    assert_eq!(read_frame(&mut stream).unwrap(), None);
    server.shutdown();
}
