//! Independent ground truth for the precedence oracle: brute-force `≺` and
//! `≺c` by enumerating *all* small candidate instances directly (every
//! ≤(|body α|+|body β|)-atom instance over a fresh-constant domain — the
//! paper's Prop. 1 bound), and compare against the candidate-search oracle
//! on randomized tiny TGD pairs.
//!
//! For TGD-only pairs the side conditions of Definitions 2 and 4 are
//! insensitive to constants-vs-nulls, so a constant-only enumeration is
//! complete.
//!
//! # Tiers
//!
//! Brute-forcing all small instances is by far the slowest suite in the
//! repo, so the random sweep is tiered: the default (PR CI) tier checks a
//! few seeds, and setting `CHASE_ORACLE_FULL=1` runs the full seed sweep —
//! the scheduled (cron) CI job does, so coverage is weekly rather than
//! per-push.

use chase::prelude::*;
use chase_core::homomorphism::{for_each_hom, Subst};
use chase_corpus::random::{random_tgds, RandomTgdConfig};
use chase_engine::apply_step;

/// All ground atoms over the schema of `set` with the given constant pool.
fn ground_atoms(set: &ConstraintSet, domain: &[Term]) -> Vec<Atom> {
    let schema = set.schema().unwrap();
    let mut out = Vec::new();
    for pred in schema.predicates() {
        let ar = schema.arity(pred).unwrap();
        let count = domain.len().pow(ar as u32);
        for mut code in 0..count {
            let mut terms = Vec::with_capacity(ar);
            for _ in 0..ar {
                terms.push(domain[code % domain.len()]);
                code /= domain.len();
            }
            out.push(Atom::new(pred, terms));
        }
    }
    out
}

/// Enumerate all instances with at most `max_atoms` atoms from `atoms`,
/// calling `f`; stops early when `f` returns true.
fn for_each_instance(
    atoms: &[Atom],
    max_atoms: usize,
    f: &mut dyn FnMut(&Instance) -> bool,
) -> bool {
    fn rec(
        atoms: &[Atom],
        start: usize,
        left: usize,
        current: &mut Vec<Atom>,
        f: &mut dyn FnMut(&Instance) -> bool,
    ) -> bool {
        let inst = Instance::from_atoms(current.iter().cloned()).unwrap();
        if f(&inst) {
            return true;
        }
        if left == 0 {
            return false;
        }
        for i in start..atoms.len() {
            current.push(atoms[i].clone());
            if rec(atoms, i + 1, left - 1, current, f) {
                current.pop();
                return true;
            }
            current.pop();
        }
        false
    }
    rec(atoms, 0, max_atoms, &mut Vec::new(), f)
}

/// Brute-force `α ≺ β` (standard = true) or `α ≺c β` (standard = false).
fn brute_force_precedes(set: &ConstraintSet, a: usize, b: usize, standard: bool) -> bool {
    let alpha = &set[a];
    let beta = &set[b];
    let max_atoms = alpha.body().len() + beta.body().len();
    // Fresh constants, enough for every variable in the pair.
    let nvars = alpha.universals().len() + beta.universals().len();
    let domain: Vec<Term> = (0..nvars.max(1))
        .map(|i| Term::constant(&format!("bf{i}")))
        .collect();
    let atoms = ground_atoms(set, &domain);
    for_each_instance(&atoms, max_atoms, &mut |i0| {
        // Every oblivious trigger of α on I0.
        let mut witnessed = false;
        for_each_hom(alpha.body(), i0, &Subst::new(), false, &mut |mu| {
            if standard && alpha.satisfied_with(i0, mu) {
                return false; // not a standard trigger
            }
            let mut j = i0.clone();
            if apply_step(&mut j, alpha, mu) == chase_engine::StepEffect::Failed {
                return false;
            }
            // Some assignment b with J ⊭ β(b) and I0 ⊨ β(b)?
            let mut found = false;
            for_each_hom(beta.body(), &j, &Subst::new(), false, &mut |nu| {
                let violated_in_j = !beta.satisfied_with(&j, nu);
                if violated_in_j && beta.satisfied_with(i0, nu) {
                    found = true;
                    true
                } else {
                    false
                }
            });
            if found {
                witnessed = true;
                true
            } else {
                false
            }
        });
        witnessed
    })
}

fn tiny_pairs(seed: u64) -> ConstraintSet {
    random_tgds(&RandomTgdConfig {
        constraints: 2,
        predicates: 2,
        max_arity: 2,
        body_atoms: (1, 2),
        head_atoms: (1, 1),
        existential_prob: 0.4,
        seed,
    })
}

/// Seeds for the random sweep: a quick default tier, the full sweep with
/// `CHASE_ORACLE_FULL=1`.
fn sweep_seeds() -> std::ops::Range<u64> {
    if std::env::var_os("CHASE_ORACLE_FULL").is_some_and(|v| v != "0") {
        0..8
    } else {
        0..2
    }
}

#[test]
fn oracle_matches_brute_force_on_random_tiny_pairs() {
    let pc = PrecedenceConfig::default();
    for seed in sweep_seeds() {
        let set = tiny_pairs(seed);
        for a in 0..2 {
            for b in 0..2 {
                let expected_c = brute_force_precedes(&set, a, b, false);
                let got_c = precedes_c(&set, a, b, &pc);
                assert!(
                    got_c.definite(),
                    "seed {seed} ({a},{b}): oracle gave up on\n{set}"
                );
                assert_eq!(
                    got_c.holds(),
                    expected_c,
                    "≺c mismatch at seed {seed} ({a},{b}) on\n{set}"
                );
                let expected_s = brute_force_precedes(&set, a, b, true);
                let got_s = precedes(&set, a, b, &pc);
                assert!(
                    got_s.definite(),
                    "seed {seed} ({a},{b}): oracle gave up on\n{set}"
                );
                assert_eq!(
                    got_s.holds(),
                    expected_s,
                    "≺ mismatch at seed {seed} ({a},{b}) on\n{set}"
                );
            }
        }
    }
}

#[test]
fn oracle_matches_brute_force_on_paper_pairs() {
    let pc = PrecedenceConfig::default();
    // Example 4's set: the documented ≺ / ≺c difference must also show up
    // under brute force.
    let set = chase_corpus::paper::example4_sigma();
    assert!(!brute_force_precedes(&set, 1, 3, true), "α2 ⊀ α4");
    assert!(brute_force_precedes(&set, 1, 3, false), "α2 ≺c α4");
    assert_eq!(precedes(&set, 1, 3, &pc), Verdict::Fails);
    assert_eq!(precedes_c(&set, 1, 3, &pc), Verdict::Holds);
    // γ from Example 2/6.
    let gamma = chase_corpus::paper::example2_gamma();
    assert!(!brute_force_precedes(&gamma, 0, 0, true));
    assert!(!brute_force_precedes(&gamma, 0, 0, false));
}
