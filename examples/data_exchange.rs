//! Data exchange with the chase — the application the paper's termination
//! conditions were invented for.
//!
//! A weakly acyclic source-to-target mapping is chased into a *universal
//! solution*; certain answers are read off the result. A cyclic variant of
//! the same mapping shows how the analysis pipeline degrades gracefully:
//! no data-independent guarantee → data-dependent static check → dynamic
//! monitor guard.
//!
//! ```sh
//! cargo run --example data_exchange
//! ```

use chase::prelude::*;
use chase_corpus::scenarios;
use chase_guarded::qa::certain_answers;

fn main() {
    // 1. The well-behaved mapping: weakly acyclic, so every chase sequence
    //    terminates (Fagin et al., reproduced by our recognizer).
    let sigma = scenarios::data_exchange_scenario();
    println!("source-to-target mapping:");
    for (i, c) in sigma.enumerate() {
        println!("  α{}: {c}", i + 1);
    }
    let pc = PrecedenceConfig::default();
    let report = analyze(&sigma, 3, &pc);
    println!("\nanalysis:\n{report}\n");
    assert!(report.weakly_acyclic);

    // 2. Chase the source instance into a universal solution.
    let source = scenarios::data_exchange_source();
    println!("source: {source}");
    let res = chase_default(&source, &sigma);
    assert!(res.terminated());
    println!(
        "universal solution ({} atoms): {}",
        res.instance.len(),
        res.instance
    );

    // 3. Certain answers over the exchanged data.
    let q = scenarios::data_exchange_query();
    let ans = certain_answers(&source, &sigma, &q, &ChaseConfig::default()).unwrap();
    println!("\ncertain answers to {q}: {ans:?}");
    assert_eq!(ans, vec![vec![Term::constant("alice")]]);

    // 4. The cyclic integration variant: no guarantee, monitor to the rescue.
    let cyclic = scenarios::integration_divergent_scenario();
    println!("\ncyclic integration variant:");
    for (i, c) in cyclic.enumerate() {
        println!("  β{}: {c}", i + 1);
    }
    let report = analyze(&cyclic, 3, &pc);
    println!(
        "data-independent verdict: no guarantee = {}",
        !report.guarantees_some_sequence()
    );
    let res = chase(&source, &cyclic, &ChaseConfig::with_monitor_depth(3));
    println!("guarded chase: {res}");
    assert_eq!(res.reason, StopReason::MonitorAbort { depth: 3 });
}
