//! The Introduction's graph-database scenario: how one changed constraint
//! flips the chase from terminating to divergent, and what each analysis
//! layer says about it.
//!
//! ```sh
//! cargo run --example graph_constraints
//! ```

use chase::prelude::*;
use chase_corpus::paper;

fn main() {
    let instance = paper::intro_instance();
    println!("I = {instance}\n");
    let pc = PrecedenceConfig::default();

    // α1: every special node has an outgoing edge — terminating.
    let a1 = paper::intro_alpha1();
    println!("α1: {a1}");
    let res = chase_default(&instance, &a1);
    println!("  chase: {res}");
    println!("  result: {}", res.instance);
    println!("  weakly acyclic: {}\n", is_weakly_acyclic(&a1));

    // α2: every special node links to a *special* node — divergent.
    let a2 = paper::intro_alpha2();
    println!("α2: {a2}");
    println!("  weakly acyclic: {}", is_weakly_acyclic(&a2));
    println!("  safe:           {}", is_safe(&a2));
    println!("  stratified:     {}", is_stratified(&a2, &pc));
    println!("  T-level ≤ 4:    {:?}", t_level(&a2, 4, &pc).0);
    let res = chase(&instance, &a2, &ChaseConfig::with_max_steps(12));
    println!("  chase (budget 12): {res}");
    let res = chase(&instance, &a2, &ChaseConfig::with_monitor_depth(3));
    println!("  chase (monitor depth 3): {res}\n");

    // The flow-supervision pair β1, β2 (idea 3 of the Introduction /
    // Example 10): no earlier condition recognizes it, inductive
    // restriction does.
    let flow = paper::example10_sigma();
    println!("{{β1, β2}}:");
    for c in flow.iter() {
        println!("  {c}");
    }
    println!("  weakly acyclic:         {}", is_weakly_acyclic(&flow));
    println!("  safe:                   {}", is_safe(&flow));
    println!("  stratified:             {}", is_stratified(&flow, &pc));
    println!(
        "  inductively restricted: {}",
        is_inductively_restricted(&flow, &pc)
    );
    let cycle = chase_corpus::families::cycle_instance(4);
    let res = chase_default(&cycle, &flow);
    println!("  chase on a 4-cycle: {res}");
    assert!(res.terminated());
}
