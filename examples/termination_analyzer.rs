//! Termination analyzer: run every recognizer of the paper over a
//! constraint file (or the built-in corpus) and print a report per set,
//! including DOT renderings of the graphs behind the verdicts.
//!
//! ```sh
//! cargo run --example termination_analyzer                 # built-in corpus
//! cargo run --example termination_analyzer -- file.chase   # your constraints
//! cargo run --example termination_analyzer -- --dot file.chase
//! ```
//!
//! File format: one TGD/EGD per line, e.g. `S(X), E(X,Y) -> E(Y,Z), E(Z,X)`.

use chase::prelude::*;
use chase_corpus::paper;

fn analyze_one(name: &str, set: &ConstraintSet, dot: bool) {
    let pc = PrecedenceConfig::default();
    println!("────────────────────────────────────────────────────────");
    println!("{name}");
    for (i, c) in set.enumerate() {
        println!("  α{}: {c}", i + 1);
    }
    println!();
    println!("{}", analyze(set, 4, &pc));
    println!();
    if dot {
        println!(
            "dependency graph (DOT):\n{}",
            dependency_graph(set).to_dot("dep")
        );
        println!(
            "propagation graph (DOT):\n{}",
            propagation_graph(set).to_dot("prop")
        );
        println!(
            "chase graph (DOT):\n{}",
            chase_graph(set, &pc).to_dot("chase")
        );
        let rs = minimal_restriction_system(set, 2, &pc);
        println!("minimal 2-restriction system: {rs}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dot = args.iter().any(|a| a == "--dot");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if files.is_empty() {
        println!("No file given — analyzing the paper's corpus.\n");
        let corpus: Vec<(&str, ConstraintSet)> = vec![
            ("Introduction α1 (terminating)", paper::intro_alpha1()),
            ("Introduction α2 (divergent)", paper::intro_alpha2()),
            ("Figure 2 (the motivating constraint)", paper::fig2_sigma()),
            (
                "Example 2 γ (2-cycles force 3-cycles)",
                paper::example2_gamma(),
            ),
            (
                "Example 4 (stratification counterexample)",
                paper::example4_sigma(),
            ),
            ("Examples 8/9 β (safety)", paper::safety_beta()),
            (
                "Theorem 4 pair (safe, not stratified)",
                paper::thm4_safe_not_stratified(),
            ),
            ("Example 10 (flow supervision)", paper::example10_sigma()),
            (
                "Example 13 Σ' (inductive restriction)",
                paper::example13_sigma_prime(),
            ),
            (
                "Section 3.7 Σ'' (check-algorithm input)",
                paper::sec37_sigma_dprime(),
            ),
            ("Figure 9 (travel agency)", paper::fig9_travel()),
        ];
        for (name, set) in &corpus {
            analyze_one(name, set, dot);
        }
    } else {
        for f in files {
            let text = match std::fs::read_to_string(f) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {f}: {e}");
                    std::process::exit(1);
                }
            };
            match ConstraintSet::parse(&text) {
                Ok(set) => analyze_one(f, &set, dot),
                Err(e) => {
                    eprintln!("cannot parse {f}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
