//! session_server: a stdin-driven REPL that speaks the `chase-serve`
//! **wire protocol** to a session server over TCP — the serving layer end
//! to end: a conductor scheduling tenant sessions on a bounded worker
//! pool, batched
//! inserts with warm re-chase, certain-answer queries served from the
//! published snapshot, and server-side snapshot/restore.
//!
//! By default the example starts its own loopback server on an ephemeral
//! port and connects to it, so it exercises the real framed protocol even
//! when run standalone (as in CI):
//!
//! ```sh
//! cargo run --example session_server
//! echo 'insert rail(berlin,paris,d9).
//! query q(X) <- rail(X,berlin,D)' | cargo run --example session_server
//! ```
//!
//! Modes:
//!
//! * *(default)* — serve on `127.0.0.1:0` in-process and connect to it;
//! * `--serve <addr>` — run a server only (e.g. `127.0.0.1:7474`), no REPL;
//! * `--connect <addr>` — REPL against an already-running server;
//! * `--durable <dir>` — make the server durable (with the default or
//!   `--serve` mode): sessions log to `<dir>/session-<id>` and a restarted
//!   server **warm-restarts** every session it finds there, same ids. This
//!   is the crash-recovery path `docs/OPERATIONS.md` walks through;
//! * `--workers <n>` — size the session worker pool (`0` = legacy
//!   thread-per-session scheduler, kept for one release);
//! * `--evict-after <secs>` — TTL for idle sessions (pool mode): durable
//!   ones persist + tear down and warm-restart transparently on the next
//!   touch (`attach <id>` works), non-durable ones answer `Evicted`.
//!
//! Commands (one per line; `#` starts a comment):
//!
//! | command               | effect                                           |
//! |-----------------------|--------------------------------------------------|
//! | `sigma <constraints>` | open a fresh session under a new constraint set  |
//! | `attach <id>`         | address an existing session (e.g. warm-restarted)|
//! | `insert <facts>`      | apply the facts as one update batch (warm)       |
//! | `query <cq>`          | certain answers of `q(X) <- body` on the chase   |
//! | `snapshot`            | take a server-side snapshot (stacked)            |
//! | `restore`             | pop the stack and rewind to that snapshot        |
//! | `\persist`            | force a durability point (snapshot + compact WAL)|
//! | `show`                | print the chased instance (from the server)      |
//! | `stats`               | the session's `SessionStats`, verbatim           |
//! | `\metrics`            | server-wide Prometheus-style metrics exposition  |
//! | `quit`                | close the session and exit                       |
//!
//! A `sigma` line holds one constraint set; separate constraints with `;`
//! (first-class in the grammar — no escape tricks needed).
//!
//! With no input on stdin (as in CI), a built-in demo script runs instead.

use chase::prelude::*;
use std::io::BufRead;

/// The demo script run when stdin has no input — the travel-agency serving
/// scenario from PAPER.md's "Serving layer" section.
const DEMO: &str = "\
sigma fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2); rail(C1,C2,D) -> rail(C2,C1,D)
insert fly(berlin,paris,d9). rail(paris,lyon,d2).
query airports(C) <- hasAirport(C)
snapshot
insert rail(lyon,nice,d1). fly(nice,berlin,d8).
query reach(X) <- rail(X,lyon,D)
stats
restore
stats
query reach(X) <- rail(X,lyon,D)
\\metrics
quit";

struct Repl {
    client: Client,
    session: u64,
    snapshots: Vec<u64>,
}

impl Repl {
    fn new(mut client: Client, sigma: &str) -> Result<Repl, ClientError> {
        let session = client.open(sigma)?;
        Ok(Repl {
            client,
            session,
            snapshots: Vec::new(),
        })
    }

    /// Handle one command line; returns `false` on `quit`.
    fn handle(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "sigma" => match self.client.open(rest) {
                Ok(id) => {
                    let _ = self.client.close(self.session);
                    self.session = id;
                    self.snapshots.clear();
                    println!("session #{id} opened under the new constraint set");
                }
                Err(e) => println!("error: {e}"),
            },
            "insert" => match self.client.apply(self.session, rest) {
                Ok(out) => println!(
                    "epoch {}: +{} facts, {} chase steps, {} fresh nulls, {:?} ({} total)",
                    out.epoch,
                    out.new_facts,
                    out.steps,
                    out.fresh_nulls,
                    out.reason,
                    out.total_facts
                ),
                Err(e) => println!("error: {e}"),
            },
            "query" => match self.client.query(self.session, rest, QueryOpts::default()) {
                Ok(answers) => {
                    println!("{} certain answer(s):", answers.len());
                    for tuple in answers {
                        println!("  ({})", tuple.join(", "));
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            "attach" => match rest.trim().parse::<u64>() {
                Ok(id) => match self.client.stats(id) {
                    Ok(stats) => {
                        if id != self.session {
                            let _ = self.client.close(self.session);
                            self.session = id;
                            self.snapshots.clear();
                        }
                        println!("attached to session #{id} ({stats})");
                    }
                    Err(e) => println!("error: {e}"),
                },
                Err(_) => println!("error: attach takes a numeric session id"),
            },
            "snapshot" => match self.client.snapshot(self.session) {
                Ok(id) => {
                    self.snapshots.push(id);
                    println!("snapshot #{id} taken server-side");
                }
                Err(e) => println!("error: {e}"),
            },
            "restore" => match self.snapshots.pop() {
                Some(id) => match self.client.restore(self.session, id) {
                    Ok(()) => match self.client.stats(self.session) {
                        Ok(stats) => println!(
                            "restored to snapshot #{id} (epoch {}, {} facts)",
                            stats.epoch, stats.total_facts
                        ),
                        Err(e) => println!("restored to snapshot #{id}; stats failed: {e}"),
                    },
                    Err(e) => println!("error: {e}"),
                },
                None => println!("error: no snapshot on the stack"),
            },
            "show" => match self.client.dump(self.session) {
                Ok(text) => println!("{text}"),
                Err(e) => println!("error: {e}"),
            },
            "stats" => match self.client.stats(self.session) {
                Ok(stats) => println!("{stats}"),
                Err(e) => println!("error: {e}"),
            },
            "\\persist" | "persist" => match self.client.persist(self.session) {
                Ok(epoch) => println!(
                    "persisted: on-disk snapshot now covers epoch {epoch}, WAL compacted"
                ),
                Err(e) => println!("error: {e}"),
            },
            "\\metrics" | "metrics" => match self.client.metrics() {
                Ok(text) => print!("{text}"),
                Err(e) => println!("error: {e}"),
            },
            "quit" | "exit" => {
                let _ = self.client.close(self.session);
                return false;
            }
            other => println!(
                "unknown command {other:?} (sigma/attach/insert/query/snapshot/restore/\\persist/show/stats/\\metrics/quit)"
            ),
        }
        true
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    // Durable servers log every session under this root and warm-restart
    // whatever a previous process left there. `--workers 0` selects the
    // legacy thread-per-session scheduler; `--evict-after` puts a TTL on
    // idle sessions (pool mode only).
    let conductor_cfg = || ConductorConfig {
        durable_root: flag("--durable").map(std::path::PathBuf::from),
        workers: flag("--workers")
            .map(|v| v.parse().expect("--workers takes a count"))
            .unwrap_or_else(|| ConductorConfig::default().workers),
        evict_after: flag("--evict-after").map(|v| {
            std::time::Duration::from_secs_f64(v.parse().expect("--evict-after takes seconds"))
        }),
        ..ConductorConfig::default()
    };

    // Server-only mode: bind, print the address, serve until killed.
    if let Some(addr) = flag("--serve") {
        let cfg = conductor_cfg();
        let server = serve(addr.as_str(), cfg).expect("bind");
        let restarted = server.conductor().session_count();
        if restarted > 0 {
            println!("warm-restarted {restarted} durable session(s)");
        }
        println!("serving chase sessions on {}", server.addr());
        loop {
            std::thread::park();
        }
    }

    // REPL mode: connect to the given server, or spin up a loopback one.
    let (client, _local) = match flag("--connect") {
        Some(addr) => (Client::connect(addr.as_str()).expect("connect"), None),
        None => {
            let server = serve("127.0.0.1:0", conductor_cfg()).expect("bind loopback");
            let client = Client::connect(server.addr()).expect("connect loopback");
            println!("(loopback server on {})", server.addr());
            (client, Some(server))
        }
    };

    // Default constraint set until a `sigma` command replaces the session.
    let mut repl = Repl::new(client, "E(X,Y), E(Y,Z) -> E(X,Z)").expect("open default session");
    println!(
        "chase-serve session client — commands: sigma/attach/insert/query/snapshot/restore/\\persist/show/stats/\\metrics/quit"
    );

    let mut saw_input = false;
    for line in std::io::stdin().lock().lines() {
        let line = line.expect("stdin line");
        saw_input = true;
        println!("> {line}");
        if !repl.handle(&line) {
            return;
        }
    }
    if !saw_input {
        println!("(no stdin input — running the built-in demo script)\n");
        for line in DEMO.lines() {
            println!("> {line}");
            if !repl.handle(line) {
                return;
            }
        }
    }
}
