//! session_server: a minimal stdin-driven REPL over a [`ChaseSession`] —
//! the `chase-serve` API end to end: batched inserts with warm re-chase,
//! certain-answer queries, and snapshot/restore.
//!
//! ```sh
//! cargo run --example session_server
//! echo 'insert rail(berlin,paris,d9).
//! query q(X) <- rail(X,berlin,D)' | cargo run --example session_server
//! ```
//!
//! Commands (one per line; `#` starts a comment):
//!
//! | command               | effect                                          |
//! |-----------------------|-------------------------------------------------|
//! | `sigma <constraints>` | restart the session under a new constraint set  |
//! | `insert <facts>`      | apply the facts as one update batch (warm)      |
//! | `query <cq>`          | certain answers of `q(X) <- body` on the chase  |
//! | `snapshot`            | push the current state on the snapshot stack    |
//! | `restore`             | pop the stack and rewind to that state          |
//! | `show`                | print the chased instance                       |
//! | `stats`               | epochs, facts, steps, merge costs, recompiles   |
//! | `quit`                | exit                                            |
//!
//! With no input on stdin (as in CI), a built-in demo script runs instead.

use chase::prelude::*;
use std::io::BufRead;

/// The demo script run when stdin has no input — the travel-agency serving
/// scenario from PAPER.md's "Serving layer" section.
const DEMO: &str = "\
sigma fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)\\nrail(C1,C2,D) -> rail(C2,C1,D)
insert fly(berlin,paris,d9). rail(paris,lyon,d2).
query airports(C) <- hasAirport(C)
snapshot
insert rail(lyon,nice,d1). fly(nice,berlin,d8).
query reach(X) <- rail(X,lyon,D)
stats
restore
stats
query reach(X) <- rail(X,lyon,D)
quit";

struct Repl {
    session: ChaseSession,
    snapshots: Vec<SessionSnapshot>,
}

impl Repl {
    fn new(set: ConstraintSet) -> Repl {
        Repl {
            session: ChaseSession::new(set),
            snapshots: Vec::new(),
        }
    }

    /// Handle one command line; returns `false` on `quit`.
    fn handle(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "sigma" => {
                // Literal "\n" separates constraints so a set fits one line.
                match ConstraintSet::parse(&rest.replace("\\n", "\n")) {
                    Ok(set) => {
                        println!("session restarted under {} constraints", set.len());
                        self.session = ChaseSession::new(set);
                        self.snapshots.clear();
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "insert" => match Instance::parse(rest) {
                Ok(batch) => match self.session.apply(batch.atoms()) {
                    Ok(out) => println!(
                        "epoch {}: +{} facts, {} chase steps, {} fresh nulls, {:?} ({} total)",
                        out.epoch,
                        out.new_facts,
                        out.steps,
                        out.fresh_nulls,
                        out.reason,
                        out.total_facts
                    ),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            },
            "query" => match ConjunctiveQuery::parse(rest) {
                Ok(q) => match self.session.query(&q) {
                    Ok(answers) => {
                        println!("{} certain answer(s):", answers.len());
                        for tuple in answers {
                            let terms: Vec<String> = tuple.iter().map(|t| t.to_string()).collect();
                            println!("  ({})", terms.join(", "));
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            },
            "snapshot" => {
                self.snapshots.push(self.session.snapshot());
                println!("snapshot #{} taken", self.snapshots.len());
            }
            "restore" => match self.snapshots.pop() {
                Some(snap) => {
                    self.session.restore(&snap);
                    println!(
                        "restored to epoch {} ({} facts)",
                        snap.epoch(),
                        snap.instance().len()
                    );
                }
                None => println!("error: no snapshot on the stack"),
            },
            "show" => println!("{}", self.session.instance()),
            "stats" => println!(
                "epochs {}, facts {}, total steps {}, merge rewritten {}, merge collapsed {}, plan recompiles {}, quiescent {}",
                self.session.epoch(),
                self.session.instance().len(),
                self.session.total_steps(),
                self.session.merge_rewritten(),
                self.session.merge_collapsed(),
                self.session.plan_recompiles(),
                self.session.is_quiescent()
            ),
            "quit" | "exit" => return false,
            other => println!(
                "unknown command {other:?} (sigma/insert/query/snapshot/restore/show/stats/quit)"
            ),
        }
        true
    }
}

fn main() {
    // Default constraint set until a `sigma` command replaces it.
    let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").expect("default set parses");
    let mut repl = Repl::new(set);
    println!("chase-serve session server — commands: sigma/insert/query/snapshot/restore/show/stats/quit");

    let mut saw_input = false;
    for line in std::io::stdin().lock().lines() {
        let line = line.expect("stdin line");
        saw_input = true;
        println!("> {line}");
        if !repl.handle(&line) {
            return;
        }
    }
    if !saw_input {
        println!("(no stdin input — running the built-in demo script)\n");
        for line in DEMO.lines() {
            println!("> {line}");
            if !repl.handle(line) {
                return;
            }
        }
    }
}
