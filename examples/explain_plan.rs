//! `EXPLAIN` for chase constraints: dump the join programs the `chase-plan`
//! compiler builds for the paper's Example 4 over the Example 5 instance
//! after a short chase — the worked example PAPER.md's planner section
//! walks through.
//!
//! ```text
//! cargo run --release --example explain_plan
//! ```

use chase::prelude::*;
use chase_corpus::paper;

fn main() {
    let sigma = paper::example4_sigma();
    // Chase the Example 5 instance a few steps so the statistics have data
    // to bite on (the terminating Theorem 2 order).
    let phases = stratified_order(&sigma, &PrecedenceConfig::default());
    let result = chase(
        &paper::example5_instance(),
        &sigma,
        &ChaseConfig {
            strategy: Strategy::Phased(phases),
            ..ChaseConfig::default()
        },
    );
    let mut inst = result.instance;
    println!("instance after the Theorem 2 chase: {inst}\n");
    let matcher = Matcher::planned(&sigma, &mut inst);
    for (ci, c) in sigma.enumerate() {
        let plans = matcher.plans(ci).expect("planner is on");
        println!("alpha{}: {c}", ci + 1);
        print!("  body: {}", indent(&plans.body.to_string()));
        if let Some(head) = &plans.head {
            print!("  head: {}", indent(&head.to_string()));
        }
        println!();
    }
}

fn indent(s: &str) -> String {
    let mut out = String::new();
    for (i, line) in s.lines().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}
