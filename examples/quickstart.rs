//! Quickstart: parse constraints, analyze termination, run the chase.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chase::prelude::*;

fn main() {
    // The paper's Figure 2 constraint: every predecessor of a special node
    // has itself a predecessor.
    let sigma = ConstraintSet::parse("S(X2), E(X1,X2) -> E(Y,X1)").expect("constraints parse");
    println!("Σ:\n  {sigma}\n");

    // 1. Data-independent analysis: which termination conditions recognize Σ?
    let report = analyze(&sigma, 4, &PrecedenceConfig::default());
    println!("Termination analysis:\n{report}\n");

    // 2. Run the chase on a small graph instance.
    let instance = Instance::parse("S(b). S(c). E(a,b). E(b,c).").expect("instance parses");
    println!("I = {instance}");
    let result = chase_default(&instance, &sigma);
    println!("chase: {result}");
    assert!(result.terminated());
    println!("I^Σ = {}\n", result.instance);

    // 3. The same machinery exposes each condition individually.
    println!("weakly acyclic? {}", is_weakly_acyclic(&sigma));
    println!("safe?           {}", is_safe(&sigma));
    let pc = PrecedenceConfig::default();
    println!("stratified?     {}", is_stratified(&sigma, &pc));
    println!("T-level:        {:?}", t_level(&sigma, 4, &pc).0);
}
