//! Theorem 8's undecidability construction, live: compile a Turing machine
//! into TGDs and watch the chase simulate it.
//!
//! ```sh
//! cargo run --example turing_machine
//! ```

use chase::prelude::*;
use chase_corpus::turing::{encode, simulate, tm_flipper, tm_infinite};

fn main() {
    // A machine exercising right moves, a left move and a stay move.
    let tm = tm_flipper();
    println!(
        "machine: {} states, {} transitions",
        tm.states,
        tm.transitions.len()
    );
    let sim = simulate(&tm, 1000);
    println!(
        "direct simulation: halted={} after {} steps, fired transitions {:?}",
        sim.halted, sim.steps, sim.fired
    );

    let enc = encode(&tm);
    println!(
        "\nencoded as {} TGDs (ΣM of Theorem 8):",
        enc.constraints.len()
    );
    for (i, c) in enc.constraints.enumerate().take(6) {
        println!("  {}: {c}", i + 1);
    }
    println!("  … plus copy and marker rules\n");

    // Chase the EMPTY instance: the initial-configuration rule boots the
    // simulation.
    let res = chase(
        &Instance::new(),
        &enc.constraints,
        &ChaseConfig::with_max_steps(20_000),
    );
    println!("chase of the empty instance: {res}");
    assert!(res.terminated(), "halting machine ⇒ terminating chase");

    // Theorem 8's equivalence, checked per transition: the marker rule
    // A<i> → B<i> fired iff the machine took transition i.
    println!("\ntransition markers in the chase result:");
    for i in 0..enc.marker_rules.len() {
        let fired = res
            .instance
            .with_pred(Sym::new(&format!("B{i}")))
            .next()
            .is_some();
        println!(
            "  transition {i}: chase says {:5}  simulator says {:5}",
            fired,
            sim.fired.contains(&i)
        );
        assert_eq!(fired, sim.fired.contains(&i));
    }

    // The flip side: a non-halting machine makes the chase diverge, which is
    // exactly why (I,Σ)-irrelevance is undecidable.
    let diverging = encode(&tm_infinite());
    let res = chase(
        &Instance::new(),
        &diverging.constraints,
        &ChaseConfig::with_max_steps(300),
    );
    println!("\nnon-halting machine: chase stopped by budget: {res}");
    assert!(!res.terminated());
}
