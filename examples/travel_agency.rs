//! The Section 4 travel-agency scenario, end to end.
//!
//! Demonstrates the paper's data-dependent pipeline:
//!
//! 1. Σ (Figure 9) has **no** data-independent termination guarantee;
//! 2. chasing query q1 diverges — the monitor guard stops it;
//! 3. query q2 gets a *static* guarantee via (I,Σ)-irrelevance (Example 16);
//! 4. the chase turns q2 into the universal plan q2', from which the
//!    rewritings q2'' (join elimination) and q2''' (join introduction) are
//!    enumerated.
//!
//! ```sh
//! cargo run --example travel_agency
//! ```

use chase::prelude::*;
use chase_corpus::paper;
use chase_sqo::rewrite::{equivalent_subqueries, universal_plan};

fn main() {
    let sigma = paper::fig9_travel();
    let pc = PrecedenceConfig::default();
    println!("Σ (Figure 9):");
    for (i, c) in sigma.enumerate() {
        println!("  α{}: {c}", i + 1);
    }

    // 1. No data-independent guarantee.
    let report = analyze(&sigma, 3, &pc);
    println!("\nData-independent analysis:\n{report}\n");
    assert!(!report.guarantees_some_sequence());

    // 2. q1 diverges; the monitor guard stops it.
    let q1 = paper::q1();
    println!("q1: {q1}");
    let (frozen_q1, _) = q1.freeze();
    let res = chase(&frozen_q1, &sigma, &ChaseConfig::with_monitor_depth(3));
    println!("chasing q1 under a depth-3 monitor: {res}");
    assert_eq!(res.reason, StopReason::MonitorAbort { depth: 3 });

    // 3. q2: static guarantee via irrelevance.
    let q2 = paper::q2();
    println!("\nq2: {q2}");
    let (frozen_q2, _) = q2.freeze();
    let (irrelevant, _) = irrelevant_constraints(&frozen_q2, &sigma, &pc).unwrap();
    let names: Vec<String> = irrelevant.iter().map(|i| format!("α{}", i + 1)).collect();
    println!(
        "(I,Σ)-irrelevant constraints (Prop. 7): {}",
        names.join(", ")
    );
    let verdict = data_dependent_terminates(&frozen_q2, &sigma, 2, &pc).unwrap();
    println!("data-dependent termination guarantee: {verdict}");
    assert!(verdict.is_yes());

    // 4. Universal plan and rewritings.
    let cfg = ChaseConfig {
        monitor_depth: Some(3),
        max_steps: Some(2_000),
        ..ChaseConfig::default()
    };
    let plan = universal_plan(&q2, &sigma, &cfg).unwrap();
    println!("\nuniversal plan q2': {plan}");
    let rewritings = equivalent_subqueries(&q2, &sigma, &cfg, 12).unwrap();
    println!("equivalent rewritings under Σ (by body size):");
    for r in &rewritings {
        println!("  {r}");
    }

    // Evaluate the original and the smallest rewriting on a concrete
    // Σ-satisfying database.
    let db = Instance::parse(
        "rail(c1,hub,d1). rail(hub,c1,d1). \
         fly(hub,far,d2). fly(far,hub,d2). \
         hasAirport(hub). hasAirport(far).",
    )
    .unwrap();
    println!("\ndatabase: {db}");
    println!("q2  answers: {:?}", paper::q2().evaluate(&db));
    println!("q2'' answers: {:?}", paper::q2_rewritten().evaluate(&db));
}
