//! # chase — *On Chase Termination Beyond Stratification*, as a library
//!
//! Umbrella crate re-exporting the full reproduction of Meier, Schmidt &
//! Lausen (VLDB 2009):
//!
//! * `core` ([`chase_core`]) — terms, atoms, instances, homomorphisms, TGDs/EGDs,
//!   conjunctive queries, parser;
//! * `engine` ([`chase_engine`]) — the chase procedure (standard/oblivious),
//!   strategies, budgets, and the monitor-graph guard of Section 4.2;
//! * `plan` ([`chase_plan`]) — cost-guided join-plan compilation and the
//!   secondary-index matcher behind trigger enumeration (the
//!   `ChaseConfig::use_planner` knob);
//! * `termination` ([`chase_termination`]) — weak acyclicity, (c-)stratification,
//!   safety, restriction systems, inductive restriction, the T-hierarchy,
//!   and data-dependent analysis;
//! * `guarded` ([`chase_guarded`]) — weakly/restrictedly guarded TGDs (Section 5);
//! * `sqo` ([`chase_sqo`]) — semantic query optimization with the chase
//!   (universal plans, equivalence under constraints, rewriting enumeration);
//! * `obs` ([`chase_obs`]) — zero-dependency observability: phase timers,
//!   log-scale latency histograms, bounded event rings, and named metric
//!   registries with a Prometheus-style text exposition;
//! * `serve` ([`chase_serve`]) — the serving layer: long-lived incremental
//!   chase sessions with warm re-chase over update batches, certain-answer
//!   queries, snapshot/restore forking, a multi-tenant TCP session
//!   server (actor-per-session runtime behind a framed wire protocol),
//!   and durable sessions (write-ahead log + columnar snapshots with
//!   warm restart);
//! * `corpus` ([`chase_corpus`]) — every example of the paper plus synthetic
//!   workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use chase::prelude::*;
//!
//! let sigma = ConstraintSet::parse("S(X2), E(X1,X2) -> E(Y,X1)").unwrap();
//! let report = analyze(&sigma, 4, &PrecedenceConfig::default());
//! assert_eq!(report.t_level, Some(3)); // the paper's Figure 2 constraint
//!
//! let instance = Instance::parse("S(n1). S(n2). E(n1,n2).").unwrap();
//! let result = chase_default(&instance, &sigma);
//! assert!(result.terminated());
//! ```

pub use chase_core as core;
pub use chase_corpus as corpus;
pub use chase_engine as engine;
pub use chase_guarded as guarded;
pub use chase_obs as obs;
pub use chase_plan as plan;
pub use chase_serve as serve;
pub use chase_sqo as sqo;
pub use chase_termination as termination;

/// Run the stratum-scheduled parallel chase end to end: analyze `set` with
/// [`chase_termination::phase_schedule`] (the Theorem 2 SCC order when the
/// set is stratified, a single phase otherwise) and execute the phases with
/// [`chase_engine::chase_parallel`] across `threads` threads.
///
/// The produced trace is bit-identical to the sequential engines under the
/// same schedule; `threads = 1` runs without workers.
///
/// # Examples
///
/// ```
/// use chase::prelude::*;
///
/// let sigma = ConstraintSet::parse("S(X) -> T(X)\nT(X) -> U(X,Y)").unwrap();
/// let inst = Instance::parse("S(a). S(b).").unwrap();
/// let res = chase::chase_parallel_auto(&inst, &sigma, 2);
/// assert!(res.terminated());
/// ```
pub fn chase_parallel_auto(
    instance: &chase_core::Instance,
    set: &chase_core::ConstraintSet,
    threads: usize,
) -> chase_engine::ChaseResult {
    let schedule =
        chase_termination::phase_schedule(set, &chase_termination::PrecedenceConfig::default());
    let cfg = chase_engine::ParallelConfig::with_threads(threads);
    chase_engine::chase_parallel(instance, set, &schedule.phases, &cfg)
}

/// Everything most callers need, in one import.
pub mod prelude {
    pub use chase_core::{
        Atom, ConjunctiveQuery, Constraint, ConstraintSet, CoreError, Egd, Instance, PosSet,
        Position, Schema, Subst, Sym, Term, Tgd,
    };
    pub use chase_engine::{
        chase, chase_default, chase_parallel, chase_resume, core_chase, core_of,
        find_terminating_sequence, is_core, BfsOutcome, ChaseConfig, ChaseMode, ChaseResult,
        CoreChaseResult, EngineState, Matcher, MonitorGraph, ParallelConfig, ResumeOutcome,
        StopReason, Strategy,
    };
    pub use chase_obs::{Histogram, MetricsRegistry, Phase, Recorder};
    pub use chase_plan::JoinProgram;
    pub use chase_serve::{
        serve, ChaseOutcome, ChaseSession, Client, ClientError, Conductor, ConductorConfig,
        DurabilityConfig, DurabilityStats, FleetStats, FsyncPolicy, QueryOpts, QuerySpec,
        ServeError, SessionBuilder, SessionConfig, SessionHandle, SessionSnapshot, SessionStats,
        WalRecord,
    };
    pub use chase_termination::{
        affected_positions, analyze, c_chase_graph, chase_graph, check, data_dependent_terminates,
        dependency_graph, irrelevant_constraints, is_c_stratified, is_inductively_restricted,
        is_safe, is_safely_restricted, is_stratified, is_weakly_acyclic,
        minimal_restriction_system, phase_schedule, precedes, precedes_c, precedes_k,
        propagation_graph, stratified_order, t_level, AnalysisReport, PhaseSchedule,
        PrecedenceConfig, Recognition, Verdict,
    };
}
