//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the sliver of criterion's API the bench targets use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, and a [`Bencher`] with `iter`.
//!
//! Measurement is deliberately simple — per sample, run the closure in a
//! timed batch sized to take roughly a millisecond, and report the median
//! and min/max of the per-iteration times across samples. That is enough to
//! compare engine variants by an order of magnitude, which is what the
//! paper-figure benches do; it makes no claim to criterion's statistical
//! rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark entry point; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Accept a substring filter as the first CLI argument, skipping flags
    /// (`cargo bench -- <filter>`). Other criterion flags are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            criterion: self,
            group: name,
            sample_size: None,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id.label(),
            self.sample_size,
            self.filter.as_deref(),
            &mut f,
        );
        self
    }

    /// Print the closing line criterion's real `final_summary` ends with.
    pub fn final_summary(&mut self) {
        println!();
    }
}

/// A named group of related benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Run `f` as the benchmark `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, id.into().label());
        run_benchmark(
            &label,
            self.effective_sample_size(),
            self.criterion.filter.as_deref(),
            &mut f,
        );
        self
    }

    /// Run `f(bencher, input)` as the benchmark `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id.into().label());
        run_benchmark(
            &label,
            self.effective_sample_size(),
            self.criterion.filter.as_deref(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group (a no-op here; criterion writes reports at this point).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier from a bare function name.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => format!("{}/{}", self.function, p),
            Some(p) => p.clone(),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Timer handed to the benchmark closure; mirrors `criterion::Bencher`.
pub struct Bencher {
    /// Iterations per timed batch (tuned by the harness before sampling).
    iters_per_sample: u64,
    /// Collected per-sample durations of one batch each.
    samples: Vec<Duration>,
    /// Calibration mode: measure one iteration instead of a batch.
    calibrating: bool,
    calibration: Duration,
}

impl Bencher {
    /// Time `routine`, running it in batches as configured by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.calibrating {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.calibration = start.elapsed();
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Quick mode (the `CHASE_BENCH_QUICK` env var, set by CI's bench-smoke
/// job): cap samples and the per-benchmark sampling budget so a full
/// `cargo bench` sweep fits in CI. Medians stay comparable run to run;
/// only their variance suffers.
///
/// Public so the workload-sizing helpers in `chase-bench` and the
/// `bench2json` summarizer share this one definition of "quick".
pub fn quick_mode() -> bool {
    std::env::var_os("CHASE_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    filter: Option<&str>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !label.contains(pat) {
            return;
        }
    }
    let (sample_size, sampling_budget) = if quick_mode() {
        (sample_size.min(5), Duration::from_millis(300))
    } else {
        (sample_size, Duration::from_secs(2))
    };
    // Calibrate: one untimed-batch run to size batches near ~1 ms, capped so
    // slow benches still finish promptly.
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        calibrating: true,
        calibration: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.calibration.max(Duration::from_nanos(1));
    let target = Duration::from_millis(1);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    b.calibrating = false;
    b.iters_per_sample = iters;
    let budget = Instant::now();
    for _ in 0..sample_size {
        f(&mut b);
        // Keep any single benchmark under the sampling budget.
        if budget.elapsed() > sampling_budget {
            break;
        }
    }
    report(label, iters, &b.samples);
}

fn report(label: &str, iters: u64, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{label:<60} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export matching `criterion::black_box` (benches here import
/// `std::hint::black_box` directly, but the alias keeps the API honest).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &7u32, |b, &x| {
            b.iter(|| runs += x)
        });
        g.finish();
        assert!(runs > 0);
    }
}
