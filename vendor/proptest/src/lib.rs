//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header and `arg in strategy` parameters),
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   integer ranges, tuples, and [`arbitrary::any`],
//! * `prop_assert!`, `prop_assert_eq!`, and `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted: generation is
//! seeded from a hash of the test name (fully deterministic run to run, no
//! `PROPTEST_` env overrides), and failing cases are **not shrunk** — the
//! failure message simply carries whatever the assertion formatted, which
//! for these tests includes the offending constraint set.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// The strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical generation recipe.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod test_runner {
    //! Case execution: configuration, RNG, and the error channel the
    //! assertion macros use.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Give up if this many candidate cases were rejected by
        /// `prop_assume!` before `cases` successes.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// The RNG driving generation; deterministic per test name.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// A generator seeded from `name` (FNV-1a), so every run of a given
        /// test explores the same cases.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(seed),
            }
        }
    }

    /// Why a single case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; try another.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    /// Drive one proptest-style test: generate cases until `cases`
    /// successes, a failure, or the reject budget runs out.
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::deterministic(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "{name}: too many prop_assume! rejects \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed after {passed} passing cases\n{msg}")
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob import the tests use.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declare property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: one test fn per repetition.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)*
                let __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// `assert!` that fails the enclosing property instead of panicking inline.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the enclosing property instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Discard the current case (does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0usize..5, 0usize..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8, "sum out of range: {pair}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_generates(x in any::<u64>(), more in any::<u64>(),) {
            // Trailing comma in the parameter list must parse.
            let _ = (x, more);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::strategy::Strategy as _;
        let strat = 0usize..1000;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn inner(x in 0usize..1) {
                prop_assert!(false, "forced failure");
            }
        }
        inner();
    }
}
