//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses: a seedable
//! [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`]/[`RngCore`] traits,
//! `gen_range` over integer ranges, and `gen_bool`.
//!
//! The generator is **not** the real `StdRng` (ChaCha12); it is SplitMix64.
//! Nothing in the workspace depends on the exact stream — only on equal
//! seeds producing equal streams, which holds here. Sampling is by rejection
//! (unbiased) and fully deterministic.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-word source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

/// Uniform draw from `0..span` by widening multiply with rejection
/// (Lemire's method); unbiased and cheap.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard f64-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64 underneath; see
    /// the crate docs for why that is acceptable here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, and trivially seedable — ideal for reproducible
            // test streams.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
