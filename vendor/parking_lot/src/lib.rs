//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (tiny) subset of the real API the workspace uses: an
//! [`RwLock`] whose `read`/`write` return guards directly instead of
//! `Result`s. It wraps `std::sync::RwLock` and treats poisoning the way
//! `parking_lot` does — by ignoring it.

use std::sync::{self, TryLockError};

pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn try_variants() {
        let lock = RwLock::new(5u32);
        let g = lock.read();
        assert!(lock.try_read().is_some());
        assert!(lock.try_write().is_none());
        drop(g);
        assert!(lock.try_write().is_some());
    }
}
