//! Plain-text table/series printers shared by the benchmark targets.
//!
//! Criterion measures time; the *shape* results the paper reports
//! (classification matrices, chase-length series, hierarchy levels) are
//! printed by these helpers so a `cargo bench` run reproduces the artifacts
//! of EXPERIMENTS.md verbatim.

/// One row of a printed table: label plus cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (first column).
    pub label: String,
    /// Remaining cells.
    pub cells: Vec<String>,
}

impl Row {
    /// Build a row from anything displayable.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Row {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// Print an aligned table with a title and header.
pub fn print_table(title: &str, header: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        widths[0] = widths[0].max(row.label.len());
        for (i, c) in row.cells.iter().enumerate() {
            if i + 1 < widths.len() {
                widths[i + 1] = widths[i + 1].max(c.len());
            }
        }
    }
    let fmt_row = |label: &str, cells: &[String]| {
        let mut line = format!("{label:<width$}", width = widths[0]);
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i + 1).copied().unwrap_or(c.len());
            line.push_str(&format!("  {c:>w$}"));
        }
        line
    };
    let header_cells: Vec<String> = header[1..].iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(header[0], &header_cells));
    for row in rows {
        println!("{}", fmt_row(&row.label, &row.cells));
    }
}

/// Print an `(x, y)` series, one point per line, for growth-shape eyeballing
/// and EXPERIMENTS.md.
pub fn print_series(title: &str, x_name: &str, y_name: &str, points: &[(f64, f64)]) {
    println!("\n=== {title} ===");
    println!("{x_name:>12}  {y_name:>14}");
    for &(x, y) in points {
        println!("{x:>12.1}  {y:>14.2}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["set", "WA", "safe"],
            &[
                Row::new("fig2", vec!["no".into(), "no".into()]),
                Row::new("example10", vec!["no".into(), "no".into()]),
            ],
        );
        print_series("growth", "n", "steps", &[(1.0, 2.0), (2.0, 4.0)]);
    }
}
