//! Turn `cargo bench -p chase-bench` output into a `BENCH_<sha>.json`
//! summary — the record CI uploads to build the repo's perf trajectory.
//!
//! Reads bench output on stdin and writes JSON on stdout. Each measurement
//! line has the shape the criterion stand-in prints:
//!
//! ```text
//! parallel_scaling/fig9_travel/t4        time: [1.10 ms 1.23 ms 1.51 ms]
//! ```
//!
//! and becomes `{"group", "workload", "engine", "label", "median_ns"}`,
//! where `group` is the first `/`-segment of the label, `engine` the last,
//! and `workload` whatever sits between (falling back to the group for
//! short labels). Usage:
//!
//! ```text
//! cargo bench -p chase-bench | cargo run -p chase-bench --bin bench2json -- --sha "$GITHUB_SHA"
//! ```
//!
//! With `--require-results`, exits non-zero when no measurement line was
//! parsed — CI's bench-smoke job passes it so a silently broken bench run
//! (or a bench output format drift that the parser no longer recognizes)
//! fails the job instead of uploading an empty trajectory point.
//!
//! # Regression gate
//!
//! With `--compare <baseline.json>` the tool additionally diffs the parsed
//! sweep against a previously committed `BENCH_<sha>.json` trajectory
//! point: every label present in both runs is compared median-to-median,
//! a report is printed to stderr, and the process exits non-zero when any
//! bench regressed by more than `--threshold <percent>` (default 25).
//! Labels only present on one side are listed but never fail the gate
//! (benches come and go); a `quick` flag mismatch between the runs is an
//! error, because quick and full medians are not comparable. CI's
//! bench-smoke job runs the gate right after summarizing, so a hot-path
//! regression fails the PR instead of silently bending the trajectory.
//!
//! Two extra knobs serve the observability overhead gate, which compares
//! two sweeps taken minutes apart on a noisy shared runner: `--stat min`
//! substitutes each bench's per-iteration minimum for its median (on both
//! the summary and the compare side — scheduler interference only ever
//! adds time), and `--aggregate` gates on the summed time over the matched
//! benches instead of any single bench's delta (a lone micro bench's min
//! still swings more than any real hot-path effect; the sum is stable to a
//! couple of percent).

use std::io::Read;

#[derive(Debug)]
struct Measurement {
    label: String,
    median_ns: f64,
    min_ns: f64,
}

fn parse_value(value: &str, unit: &str) -> Option<f64> {
    let v: f64 = value.parse().ok()?;
    let scale = match unit {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(v * scale)
}

/// Parse one `<label> time: [<min> <median> <max>]` line.
fn parse_line(line: &str) -> Option<Measurement> {
    let (label, rest) = line.split_once(" time: [")?;
    let inside = rest.trim_end().strip_suffix(']')?;
    let tokens: Vec<&str> = inside.split_whitespace().collect();
    if tokens.len() != 6 {
        return None;
    }
    Some(Measurement {
        label: label.trim().to_string(),
        median_ns: parse_value(tokens[2], tokens[3])?,
        min_ns: parse_value(tokens[0], tokens[1])?,
    })
}

/// Parse every measurement line in `input`, sorted by label. With
/// `use_min`, each line's per-iteration *minimum* replaces its median
/// (`--stat min` — the robust statistic for the CI overhead gate, since
/// scheduler interference only ever adds time, never removes it). A label
/// appearing more than once folds to the smallest value of the chosen
/// statistic: the overhead gate concatenates several runs of the same
/// bench target per side to shrink the noise floor further.
fn parse_results(input: &str, use_min: bool) -> Vec<Measurement> {
    let mut results: Vec<Measurement> = input.lines().filter_map(parse_line).collect();
    if use_min {
        for m in &mut results {
            m.median_ns = m.min_ns;
        }
    }
    results.sort_by(|a, b| {
        a.label
            .cmp(&b.label)
            .then(a.median_ns.total_cmp(&b.median_ns))
    });
    results.dedup_by(|later, first| later.label == first.label);
    results
}

/// Extract `name value` metric lines between a bench's
/// `metrics_exposition_begin`/`metrics_exposition_end` markers (the
/// chase-obs exposition dump), in print order. Lines outside a marked
/// block — including measurement lines — are never metrics.
fn parse_exposition(input: &str) -> Vec<(String, i128)> {
    let mut out = Vec::new();
    let mut inside = false;
    for line in input.lines() {
        match line.trim() {
            "metrics_exposition_begin" => inside = true,
            "metrics_exposition_end" => inside = false,
            l if inside => {
                if let Some((name, value)) = l.rsplit_once(' ') {
                    if let Ok(v) = value.parse::<i128>() {
                        out.push((name.to_string(), v));
                    }
                }
            }
            _ => {}
        }
    }
    // Concatenated bench runs repeat the dump; keep each key's *last*
    // value (the most recent scrape) so the embedded object stays one
    // value per key.
    let mut seen = std::collections::HashSet::new();
    let mut dedup: Vec<(String, i128)> = Vec::new();
    for (name, value) in out.into_iter().rev() {
        if seen.insert(name.clone()) {
            dedup.push((name, value));
        }
    }
    dedup.reverse();
    dedup
}

/// A parsed `BENCH_<sha>.json` baseline: the `quick` flag and each result's
/// `(label, median_ns)`.
struct Baseline {
    quick: Option<bool>,
    results: Vec<(String, f64)>,
}

/// Extract the string value of `"key": "…"` from a JSON line this tool
/// emitted (its own escaping is limited to `\"`, `\\` and control escapes,
/// which are unescaped here).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extract the numeric value of `"key": <num>` from a JSON line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a `BENCH_<sha>.json` file produced by this tool. Line-oriented on
/// purpose — the emitter writes one result object per line — so no JSON
/// dependency is needed.
fn parse_baseline(text: &str) -> Baseline {
    let mut quick = None;
    let mut results = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("\"quick\": ") {
            quick = match rest.trim_end_matches(',') {
                "true" => Some(true),
                "false" => Some(false),
                _ => None,
            };
        }
        if let (Some(label), Some(median)) = (
            json_str_field(line, "label"),
            json_num_field(line, "median_ns"),
        ) {
            results.push((label, median));
        }
    }
    Baseline { quick, results }
}

/// A failing regression: `(label, old_ns, new_ns, delta_percent)`.
type Regression = (String, f64, f64, f64);

/// Diff `current` against `baseline`; returns the failing regressions
/// plus the summed `(baseline_ns, current_ns)` over the matched benches,
/// and prints the full report to stderr.
fn compare(
    baseline: &Baseline,
    current: &[Measurement],
    threshold_percent: f64,
) -> (Vec<Regression>, f64, f64) {
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    let (mut old_sum, mut new_sum) = (0.0f64, 0.0f64);
    for m in current {
        let Some(&(_, old)) = baseline.results.iter().find(|(l, _)| *l == m.label) else {
            eprintln!("  new (no baseline):       {}", m.label);
            continue;
        };
        matched += 1;
        old_sum += old;
        new_sum += m.median_ns;
        let delta = if old > 0.0 {
            (m.median_ns - old) / old * 100.0
        } else {
            0.0
        };
        let verdict = if delta > threshold_percent {
            regressions.push((m.label.clone(), old, m.median_ns, delta));
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "  {verdict:>9} {:>+7.1}%  {:>12.0} ns -> {:>12.0} ns  {}",
            delta, old, m.median_ns, m.label
        );
    }
    for (label, _) in &baseline.results {
        if !current.iter().any(|m| m.label == *label) {
            eprintln!("  gone (baseline only):    {label}");
        }
    }
    eprintln!(
        "bench2json: compared {matched} benches against baseline, {} over the {threshold_percent}% threshold",
        regressions.len()
    );
    (regressions, old_sum, new_sum)
}

/// The distinct bench groups (first `/`-segment of the label) among the
/// failing regressions, sorted — so the gate's failure message names which
/// bench *group* breached the threshold, not just the raw labels.
fn breached_groups(regressions: &[Regression]) -> Vec<String> {
    let mut groups: Vec<String> = regressions
        .iter()
        .map(|(label, ..)| label.split('/').next().unwrap_or(label).to_string())
        .collect();
    groups.sort();
    groups.dedup();
    groups
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let mut sha = std::env::var("GITHUB_SHA").unwrap_or_default();
    let mut require_results = false;
    let mut baseline_path: Option<String> = None;
    let mut threshold = 25.0f64;
    // `--stat min`: substitute each bench's per-iteration minimum for its
    // median, in both the summary and the comparison. The overhead gate
    // passes it on *both* sides (its throwaway baseline and the compare);
    // committed trajectory points keep the default median.
    let mut use_min = false;
    // `--aggregate`: gate `--compare` on the summed time over matched
    // benches rather than any single bench's delta.
    let mut aggregate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--sha" {
            sha = args.next().unwrap_or_default();
        } else if arg == "--require-results" {
            require_results = true;
        } else if arg == "--compare" {
            baseline_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("bench2json: --compare needs a baseline path");
                std::process::exit(2);
            }));
        } else if arg == "--threshold" {
            threshold = args.next().and_then(|t| t.parse().ok()).unwrap_or_else(|| {
                eprintln!("bench2json: --threshold needs a percentage");
                std::process::exit(2);
            });
        } else if arg == "--stat" {
            use_min = match args.next().as_deref() {
                Some("min") => true,
                Some("median") => false,
                other => {
                    eprintln!("bench2json: --stat must be `min` or `median`, got {other:?}");
                    std::process::exit(2);
                }
            };
        } else if arg == "--aggregate" {
            aggregate = true;
        }
    }
    if sha.is_empty() {
        sha = "unknown".into();
    }

    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .expect("read bench output from stdin");
    let results = parse_results(&input, use_min);
    if require_results && results.is_empty() {
        // An empty summary means the bench run or the parser silently broke
        // — a trajectory of empty points is worse than a red CI job.
        eprintln!(
            "bench2json: no measurement lines found in {} bytes of bench output \
             (expected `<label> time: [..]` lines); refusing to emit an empty summary",
            input.len()
        );
        std::process::exit(1);
    }

    let quick = chase_bench::quick();
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench2json: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = parse_baseline(&text);
        if baseline.results.is_empty() {
            eprintln!("bench2json: baseline {path} holds no results; refusing to compare");
            std::process::exit(2);
        }
        if let Some(bq) = baseline.quick {
            if bq != quick {
                eprintln!(
                    "bench2json: baseline {path} was a quick={bq} run but this sweep is \
                     quick={quick}; medians are not comparable"
                );
                std::process::exit(2);
            }
        }
        eprintln!("bench2json: comparing against {path} (threshold {threshold}%)");
        let (regressions, old_sum, new_sum) = compare(&baseline, &results, threshold);
        if aggregate {
            // Gate on the summed time over the matched benches instead of
            // per-bench deltas: on a shared runner an individual micro
            // bench's min still swings well over any real effect, while
            // the aggregate — dominated by the longer benches — is stable
            // to a couple of percent. The per-bench report above stays for
            // diagnosis.
            let delta = if old_sum > 0.0 {
                (new_sum - old_sum) / old_sum * 100.0
            } else {
                0.0
            };
            eprintln!(
                "bench2json: aggregate over matched benches: {old_sum:.0} ns -> {new_sum:.0} ns \
                 ({delta:+.1}%)"
            );
            if delta > threshold {
                eprintln!(
                    "bench2json: FAIL — aggregate regression {delta:+.1}% exceeds {threshold}%"
                );
                std::process::exit(1);
            }
        } else if !regressions.is_empty() {
            let groups = breached_groups(&regressions);
            eprintln!(
                "bench2json: FAIL — median regressions over {threshold}% in bench group{} {}:",
                if groups.len() == 1 { "" } else { "s" },
                groups.join(", ")
            );
            for (label, old, new, delta) in &regressions {
                eprintln!("  {label}: {old:.0} ns -> {new:.0} ns ({delta:+.1}%)");
            }
            std::process::exit(1);
        }
    }
    println!("{{");
    println!("  \"sha\": \"{}\",", json_escape(&sha));
    println!("  \"quick\": {quick},");
    println!("  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        let segments: Vec<&str> = m.label.split('/').collect();
        let group = segments.first().copied().unwrap_or("");
        let engine = segments.last().copied().unwrap_or("");
        let workload = if segments.len() >= 3 {
            segments[1..segments.len() - 1].join("/")
        } else {
            group.to_string()
        };
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"group\": \"{}\", \"workload\": \"{}\", \"engine\": \"{}\", \"label\": \"{}\", \"median_ns\": {:.1}}}{}",
            json_escape(group),
            json_escape(&workload),
            json_escape(engine),
            json_escape(&m.label),
            m.median_ns,
            comma
        );
    }
    println!("  ],");
    // The chase-obs exposition dump, embedded verbatim as one flat object
    // so the trajectory carries the server's per-stage timings alongside
    // the medians. Keys keep their `{label}` blocks; values are integers.
    let metrics = parse_exposition(&input);
    println!("  \"metrics\": {{");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        println!("    \"{}\": {value}{comma}", json_escape(name));
    }
    println!("  }}");
    println!("}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_measurement_lines() {
        let m = parse_line(
            "parallel_scaling/fig9_travel/t4                time: [1.10 ms 1.23 ms 1.51 ms]",
        )
        .unwrap();
        assert_eq!(m.label, "parallel_scaling/fig9_travel/t4");
        assert!((m.median_ns - 1.23e6).abs() < 1.0);
        assert!((m.min_ns - 1.10e6).abs() < 1.0);
        let m = parse_line("g/f   time: [980.00 ns 1.10 µs 1.90 µs]").unwrap();
        assert!((m.median_ns - 1100.0).abs() < 1.0);
        assert!((m.min_ns - 980.0).abs() < 1.0, "units scale per token");
    }

    #[test]
    fn ignores_non_measurement_lines() {
        assert!(parse_line("## parallel_scaling").is_none());
        assert!(parse_line("some table row | 33 | 12").is_none());
        assert!(parse_line("x time: [weird]").is_none());
    }

    #[test]
    fn duplicate_labels_fold_to_minimum_of_the_chosen_stat() {
        let input = "\
g/bench time: [10.00 µs 12.00 µs 20.00 µs]\n\
g/other time: [1.00 µs 2.00 µs 3.00 µs]\n\
g/bench time: [9.00 µs 11.00 µs 15.00 µs]\n\
g/bench time: [11.00 µs 14.00 µs 30.00 µs]\n";
        let results = parse_results(input, false);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "g/bench");
        assert!((results[0].median_ns - 11000.0).abs() < 1.0, "min median");
        assert_eq!(results[1].label, "g/other");
        // --stat min: per-line minima, folded to the smallest.
        let results = parse_results(input, true);
        assert!((results[0].median_ns - 9000.0).abs() < 1.0, "min of mins");
    }

    #[test]
    fn repeated_exposition_dumps_keep_the_last_value() {
        let input = "\
metrics_exposition_begin\nchase_x 1\nchase_y 5\nmetrics_exposition_end\n\
metrics_exposition_begin\nchase_x 2\nmetrics_exposition_end\n";
        assert_eq!(
            parse_exposition(input),
            vec![("chase_y".to_string(), 5), ("chase_x".to_string(), 2)]
        );
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn extracts_marked_exposition_blocks_only() {
        let input = "\
## some bench\n\
chase_apply_ns_p50_ns 11\n\
metrics_exposition_begin\n\
chase_sessions_open 2\n\
chase_phase_ns_p99_ns{phase=\"insert\"} 4351\n\
not a metric line\n\
metrics_exposition_end\n\
chase_sessions_open 99\n";
        let m = parse_exposition(input);
        assert_eq!(
            m,
            vec![
                ("chase_sessions_open".to_string(), 2),
                ("chase_phase_ns_p99_ns{phase=\"insert\"}".to_string(), 4351),
            ]
        );
        assert!(parse_exposition("no markers here\nchase_x 1\n").is_empty());
    }

    const BASELINE: &str = r#"{
  "sha": "abc",
  "quick": true,
  "results": [
    {"group": "g", "workload": "w", "engine": "e", "label": "g/w/e", "median_ns": 1000.0},
    {"group": "g", "workload": "w2", "engine": "e", "label": "g/w2/e", "median_ns": 2000.0},
    {"group": "gone", "workload": "x", "engine": "e", "label": "gone/x/e", "median_ns": 5.0}
  ]
}"#;

    #[test]
    fn parses_its_own_baseline_format() {
        let b = parse_baseline(BASELINE);
        assert_eq!(b.quick, Some(true));
        assert_eq!(b.results.len(), 3);
        assert_eq!(b.results[0], ("g/w/e".to_string(), 1000.0));
        assert_eq!(b.results[1].1, 2000.0);
    }

    #[test]
    fn compare_flags_only_regressions_over_threshold() {
        let b = parse_baseline(BASELINE);
        let current = vec![
            Measurement {
                label: "g/w/e".into(),
                median_ns: 1200.0, // +20%: inside a 25% threshold
                min_ns: 1200.0,
            },
            Measurement {
                label: "g/w2/e".into(),
                median_ns: 2600.0, // +30%: over it
                min_ns: 2600.0,
            },
            Measurement {
                label: "brand/new/e".into(), // no baseline: never fails
                median_ns: 9.9e9,
                min_ns: 9.9e9,
            },
        ];
        let (regressions, old_sum, new_sum) = compare(&b, &current, 25.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].0, "g/w2/e");
        assert!((regressions[0].3 - 30.0).abs() < 1e-9);
        // The aggregate sums only the matched benches — the brand-new one
        // (no baseline) stays out of both sides.
        assert!((old_sum - 3000.0).abs() < 1e-9);
        assert!((new_sum - 3800.0).abs() < 1e-9);
        // Improvements and exact matches pass at any threshold.
        let fine = vec![Measurement {
            label: "g/w/e".into(),
            median_ns: 500.0,
            min_ns: 500.0,
        }];
        assert!(compare(&b, &fine, 0.1).0.is_empty());
    }

    #[test]
    fn failure_output_names_the_breached_groups() {
        let regressions = vec![
            ("merge_storm/storm/warm".to_string(), 1000.0, 2000.0, 100.0),
            ("merge_storm/storm_dense/warm".to_string(), 1.0, 2.0, 100.0),
            ("instance_micro/merge".to_string(), 10.0, 20.0, 100.0),
            ("plainlabel".to_string(), 1.0, 2.0, 100.0),
        ];
        assert_eq!(
            breached_groups(&regressions),
            vec!["instance_micro", "merge_storm", "plainlabel"],
            "one entry per distinct group, sorted"
        );
        assert!(breached_groups(&[]).is_empty());
    }
}
