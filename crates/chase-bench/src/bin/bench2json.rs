//! Turn `cargo bench -p chase-bench` output into a `BENCH_<sha>.json`
//! summary — the record CI uploads to build the repo's perf trajectory.
//!
//! Reads bench output on stdin and writes JSON on stdout. Each measurement
//! line has the shape the criterion stand-in prints:
//!
//! ```text
//! parallel_scaling/fig9_travel/t4        time: [1.10 ms 1.23 ms 1.51 ms]
//! ```
//!
//! and becomes `{"group", "workload", "engine", "label", "median_ns"}`,
//! where `group` is the first `/`-segment of the label, `engine` the last,
//! and `workload` whatever sits between (falling back to the group for
//! short labels). Usage:
//!
//! ```text
//! cargo bench -p chase-bench | cargo run -p chase-bench --bin bench2json -- --sha "$GITHUB_SHA"
//! ```
//!
//! With `--require-results`, exits non-zero when no measurement line was
//! parsed — CI's bench-smoke job passes it so a silently broken bench run
//! (or a bench output format drift that the parser no longer recognizes)
//! fails the job instead of uploading an empty trajectory point.

use std::io::Read;

#[derive(Debug)]
struct Measurement {
    label: String,
    median_ns: f64,
}

/// Parse one `<label> time: [<min> <median> <max>]` line.
fn parse_line(line: &str) -> Option<Measurement> {
    let (label, rest) = line.split_once(" time: [")?;
    let inside = rest.trim_end().strip_suffix(']')?;
    let tokens: Vec<&str> = inside.split_whitespace().collect();
    if tokens.len() != 6 {
        return None;
    }
    let median: f64 = tokens[2].parse().ok()?;
    let scale = match tokens[3] {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(Measurement {
        label: label.trim().to_string(),
        median_ns: median * scale,
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let mut sha = std::env::var("GITHUB_SHA").unwrap_or_default();
    let mut require_results = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--sha" {
            sha = args.next().unwrap_or_default();
        } else if arg == "--require-results" {
            require_results = true;
        }
    }
    if sha.is_empty() {
        sha = "unknown".into();
    }

    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .expect("read bench output from stdin");
    let mut results: Vec<Measurement> = input.lines().filter_map(parse_line).collect();
    results.sort_by(|a, b| a.label.cmp(&b.label));
    if require_results && results.is_empty() {
        // An empty summary means the bench run or the parser silently broke
        // — a trajectory of empty points is worse than a red CI job.
        eprintln!(
            "bench2json: no measurement lines found in {} bytes of bench output \
             (expected `<label> time: [..]` lines); refusing to emit an empty summary",
            input.len()
        );
        std::process::exit(1);
    }

    let quick = chase_bench::quick();
    println!("{{");
    println!("  \"sha\": \"{}\",", json_escape(&sha));
    println!("  \"quick\": {quick},");
    println!("  \"results\": [");
    for (i, m) in results.iter().enumerate() {
        let segments: Vec<&str> = m.label.split('/').collect();
        let group = segments.first().copied().unwrap_or("");
        let engine = segments.last().copied().unwrap_or("");
        let workload = if segments.len() >= 3 {
            segments[1..segments.len() - 1].join("/")
        } else {
            group.to_string()
        };
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"group\": \"{}\", \"workload\": \"{}\", \"engine\": \"{}\", \"label\": \"{}\", \"median_ns\": {:.1}}}{}",
            json_escape(group),
            json_escape(&workload),
            json_escape(engine),
            json_escape(&m.label),
            m.median_ns,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_measurement_lines() {
        let m = parse_line(
            "parallel_scaling/fig9_travel/t4                time: [1.10 ms 1.23 ms 1.51 ms]",
        )
        .unwrap();
        assert_eq!(m.label, "parallel_scaling/fig9_travel/t4");
        assert!((m.median_ns - 1.23e6).abs() < 1.0);
        let m = parse_line("g/f   time: [980.00 ns 1.10 µs 1.90 µs]").unwrap();
        assert!((m.median_ns - 1100.0).abs() < 1.0);
    }

    #[test]
    fn ignores_non_measurement_lines() {
        assert!(parse_line("## parallel_scaling").is_none());
        assert!(parse_line("some table row | 33 | 12").is_none());
        assert!(parse_line("x time: [weird]").is_none());
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
