//! # chase-bench
//!
//! Benchmark harness regenerating every figure and quantitative claim of the
//! paper. The Criterion benchmarks live in `benches/` (one target per
//! experiment id of DESIGN.md §3); this library hosts the shared row/series
//! printers so `cargo bench` output doubles as the data behind
//! EXPERIMENTS.md.

pub mod tables;

pub use tables::{print_series, print_table, Row};
