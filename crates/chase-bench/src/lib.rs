//! # chase-bench
//!
//! Benchmark harness regenerating every figure and quantitative claim of the
//! paper. The Criterion benchmarks live in `benches/` (one target per
//! experiment id of DESIGN.md §3); this library hosts the shared row/series
//! printers so `cargo bench` output doubles as the data behind
//! EXPERIMENTS.md.
//!
//! # Examples
//!
//! Bench targets size their workloads through [`scaled`] (full budget
//! locally, reduced under CI's `CHASE_BENCH_QUICK=1`) and report shape
//! results through the table printers:
//!
//! ```
//! use chase_bench::{print_table, quick, scaled, Row};
//!
//! let facts = scaled(1_000, 50);
//! assert_eq!(facts, if quick() { 50 } else { 1_000 });
//! print_table(
//!     "demo",
//!     &["workload", "facts"],
//!     &[Row::new("travel", vec![facts.to_string()])],
//! );
//! ```

pub mod tables;

pub use tables::{print_series, print_table, Row};

/// Quick mode: `CHASE_BENCH_QUICK` is set in the environment.
///
/// CI's `bench-smoke` job exports it so every bench target runs with
/// reduced budgets (smaller workloads here, fewer samples and a tighter
/// sampling budget in the criterion stand-in) — enough to catch rot and
/// seed the `BENCH_<sha>.json` perf trajectory without burning CI minutes.
/// The numbers it produces are trend data, not precision measurements.
///
/// Delegates to the criterion stand-in's [`criterion::quick_mode`] so the
/// workload sizing here and the sampler's budgets can never disagree on
/// what "quick" means.
pub fn quick() -> bool {
    criterion::quick_mode()
}

/// `full` in normal runs, `quick` under [`quick`] mode — for sizing bench
/// workloads in one expression.
pub fn scaled(full: usize, quick_value: usize) -> usize {
    if quick() {
        quick_value
    } else {
        full
    }
}
