//! Instance-store microbench: insert/dedup/merge throughput of the interned
//! columnar fact store against a faithful replica of the pre-interning
//! store (`Vec<Atom>` + `FxHashSet<Atom>` dedup + `(Sym, pos, Term)`-keyed
//! positional index, merges as drain-and-reinsert of owned atoms).
//!
//! Workloads:
//!
//! * `insert_const` — constant-heavy: a fact stream over interned constant
//!   names, replayed twice so half the probes are dedup hits;
//! * `insert_null` — null-heavy: the same shape with a fresh labeled null
//!   per fact (the chase's steady-state insert mix), replayed twice;
//! * `merge` — EGD-merge pressure: a null-linked chain collapsed by a
//!   sequence of `merge_terms` calls, each a full remap/rebuild.
//!
//! The old-store replica reproduces the seed implementation's per-insert
//! work exactly: a `contains` probe hashing the whole atom, an owned-atom
//! clone into the dedup set, and one `(Sym, u32, Term)` bucket insertion
//! per position — so the printed speedup is the storage layer's win, not a
//! workload artifact. Both stores are asserted to agree on the final fact
//! count before anything is timed.

use chase_bench::{print_table, scaled, Row};
use chase_core::fx::{FxHashMap, FxHashSet};
use chase_core::{Atom, Instance, Sym, Term};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

/// Replica of the pre-interning fact store's hot paths (see module docs).
#[derive(Clone, Default)]
struct OldStore {
    atoms: Vec<Atom>,
    set: FxHashSet<Atom>,
    by_pred: FxHashMap<Sym, Vec<u32>>,
    by_pos: FxHashMap<(Sym, u32, Term), Vec<u32>>,
    distinct: FxHashMap<(Sym, u32), u32>,
    next_null: u32,
}

impl OldStore {
    fn insert(&mut self, atom: Atom) -> bool {
        if self.set.contains(&atom) {
            return false;
        }
        let idx = self.atoms.len() as u32;
        for (i, &t) in atom.terms().iter().enumerate() {
            if let Term::Null(n) = t {
                self.next_null = self.next_null.max(n + 1);
            }
            let bucket = self.by_pos.entry((atom.pred(), i as u32, t)).or_default();
            if bucket.is_empty() {
                *self.distinct.entry((atom.pred(), i as u32)).or_insert(0) += 1;
            }
            bucket.push(idx);
        }
        self.by_pred.entry(atom.pred()).or_default().push(idx);
        self.set.insert(atom.clone());
        self.atoms.push(atom);
        true
    }

    fn merge_terms(&mut self, from: Term, to: Term) -> usize {
        if from == to {
            return 0;
        }
        let old = std::mem::take(&mut self.atoms);
        let next_null = self.next_null;
        self.set.clear();
        self.by_pred.clear();
        self.by_pos.clear();
        self.distinct.clear();
        let mut rewritten = 0;
        for a in old {
            let b = a.replace(from, to);
            if b != a {
                rewritten += 1;
            }
            let _ = self.insert(b);
        }
        self.next_null = self.next_null.max(next_null);
        rewritten
    }

    fn len(&self) -> usize {
        self.atoms.len()
    }
}

/// A constant-heavy fact stream: `E(a_{i mod k}, b_i)` plus a skewed
/// `T(a, b, c)` triple relation, replayed `rounds` times (every round after
/// the first is all dedup hits).
fn const_stream(n: usize, rounds: usize) -> Vec<Atom> {
    let k = (n / 8).max(1);
    let mut out = Vec::with_capacity(2 * n * rounds);
    for _ in 0..rounds {
        for i in 0..n {
            out.push(Atom::new(
                "E",
                vec![
                    Term::constant(&format!("a{}", i % k)),
                    Term::constant(&format!("b{i}")),
                ],
            ));
            out.push(Atom::new(
                "T",
                vec![
                    Term::constant(&format!("a{}", i % 4)),
                    Term::constant(&format!("b{}", i % k)),
                    Term::constant(&format!("c{i}")),
                ],
            ));
        }
    }
    out
}

/// A null-heavy stream: `E(c_{i mod k}, _n_i). S(_n_i).` — the shape TGD
/// steps with existentials produce — replayed `rounds` times.
fn null_stream(n: usize, rounds: usize) -> Vec<Atom> {
    let k = (n / 8).max(1);
    let mut out = Vec::with_capacity(2 * n * rounds);
    for _ in 0..rounds {
        for i in 0..n {
            out.push(Atom::new(
                "E",
                vec![Term::constant(&format!("c{}", i % k)), Term::null(i as u32)],
            ));
            out.push(Atom::new("S", vec![Term::null(i as u32)]));
        }
    }
    out
}

/// The merge workload: a null chain `E(_n_i, _n_{i+1})` plus anchors, and
/// the merge sequence collapsing every null into one constant.
fn merge_workload(n: usize) -> (Vec<Atom>, Vec<(Term, Term)>) {
    let mut atoms = Vec::with_capacity(2 * n);
    for i in 0..n as u32 {
        atoms.push(Atom::new("E", vec![Term::null(i), Term::null(i + 1)]));
        atoms.push(Atom::new(
            "S",
            vec![Term::constant(&format!("s{}", i % 16)), Term::null(i)],
        ));
    }
    let merges: Vec<(Term, Term)> = (0..n as u32 / 2)
        .map(|i| (Term::null(2 * i + 1), Term::null(2 * i)))
        .chain((0..4u32).map(|i| (Term::null(4 * i), Term::constant("m"))))
        .collect();
    (atoms, merges)
}

fn build_interned(stream: &[Atom]) -> usize {
    let mut i = Instance::new();
    for a in stream {
        i.insert(a.clone());
    }
    i.len()
}

fn build_old(stream: &[Atom]) -> usize {
    let mut i = OldStore::default();
    for a in stream {
        i.insert(a.clone());
    }
    i.len()
}

fn run_merges_interned(base: &Instance, merges: &[(Term, Term)]) -> usize {
    let mut i = base.clone();
    for &(from, to) in merges {
        i.merge_terms(from, to);
    }
    i.len()
}

fn run_merges_old(base: &OldStore, merges: &[(Term, Term)]) -> usize {
    let mut i = base.clone();
    for &(from, to) in merges {
        i.merge_terms(from, to);
    }
    i.len()
}

struct Prepared {
    const_stream: Vec<Atom>,
    null_stream: Vec<Atom>,
    merge_base_interned: Instance,
    merge_base_old: OldStore,
    merges: Vec<(Term, Term)>,
}

fn prepare() -> Prepared {
    let n = scaled(4096, 512);
    let const_stream = const_stream(n, 2);
    let null_stream = null_stream(n, 2);
    let (merge_atoms, merges) = merge_workload(scaled(1024, 128));
    let mut merge_base_interned = Instance::new();
    let mut merge_base_old = OldStore::default();
    for a in &merge_atoms {
        merge_base_interned.insert(a.clone());
        merge_base_old.insert(a.clone());
    }
    // The two stores must agree fact for fact before any timing means
    // anything.
    assert_eq!(build_interned(&const_stream), build_old(&const_stream));
    assert_eq!(build_interned(&null_stream), build_old(&null_stream));
    assert_eq!(
        run_merges_interned(&merge_base_interned, &merges),
        run_merges_old(&merge_base_old, &merges)
    );
    Prepared {
        const_stream,
        null_stream,
        merge_base_interned,
        merge_base_old,
        merges,
    }
}

fn print_shape(p: &Prepared) {
    let time = |f: &dyn Fn() -> usize| {
        let t0 = std::time::Instant::now();
        black_box(f());
        t0.elapsed()
    };
    let mut rows = Vec::new();
    for (name, interned, old) in [
        (
            "insert_const",
            time(&|| build_interned(&p.const_stream)),
            time(&|| build_old(&p.const_stream)),
        ),
        (
            "insert_null",
            time(&|| build_interned(&p.null_stream)),
            time(&|| build_old(&p.null_stream)),
        ),
        (
            "merge",
            time(&|| run_merges_interned(&p.merge_base_interned, &p.merges)),
            time(&|| run_merges_old(&p.merge_base_old, &p.merges)),
        ),
    ] {
        rows.push(Row::new(
            name,
            vec![
                format!("{interned:.2?}"),
                format!("{old:.2?}"),
                format!(
                    "{:.1}x",
                    old.as_secs_f64() / interned.as_secs_f64().max(1e-9)
                ),
            ],
        ));
    }
    print_table(
        "Instance store — interned columnar vs owned-atom replica",
        &["workload", "interned", "oldstore", "speedup"],
        &rows,
    );
}

fn bench(c: &mut Criterion, p: &Prepared) {
    let mut g = c.benchmark_group("instance_micro");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("insert_const", "interned"), p, |b, p| {
        b.iter(|| build_interned(black_box(&p.const_stream)))
    });
    g.bench_with_input(BenchmarkId::new("insert_const", "oldstore"), p, |b, p| {
        b.iter(|| build_old(black_box(&p.const_stream)))
    });
    g.bench_with_input(BenchmarkId::new("insert_null", "interned"), p, |b, p| {
        b.iter(|| build_interned(black_box(&p.null_stream)))
    });
    g.bench_with_input(BenchmarkId::new("insert_null", "oldstore"), p, |b, p| {
        b.iter(|| build_old(black_box(&p.null_stream)))
    });
    g.bench_with_input(BenchmarkId::new("merge", "interned"), p, |b, p| {
        b.iter(|| run_merges_interned(black_box(&p.merge_base_interned), &p.merges))
    });
    g.bench_with_input(BenchmarkId::new("merge", "oldstore"), p, |b, p| {
        b.iter(|| run_merges_old(black_box(&p.merge_base_old), &p.merges))
    });
    g.finish();
}

fn main() {
    let prepared = prepare();
    print_shape(&prepared);
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c, &prepared);
    c.final_summary();
}
