//! E10 — §3.7: the design point of Figure 8's `check` algorithm is the
//! polynomial safety short-circuit before each restriction-system
//! computation. This ablation measures `check(Σ, 2)` with and without it on
//! the worked Σ'' and on scaled families whose decomposition produces safe
//! components.

use chase_bench::{print_table, Row};
use chase_corpus::{families, paper};
use chase_termination::hierarchy::check_without_safety_shortcircuit;
use chase_termination::{check, PrecedenceConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn workloads() -> Vec<(String, chase_core::ConstraintSet)> {
    let mut out = vec![("sec37-dprime".to_string(), paper::sec37_sigma_dprime())];
    for n in [2usize, 4, 6] {
        out.push((
            format!("ir-family-{n}"),
            families::inductively_restricted_family(n),
        ));
    }
    for n in [4usize, 8] {
        out.push((format!("safe-family-{n}"), families::safe_family(n)));
    }
    out
}

fn print_shape() {
    let pc = PrecedenceConfig::default();
    let rows: Vec<Row> = workloads()
        .iter()
        .map(|(name, set)| {
            let t0 = Instant::now();
            let with = check(set, 2, &pc);
            let with_t = t0.elapsed();
            let t0 = Instant::now();
            let without = check_without_safety_shortcircuit(set, 2, &pc);
            let without_t = t0.elapsed();
            assert_eq!(with, without, "ablation changed the verdict on {name}");
            Row::new(
                name.clone(),
                vec![
                    with.to_string(),
                    format!("{:.2?}", with_t),
                    format!("{:.2?}", without_t),
                    format!(
                        "{:.1}x",
                        without_t.as_secs_f64() / with_t.as_secs_f64().max(1e-9)
                    ),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 8 ablation — check(Σ,2) with vs without the safety short-circuit",
        &["set", "verdict", "with", "without", "slowdown"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let pc = PrecedenceConfig::default();
    let mut g = c.benchmark_group("check_ablation");
    g.sample_size(10);
    for (name, set) in workloads() {
        g.bench_with_input(
            BenchmarkId::new("with_shortcircuit", &name),
            &set,
            |b, s| b.iter(|| check(black_box(s), 2, &pc)),
        );
        g.bench_with_input(
            BenchmarkId::new("without_shortcircuit", &name),
            &set,
            |b, s| b.iter(|| check_without_safety_shortcircuit(black_box(s), 2, &pc)),
        );
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
