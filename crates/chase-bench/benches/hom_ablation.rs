//! Ablation of the homomorphism engine's two join optimizations
//! (DESIGN.md §8): the `(predicate, position, term)` candidate index and
//! dynamic most-constrained-first atom ordering. All four configurations
//! compute identical homomorphism sets; only the cost differs.

use chase_bench::{print_table, Row};
use chase_core::homomorphism::{for_each_hom_cfg, HomConfig, Subst};
use chase_core::parser::parse_atom_list;
use chase_core::{Atom, Instance};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// A long E-chain with a sprinkling of S-facts: pattern joins become
/// selective only through the index.
fn chain_instance(n: usize) -> Instance {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("E(v{i},v{}). ", i + 1));
        if i % 8 == 0 {
            text.push_str(&format!("S(v{i}). "));
        }
    }
    Instance::parse(&text).unwrap()
}

fn pattern() -> Vec<Atom> {
    // Written worst-first: the unselective E-atoms precede the selective
    // S-atom, so static left-to-right ordering pays the full cross-product.
    parse_atom_list("E(X,Y), E(Y,Z), S(X)").unwrap()
}

fn count_homs(pat: &[Atom], inst: &Instance, cfg: &HomConfig) -> usize {
    let mut n = 0usize;
    for_each_hom_cfg(pat, inst, &Subst::new(), false, cfg, &mut |_| {
        n += 1;
        false
    });
    n
}

fn configs() -> Vec<(&'static str, HomConfig)> {
    vec![
        (
            "index+dynamic",
            HomConfig {
                use_position_index: true,
                dynamic_ordering: true,
            },
        ),
        (
            "index only",
            HomConfig {
                use_position_index: true,
                dynamic_ordering: false,
            },
        ),
        (
            "dynamic only",
            HomConfig {
                use_position_index: false,
                dynamic_ordering: true,
            },
        ),
        (
            "naive",
            HomConfig {
                use_position_index: false,
                dynamic_ordering: false,
            },
        ),
    ]
}

fn print_shape() {
    let inst = chain_instance(512);
    let pat = pattern();
    let mut rows = Vec::new();
    let mut expected = None;
    for (name, cfg) in configs() {
        let t0 = Instant::now();
        let n = count_homs(&pat, &inst, &cfg);
        let dt = t0.elapsed();
        if let Some(e) = expected {
            assert_eq!(n, e, "ablation changed the result set");
        }
        expected = Some(n);
        rows.push(Row::new(name, vec![n.to_string(), format!("{dt:.2?}")]));
    }
    print_table(
        "Homomorphism engine ablation — join over a 512-edge chain",
        &["configuration", "homs", "time"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hom_ablation");
    g.sample_size(10);
    for n in [128usize, 512] {
        let inst = chain_instance(n);
        let pat = pattern();
        for (name, cfg) in configs() {
            g.bench_with_input(BenchmarkId::new(name, n), &inst, |b, i| {
                b.iter(|| count_homs(black_box(&pat), i, &cfg))
            });
        }
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
