//! P1 — parallel_scaling: the stratum-scheduled parallel executor
//! (`chase_parallel`) against the sequential delta engine, swept over
//! 1/2/4/8 threads on Example 4, the Figure 9 travel constraints, and a
//! random TGD family.
//!
//! Every engine replays the identical trace under the same phase schedule
//! (asserted below before timing), so the comparison isolates pure
//! matching-throughput differences: sharded head revalidation, sharded
//! delta re-matching, and sharded pool rebuilds. Speedups require actual
//! cores — on a single-CPU host the parallel engine's job is to stay at
//! parity (the dispatch overhead is bounded by `fanout_threshold`).

use chase_bench::{print_table, scaled, Row};
use chase_corpus::random::{
    random_instance, random_tgds, random_travel_instance, RandomInstanceConfig, RandomTgdConfig,
    RandomTravelConfig,
};
use chase_corpus::{families, paper};
use chase_engine::{chase, chase_parallel, ChaseConfig, ChaseResult, ParallelConfig, Strategy};
use chase_termination::{phase_schedule, PrecedenceConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    name: &'static str,
    set: chase_core::ConstraintSet,
    inst: chase_core::Instance,
    max_steps: usize,
}

fn workloads() -> Vec<Workload> {
    let random_set = random_tgds(&RandomTgdConfig {
        constraints: 4,
        predicates: 3,
        max_arity: 3,
        body_atoms: (1, 2),
        head_atoms: (1, 2),
        existential_prob: 0.25,
        seed: 5,
    });
    let random_inst = random_instance(
        &random_set,
        &RandomInstanceConfig {
            facts: scaled(400, 40),
            domain: scaled(40, 8),
            seed: 5,
        },
    );
    vec![
        Workload {
            name: "example4",
            set: paper::example4_sigma(),
            inst: families::unary_instance("R", scaled(48, 8)),
            max_steps: scaled(20_000, 2_000),
        },
        Workload {
            name: "fig9_travel",
            set: paper::fig9_travel(),
            inst: random_travel_instance(&RandomTravelConfig {
                cities: scaled(120, 16),
                flights: scaled(1_200, 60),
                rails: scaled(600, 30),
                seed: 7,
            }),
            max_steps: scaled(4_000, 250),
        },
        Workload {
            name: "random_tgds",
            set: random_set,
            inst: random_inst,
            max_steps: scaled(3_000, 250),
        },
    ]
}

fn delta_cfg(phases: &[Vec<usize>], max_steps: usize) -> ChaseConfig {
    ChaseConfig {
        strategy: Strategy::Phased(phases.to_vec()),
        max_steps: Some(max_steps),
        ..ChaseConfig::default()
    }
}

fn parallel_cfg(max_steps: usize, threads: usize) -> ParallelConfig {
    ParallelConfig {
        base: ChaseConfig {
            max_steps: Some(max_steps),
            ..ChaseConfig::default()
        },
        threads,
        fanout_threshold: 256,
    }
}

fn assert_same_run(name: &str, a: &ChaseResult, b: &ChaseResult) {
    assert_eq!(
        a.reason, b.reason,
        "{name}: engines disagree on stop reason"
    );
    assert_eq!(a.steps, b.steps, "{name}: engines disagree on step count");
    assert_eq!(a.instance, b.instance, "{name}: engines disagree on result");
}

fn print_shape() {
    let pc = PrecedenceConfig::default();
    let mut rows = Vec::new();
    for w in workloads() {
        let schedule = phase_schedule(&w.set, &pc);
        let cfg = delta_cfg(&schedule.phases, w.max_steps);
        let t0 = Instant::now();
        let base = chase(&w.inst, &w.set, &cfg);
        let delta_time = t0.elapsed();
        rows.push(Row::new(
            format!("{} (delta)", w.name),
            vec![
                format!("{:?}", base.reason),
                base.steps.to_string(),
                format!("{:.2} ms", delta_time.as_secs_f64() * 1e3),
                "1.00x".into(),
            ],
        ));
        for threads in THREAD_SWEEP {
            let pcfg = parallel_cfg(w.max_steps, threads);
            let t0 = Instant::now();
            let par = chase_parallel(&w.inst, &w.set, &schedule.phases, &pcfg);
            let par_time = t0.elapsed();
            assert_same_run(w.name, &base, &par);
            rows.push(Row::new(
                format!("{} (parallel, {} threads)", w.name, threads),
                vec![
                    format!("{:?}", par.reason),
                    par.steps.to_string(),
                    format!("{:.2} ms", par_time.as_secs_f64() * 1e3),
                    format!(
                        "{:.2}x",
                        delta_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9)
                    ),
                ],
            ));
        }
    }
    print_table(
        "P1 — stratum-scheduled parallel executor (speedups need real cores)",
        &["run", "outcome", "steps", "wall time", "speedup vs delta"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let pc = PrecedenceConfig::default();
    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    for w in workloads() {
        let schedule = phase_schedule(&w.set, &pc);
        let cfg = delta_cfg(&schedule.phases, w.max_steps);
        g.bench_with_input(BenchmarkId::new(w.name, "delta"), &cfg, |b, cfg| {
            b.iter(|| chase(black_box(&w.inst), &w.set, cfg))
        });
        for threads in THREAD_SWEEP {
            let pcfg = parallel_cfg(w.max_steps, threads);
            g.bench_with_input(
                BenchmarkId::new(w.name, format!("t{threads}")),
                &pcfg,
                |b, pcfg| {
                    b.iter(|| chase_parallel(black_box(&w.inst), &w.set, &schedule.phases, pcfg))
                },
            );
        }
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
