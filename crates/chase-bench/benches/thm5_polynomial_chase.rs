//! E11 — Theorems 3/5/6/7: for recognized sets, chase length is polynomial
//! in |dom(I)|.
//!
//! The printed series sweep |dom(I)| for three recognized families and
//! report chase steps; the expected shapes are linear (safe copy family,
//! T[k] cascade family) and linear-with-constant-factor (Example 10 on
//! cycles, where every node gains its 2- and 3-cycles).

use chase_bench::print_series;
use chase_corpus::{families, paper};
use chase_engine::{chase, chase_default, ChaseConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

fn series_example10() -> Vec<(f64, f64)> {
    let sigma = paper::example10_sigma();
    (1..=6)
        .map(|i| {
            let n = i * 8;
            let inst = families::cycle_instance(n);
            let res = chase(&inst, &sigma, &ChaseConfig::with_max_steps(200_000));
            assert!(res.terminated(), "n={n}");
            (inst.domain_size() as f64, res.steps as f64)
        })
        .collect()
}

fn series_copy_chain() -> Vec<(f64, f64)> {
    let sigma = families::copy_chain(6);
    (1..=6)
        .map(|i| {
            let n = i * 16;
            let inst = families::chain_source_instance(n);
            let res = chase(&inst, &sigma, &ChaseConfig::with_max_steps(200_000));
            assert!(res.terminated(), "n={n}");
            (inst.domain_size() as f64, res.steps as f64)
        })
        .collect()
}

fn series_cascade() -> Vec<(f64, f64)> {
    // The T[k] family on its canonical instance: steps = arity = |dom| − 1.
    (2..=7)
        .map(|k| {
            let (sigma, inst) = paper::prop11_family(k);
            let res = chase_default(&inst, &sigma);
            assert!(res.terminated());
            (inst.domain_size() as f64, res.steps as f64)
        })
        .collect()
}

fn print_shapes() {
    print_series(
        "Theorem 6 — Example 10 (inductively restricted) on n-cycles",
        "|dom(I)|",
        "chase steps",
        &series_example10(),
    );
    print_series(
        "Theorem 5 — weakly acyclic copy chain (6 TGDs)",
        "|dom(I)|",
        "chase steps",
        &series_copy_chain(),
    );
    print_series(
        "Theorem 7 — T[k] cascade family on its canonical instance",
        "|dom(I)|",
        "chase steps",
        &series_cascade(),
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("polynomial_chase");
    g.sample_size(10);
    let sigma10 = paper::example10_sigma();
    for n in [8usize, 16, 32] {
        let inst = families::cycle_instance(n);
        g.bench_with_input(BenchmarkId::new("example10_cycle", n), &inst, |b, i| {
            b.iter(|| {
                chase(
                    black_box(i),
                    &sigma10,
                    &ChaseConfig::with_max_steps(200_000),
                )
            })
        });
    }
    let chain = families::copy_chain(6);
    for n in [16usize, 64] {
        let inst = families::chain_source_instance(n);
        g.bench_with_input(BenchmarkId::new("copy_chain", n), &inst, |b, i| {
            b.iter(|| chase(black_box(i), &chain, &ChaseConfig::with_max_steps(200_000)))
        });
    }
    g.finish();
}

fn main() {
    print_shapes();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
