//! S2 — session_server: load generator for the multi-tenant TCP session
//! server. N concurrent connections drive seeded chase-corpus update
//! streams through real framed-protocol sessions and report
//! **sessions/sec** plus **p50/p99 apply and query latency**.
//!
//! The headline measurement is the concurrency claim behind the
//! copy-on-read design: certain-answer queries are served from the
//! session's published snapshot on the connection thread, so a reader
//! never queues behind an in-flight apply. The bench pins that down by
//! measuring p99 query latency twice over the same loaded sessions —
//! once **read-only** (no writer traffic at all) and once **write-heavy**
//! (a dedicated writer connection per session streaming fresh batches the
//! whole time) — and printing the ratio, which must stay well under the
//! 2x that a lock-the-session design would blow through.
//!
//! The **high-tenancy** group then pushes fleet size instead of per-tenant
//! load: thousands of mostly-idle sessions opened over pipelined frames,
//! on both the bounded worker pool and the legacy thread-per-session
//! scheduler, recording the crossover where one parked OS thread per
//! tenant stops being viable.

use chase_bench::{print_table, quick, scaled, Row};
use chase_corpus::random::{random_travel_stream, RandomTravelConfig};
use chase_obs::{Histogram, HistogramSnapshot, Phase};
use chase_serve::proto::{Request, Response};
use chase_serve::{
    serve, ChaseSession, Client, ConductorConfig, DurabilityConfig, QueryOpts, Server,
};
use criterion::Criterion;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The travel-agency sigma every tenant session runs under.
const SIGMA: &str =
    "fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2); rail(C1,C2,D) -> rail(C2,C1,D)";

/// Concurrent tenant sessions. Stays >= 4 in quick mode: the latency
/// comparison is only meaningful under real concurrency.
fn tenants() -> usize {
    scaled(8, 4)
}

fn queries_per_reader() -> usize {
    scaled(1200, 500)
}

/// The measured read mix: a star join and a chain join, both over
/// relations the write-heavy stream never grows, so a read costs the same
/// in both phases and the p99 comparison isolates contention.
const READ_MIX: [&str; 2] = [
    "q(C1,C2) <- fly(C1,C2,D), hasAirport(C1), hasAirport(C2)",
    "q(C1,C3) <- fly(C1,C2,D1), fly(C2,C3,D2)",
];

/// Open-loop pacing for the measured readers: a steady per-tenant query
/// stream rather than a closed loop, so client threads don't measure
/// their own CPU squeeze on small machines.
const READ_INTERVAL: Duration = Duration::from_micros(1500);

/// Render a batch of atoms as wire fact text.
fn batch_text(batch: &[chase_core::Atom]) -> String {
    let mut s = String::new();
    for a in batch {
        s.push_str(&a.to_string());
        s.push_str(". ");
    }
    s
}

/// A seeded per-tenant update stream.
fn stream_for(tenant: usize) -> Vec<String> {
    random_travel_stream(
        &RandomTravelConfig {
            cities: scaled(60, 16),
            flights: scaled(400, 50),
            rails: scaled(300, 40),
            seed: 100 + tenant as u64,
        },
        scaled(8, 4),
    )
    .iter()
    .map(|b| batch_text(b))
    .collect()
}

/// Fresh, never-seen-before write batch for the write-heavy phase: new
/// rail links each round so every apply moves the instance version and
/// republishes (duplicate batches would be free and prove nothing). Rail
/// only — the read mix never touches `rail`, so a read's evaluation cost
/// is identical in both phases and the comparison isolates *contention*.
fn fresh_batch(tenant: usize, round: usize) -> String {
    let n = scaled(24, 8);
    let mut s = String::new();
    for i in 0..n {
        s.push_str(&format!(
            "rail(w{tenant}_{round}_{i}a,w{tenant}_{round}_{i}b,d)."
        ));
        s.push(' ');
    }
    s
}

fn fmt_us(ns: u64) -> String {
    format!("{:.2} µs", ns as f64 / 1e3)
}

/// Print a latency distribution in the criterion stand-in's line format so
/// `bench2json` records it on the trajectory: [p50 p90 p99].
fn print_latency_line(label: &str, snap: &HistogramSnapshot) {
    println!(
        "{label:<60} time: [{} {} {}]",
        fmt_us(snap.percentile(0.50)),
        fmt_us(snap.percentile(0.90)),
        fmt_us(snap.percentile(0.99)),
    );
}

/// One tenant's full lifecycle: open, stream every batch, query, close.
/// Per-apply latencies land in `applies` (shared, lock-free).
fn run_session(addr: std::net::SocketAddr, stream: &[String], applies: &Histogram) {
    let mut c = Client::connect(addr).expect("connect");
    let s = c.open(SIGMA).expect("open");
    for batch in stream {
        let t0 = Instant::now();
        c.apply(s, batch).expect("apply");
        applies.record_duration(t0.elapsed());
    }
    let ans = c
        .query(s, "q(C) <- hasAirport(C)", QueryOpts::default())
        .expect("query");
    black_box(ans);
    c.close(s).expect("close");
}

/// Load one session per tenant (left open) and return `(session,
/// snapshot)` pairs — the snapshot is the loaded baseline the write-heavy
/// writers periodically rewind to, bounding instance growth.
fn load_sessions(server: &Server) -> Vec<(u64, u64)> {
    (0..tenants())
        .map(|t| {
            let mut c = Client::connect(server.addr()).expect("connect");
            let s = c.open(SIGMA).expect("open");
            for batch in stream_for(t) {
                c.apply(s, &batch).expect("apply");
            }
            // Warm the read mix once: the first sight of a query text pays
            // the SQO rewriting chase, which belongs to neither measured
            // phase.
            for q in READ_MIX {
                c.query(s, q, QueryOpts::default()).expect("warm query");
            }
            let snap = c.snapshot(s).expect("snapshot");
            (s, snap)
        })
        .collect()
}

/// Per-tenant reader loop: `n` queries over its session, each round trip's
/// latency recorded into the shared histogram.
fn reader(addr: std::net::SocketAddr, session: u64, n: usize, lat: &Histogram) {
    let mut c = Client::connect(addr).expect("connect");
    for i in 0..n {
        let q = READ_MIX[i % READ_MIX.len()];
        let t0 = Instant::now();
        let ans = c.query(session, q, QueryOpts::default()).expect("query");
        lat.record_duration(t0.elapsed());
        black_box(ans);
        let spent = t0.elapsed();
        if spent < READ_INTERVAL {
            thread::sleep(READ_INTERVAL - spent);
        }
    }
}

/// Query latencies across all tenants with no writer traffic.
fn measure_read_only(server: &Server, sessions: &[(u64, u64)]) -> HistogramSnapshot {
    let addr = server.addr();
    let n = queries_per_reader();
    let lat = Arc::new(Histogram::new());
    let handles: Vec<_> = sessions
        .iter()
        .map(|&(s, _)| {
            let lat = Arc::clone(&lat);
            thread::spawn(move || reader(addr, s, n, &lat))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    lat.snapshot()
}

/// How often each write-heavy writer issues a batch. Open-loop pacing: a
/// steady update stream per tenant, not a closed CPU-burn loop — on small
/// machines an unpaced writer fleet would measure the OS scheduler, not
/// the server.
const WRITE_INTERVAL: Duration = Duration::from_millis(8);

/// Query + apply latencies across all tenants while a dedicated writer
/// connection per session streams fresh batches for the entire window,
/// rewinding to the loaded snapshot every few rounds to bound growth.
fn measure_write_heavy(
    server: &Server,
    sessions: &[(u64, u64)],
) -> (HistogramSnapshot, HistogramSnapshot) {
    let addr = server.addr();
    let n = queries_per_reader();
    let stop = Arc::new(AtomicBool::new(false));
    let applies = Arc::new(Histogram::new());
    let queries = Arc::new(Histogram::new());
    let writers: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(t, &(s, snap))| {
            let stop = Arc::clone(&stop);
            let lat = Arc::clone(&applies);
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut round = 0;
                while !stop.load(Ordering::Relaxed) {
                    let batch = fresh_batch(t, round);
                    let t0 = Instant::now();
                    c.apply(s, &batch).expect("apply");
                    lat.record_duration(t0.elapsed());
                    round += 1;
                    if round % 8 == 0 {
                        c.restore(s, snap).expect("restore");
                    }
                    let spent = t0.elapsed();
                    if spent < WRITE_INTERVAL {
                        thread::sleep(WRITE_INTERVAL - spent);
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = sessions
        .iter()
        .map(|&(s, _)| {
            let lat = Arc::clone(&queries);
            thread::spawn(move || reader(addr, s, n, &lat))
        })
        .collect();
    for h in readers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }
    (queries.snapshot(), applies.snapshot())
}

fn print_shape() {
    let server = serve("127.0.0.1:0", ConductorConfig::default()).expect("bind");

    // Throughput: every tenant runs its full session lifecycle once,
    // concurrently; sessions/sec is tenants over the wall-clock window.
    let t0 = Instant::now();
    let lifecycle = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..tenants())
        .map(|t| {
            let addr = server.addr();
            let lat = Arc::clone(&lifecycle);
            thread::spawn(move || run_session(addr, &stream_for(t), &lat))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let applies = lifecycle.snapshot();
    let window = t0.elapsed();
    let sessions_per_sec = tenants() as f64 / window.as_secs_f64();

    // Latency under contention: the read-only baseline, then the same
    // readers racing a write-heavy stream.
    let sessions = load_sessions(&server);
    let read_only = measure_read_only(&server, &sessions);
    let (write_heavy_q, write_heavy_a) = measure_write_heavy(&server, &sessions);
    let p99_ro = read_only.percentile(0.99);
    let p99_wh = write_heavy_q.percentile(0.99);
    let ratio = p99_wh as f64 / (p99_ro as f64).max(1.0);

    let rows = vec![
        Row::new(
            "session lifecycle",
            vec![
                format!("{} tenants", tenants()),
                format!("{sessions_per_sec:.1} sessions/s"),
                fmt_us(applies.percentile(0.50)),
                fmt_us(applies.percentile(0.99)),
            ],
        ),
        Row::new(
            "query, read-only",
            vec![
                format!("{} reads", read_only.count()),
                "-".into(),
                fmt_us(read_only.percentile(0.50)),
                fmt_us(p99_ro),
            ],
        ),
        Row::new(
            "query, write-heavy",
            vec![
                format!("{} reads", write_heavy_q.count()),
                "-".into(),
                fmt_us(write_heavy_q.percentile(0.50)),
                fmt_us(p99_wh),
            ],
        ),
        Row::new(
            "apply, write-heavy",
            vec![
                format!("{} writes", write_heavy_a.count()),
                "-".into(),
                fmt_us(write_heavy_a.percentile(0.50)),
                fmt_us(write_heavy_a.percentile(0.99)),
            ],
        ),
    ];
    print_table(
        "S2 — session server load generation (pooled sessions over TCP)",
        &["phase", "volume", "throughput", "p50", "p99"],
        &rows,
    );
    println!(
        "p99 query latency write-heavy/read-only: {ratio:.2}x \
         (reads come off the published snapshot; target < 2x at >= {} sessions)",
        tenants()
    );

    // Trajectory lines in the criterion stand-in's format: [p50 p90 p99].
    print_latency_line("session_server/query_readonly/p50p90p99", &read_only);
    print_latency_line("session_server/query_writeheavy/p50p90p99", &write_heavy_q);
    print_latency_line("session_server/apply_writeheavy/p50p90p99", &write_heavy_a);

    // Per-stage engine phase timings, aggregated over every still-open
    // session's recorder via the conductor (full-budget runs only: quick
    // mode's workload is too small for stable per-stage percentiles).
    let exposition = server.conductor().metrics_text();
    if !quick() {
        let snap = server.conductor().metrics_snapshot();
        let rows: Vec<Row> = Phase::ALL
            .iter()
            .map(|p| {
                let h = snap
                    .histogram(&format!("chase_phase_ns{{phase=\"{}\"}}", p.name()))
                    .cloned()
                    .unwrap_or_default();
                Row::new(
                    p.name(),
                    vec![
                        format!("{}", h.count()),
                        fmt_us(h.percentile(0.50)),
                        fmt_us(h.percentile(0.90)),
                        fmt_us(h.percentile(0.99)),
                    ],
                )
            })
            .collect();
        print_table(
            "S2 — per-stage chase phase timings (chase-obs recorders, all sessions)",
            &["phase", "samples", "p50", "p90", "p99"],
            &rows,
        );
    }

    // Machine-readable exposition dump for bench2json to embed into the
    // trajectory point.
    println!("metrics_exposition_begin");
    print!("{exposition}");
    println!("metrics_exposition_end");

    for (s, _) in sessions {
        let mut c = Client::connect(server.addr()).expect("connect");
        let _ = c.close(s);
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// High tenancy: pool vs legacy thread-per-session
// ---------------------------------------------------------------------------

/// The tenant counts each scheduler is pushed to. The pool's top count is
/// the acceptance floor (>= 2k concurrent sessions); the thread model is
/// pushed past the pool's *lowest* count so the crossover — where one
/// parked OS thread per session stops being viable — lands on the
/// trajectory rather than in a comment.
fn high_tenancy_grid() -> Vec<(&'static str, usize, ConductorConfig)> {
    let pool = |n: usize| ConductorConfig {
        max_sessions: n + 8,
        ..ConductorConfig::default()
    };
    let threads = |n: usize| ConductorConfig {
        max_sessions: n + 8,
        workers: 0,
        ..ConductorConfig::default()
    };
    let pool_counts: &[usize] = if quick() { &[512, 2048] } else { &[2048, 8192] };
    let thread_counts: &[usize] = if quick() { &[512, 1024] } else { &[2048, 4096] };
    let mut grid = Vec::new();
    for &n in pool_counts {
        grid.push(("pool", n, pool(n)));
    }
    for &n in thread_counts {
        grid.push(("threads", n, threads(n)));
    }
    grid
}

/// Pipelined frames kept in flight while loading the tenant fleet.
const PIPELINE_CHUNK: usize = 64;

struct TenancyPoint {
    model: &'static str,
    n: usize,
    opens_per_sec: f64,
    touch: HistogramSnapshot,
}

/// One high-tenancy round: open `n` sessions over pipelined frames on a
/// single connection, give each exactly one small write, then measure
/// sequential stats round trips against a sample of the (now mostly idle)
/// fleet — the latency a tenant sees when thousands of neighbours hold
/// sessions open.
fn high_tenancy_round(model: &'static str, n: usize, cfg: ConductorConfig) -> TenancyPoint {
    let server = serve("127.0.0.1:0", cfg).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");

    // Open + touch the whole fleet, pipelined: with one parked OS thread
    // per session this is where the legacy model starts to hurt.
    let t0 = Instant::now();
    let mut sessions: Vec<u64> = Vec::with_capacity(n);
    while sessions.len() < n {
        let k = PIPELINE_CHUNK.min(n - sessions.len());
        let reqs: Vec<Request> = (0..k)
            .map(|_| Request::Open {
                sigma: SIGMA.into(),
            })
            .collect();
        for reply in c.pipeline(&reqs).expect("pipelined opens") {
            match reply.expect("open") {
                Response::Opened { session } => sessions.push(session),
                other => panic!("unexpected open reply: {other:?}"),
            }
        }
    }
    for chunk in sessions.chunks(PIPELINE_CHUNK) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|&s| Request::Apply {
                session: s,
                facts: format!("fly(a{s},b{s},d)."),
            })
            .collect();
        for reply in c.pipeline(&reqs).expect("pipelined applies") {
            reply.expect("apply");
        }
    }
    let opens_per_sec = n as f64 / t0.elapsed().as_secs_f64();

    // Sampled round-trip latency across the resident fleet.
    let touch = Histogram::new();
    let sample = 256.min(n);
    for i in 0..sample {
        let s = sessions[(i * n) / sample];
        let t0 = Instant::now();
        let stats = c.stats(s).expect("stats");
        touch.record_duration(t0.elapsed());
        black_box(stats);
    }
    server.shutdown();
    TenancyPoint {
        model,
        n,
        opens_per_sec,
        touch: touch.snapshot(),
    }
}

/// Drive both schedulers across the tenant grid and print the crossover:
/// trajectory lines per (model, count) plus a human-readable table.
fn high_tenancy() {
    let points: Vec<TenancyPoint> = high_tenancy_grid()
        .into_iter()
        .map(|(model, n, cfg)| high_tenancy_round(model, n, cfg))
        .collect();
    let rows: Vec<Row> = points
        .iter()
        .map(|p| {
            Row::new(
                format!("{}_s{}", p.model, p.n),
                vec![
                    format!("{} sessions", p.n),
                    format!("{:.0} opens/s", p.opens_per_sec),
                    fmt_us(p.touch.percentile(0.50)),
                    fmt_us(p.touch.percentile(0.99)),
                ],
            )
        })
        .collect();
    print_table(
        "S2 — high tenancy: bounded worker pool vs thread-per-session",
        &["scheduler", "fleet", "load rate", "touch p50", "touch p99"],
        &rows,
    );
    // The crossover, stated: the pool at its top count vs the thread model
    // at its top count (the largest fleet it still sustains).
    let top = |model: &str| points.iter().rev().find(|p| p.model == model).unwrap();
    let (pool, threads) = (top("pool"), top("threads"));
    println!(
        "high_tenancy crossover: pool holds {} sessions (touch p99 {}), \
         thread model stops at {} parked threads (touch p99 {}) — \
         past that, one OS thread per idle tenant is the bottleneck",
        pool.n,
        fmt_us(pool.touch.percentile(0.99)),
        threads.n,
        fmt_us(threads.touch.percentile(0.99)),
    );
    for p in &points {
        print_latency_line(
            &format!("session_server/high_tenancy/{}_s{}", p.model, p.n),
            &p.touch,
        );
    }
}

fn bench(c: &mut Criterion) {
    let server = serve("127.0.0.1:0", ConductorConfig::default()).expect("bind");
    let addr = server.addr();
    let mut g = c.benchmark_group("session_server");
    g.sample_size(10);
    // One tenant's full lifecycle over the wire, batches included.
    let stream = stream_for(0);
    let sink = Histogram::new();
    g.bench_function("lifecycle/tcp", |b| {
        b.iter(|| run_session(addr, black_box(&stream), &sink))
    });
    // A single framed query round trip against a loaded session.
    let mut c0 = Client::connect(addr).expect("connect");
    let s0 = c0.open(SIGMA).expect("open");
    for batch in &stream {
        c0.apply(s0, batch).expect("apply");
    }
    g.bench_function("query_roundtrip/tcp", |b| {
        b.iter(|| {
            c0.query(s0, "q(C) <- hasAirport(C)", QueryOpts::default())
                .expect("query")
        })
    });

    // Durable reopen, both recovery paths. `wal_replay` reopens a session
    // whose whole stream sits in the log (compaction disabled), re-running
    // every batch through the warm apply path; `snapshot_reopen` reopens
    // after a persist, so recovery is one columnar snapshot load and an
    // empty-log replay. The gap between the two is what periodic
    // compaction buys at restart time.
    let replay_dir = durable_dir("wal-replay", false);
    g.bench_function("wal_replay/reopen", |b| {
        b.iter(|| ChaseSession::open(black_box(&replay_dir)).expect("reopen"))
    });
    let snap_dir = durable_dir("snapshot-reopen", true);
    g.bench_function("snapshot_reopen/reopen", |b| {
        b.iter(|| ChaseSession::open(black_box(&snap_dir)).expect("reopen"))
    });
    g.finish();
    server.shutdown();
    std::fs::remove_dir_all(&replay_dir).ok();
    std::fs::remove_dir_all(&snap_dir).ok();
}

/// Prepare a durable session directory holding tenant 0's full stream —
/// as a WAL to replay (`persisted = false`) or compacted into a snapshot
/// (`persisted = true`).
fn durable_dir(name: &str, persisted: bool) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chase-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let sigma = chase_core::ConstraintSet::parse(SIGMA).expect("sigma");
    let mut s = ChaseSession::builder(sigma)
        .durable(&dir)
        .durability(DurabilityConfig {
            snapshot_every_batches: 0,
            snapshot_every_bytes: 0,
            ..DurabilityConfig::default()
        })
        .try_build()
        .expect("durable session");
    for batch in stream_for(0) {
        let atoms = chase_core::Instance::parse(&batch).expect("batch").atoms();
        s.apply(atoms).expect("apply");
    }
    if persisted {
        s.persist().expect("persist");
    }
    dir
}

fn main() {
    print_shape();
    high_tenancy();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
