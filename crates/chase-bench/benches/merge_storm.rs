//! S2 — merge_storm: EGD-heavy update streams through a warm
//! `chase-serve` session against from-scratch re-chase.
//!
//! The workload shape ([`chase_corpus::random::merge_storm_stream`]): early
//! batches declare entities, whose attribute TGDs invent labeled nulls;
//! later batches deliver the ground attribute values, whose key EGDs merge
//! those nulls away again. Every warm batch therefore fires EGD merges
//! against an already-chased instance — the path where the store rewrites
//! only the merged term's occurrences (via `by_pos`) and the engine repairs
//! its trigger pool from the returned merge delta instead of rebuilding it.
//! The **cold** baseline re-chases the accumulated union from scratch at
//! every epoch, paying full re-matching for every merge ever applied.

use chase_bench::{print_table, scaled, Row};
use chase_core::{Atom, ConstraintSet, Instance};
use chase_corpus::random::{merge_storm_stream, MergeStormConfig};
use chase_engine::{chase, ChaseConfig, StopReason};
use chase_serve::{ChaseSession, SessionConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

struct Workload {
    name: &'static str,
    set: ConstraintSet,
    stream: Vec<Vec<Atom>>,
}

fn workloads() -> Vec<Workload> {
    let mk = |name: &'static str, cfg: MergeStormConfig| {
        let (set, stream) = merge_storm_stream(&cfg);
        Workload { name, set, stream }
    };
    vec![
        mk(
            "storm",
            MergeStormConfig {
                entities: scaled(120, 20),
                attributes: 3,
                values: 10,
                batches: scaled(12, 4),
                seed: 7,
            },
        ),
        mk(
            "storm_wide",
            MergeStormConfig {
                entities: scaled(100, 14),
                attributes: 6,
                values: 6,
                batches: scaled(14, 4),
                seed: 8,
            },
        ),
        // A tight value pool: most rewritten `Uses` rows collapse onto an
        // existing duplicate, stressing the collapse bookkeeping.
        mk(
            "storm_dense",
            MergeStormConfig {
                entities: scaled(150, 24),
                attributes: 4,
                values: 3,
                batches: scaled(12, 4),
                seed: 9,
            },
        ),
    ]
}

/// Warm path: one resident session; each batch's merges are applied as
/// deltas. Returns (steps, merge-rewritten, merge-collapsed).
fn run_warm(set: &ConstraintSet, stream: &[Vec<Atom>]) -> (usize, usize, usize) {
    let cfg = SessionConfig {
        use_sqo: false, // no queries here; measure pure re-chase
        ..SessionConfig::default()
    };
    let mut session = ChaseSession::with_config(set.clone(), cfg);
    let mut steps = 0;
    for batch in stream {
        let out = session.apply(batch.iter().cloned()).expect("batch applies");
        assert_eq!(out.reason, StopReason::Satisfied, "workload must quiesce");
        steps += out.steps;
    }
    let stats = session.stats();
    (
        steps,
        stats.merge_rewritten as usize,
        stats.merge_collapsed as usize,
    )
}

/// Cold path: re-chase the accumulated union from scratch at every epoch.
fn run_cold(set: &ConstraintSet, stream: &[Vec<Atom>]) -> usize {
    let cfg = ChaseConfig::default();
    let mut union = Instance::new();
    let mut last_steps = 0;
    for batch in stream {
        union.extend(batch.iter().cloned());
        let res = chase(&union, set, &cfg);
        assert_eq!(res.reason, StopReason::Satisfied, "workload must quiesce");
        last_steps = res.steps;
    }
    last_steps
}

fn print_shape() {
    let mut rows = Vec::new();
    for w in workloads() {
        let epochs = w.stream.len();
        let t0 = Instant::now();
        let (warm_steps, rewritten, collapsed) = run_warm(&w.set, &w.stream);
        let warm_time = t0.elapsed();
        let t0 = Instant::now();
        let cold_final_steps = run_cold(&w.set, &w.stream);
        let cold_time = t0.elapsed();
        rows.push(Row::new(
            w.name.to_string(),
            vec![
                epochs.to_string(),
                format!("{warm_steps}/{cold_final_steps}"),
                format!("{rewritten}/{collapsed}"),
                format!("{:.2} ms", warm_time.as_secs_f64() * 1e3),
                format!("{:.2} ms", cold_time.as_secs_f64() * 1e3),
                format!(
                    "{:.2}x",
                    cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9)
                ),
            ],
        ));
    }
    print_table(
        "S2 — EGD merge storms: warm merge-delta session vs from-scratch re-chase",
        &[
            "workload",
            "epochs",
            "steps warm/cold-final",
            "merge rewritten/collapsed",
            "warm total",
            "cold total",
            "cold/warm",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_storm");
    g.sample_size(10);
    for w in workloads() {
        g.bench_with_input(BenchmarkId::new(w.name, "warm"), &w, |b, w| {
            b.iter(|| run_warm(black_box(&w.set), &w.stream))
        });
        g.bench_with_input(BenchmarkId::new(w.name, "cold"), &w, |b, w| {
            b.iter(|| run_cold(black_box(&w.set), &w.stream))
        });
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
