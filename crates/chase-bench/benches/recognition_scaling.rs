//! E16 — recognition complexity in practice: the PTIME conditions (weak
//! acyclicity, safety) versus the coNP conditions (stratification,
//! inductive restriction) as |Σ| grows.

use chase_bench::print_series;
use chase_corpus::families;
use chase_termination::{
    is_inductively_restricted, is_safe, is_stratified, is_weakly_acyclic, PrecedenceConfig,
};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn time_of(f: impl Fn()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// A sized family constructor.
type Family = fn(usize) -> chase_core::ConstraintSet;

fn print_shapes() {
    let pc = PrecedenceConfig::default();
    let family_table: [(&str, Family); 2] = [
        ("safe family (safety motif × n)", families::safe_family),
        (
            "inductively restricted family (Example 10 motif × n)",
            families::inductively_restricted_family,
        ),
    ];
    for (title, family) in family_table {
        let mut wa = Vec::new();
        let mut safe = Vec::new();
        let mut strat = Vec::new();
        let mut ir = Vec::new();
        for n in [1usize, 2, 4, 6] {
            let set = family(n);
            let size = set.len() as f64;
            wa.push((
                size,
                time_of(|| {
                    is_weakly_acyclic(black_box(&set));
                }),
            ));
            safe.push((
                size,
                time_of(|| {
                    is_safe(black_box(&set));
                }),
            ));
            strat.push((
                size,
                time_of(|| {
                    is_stratified(black_box(&set), &pc);
                }),
            ));
            ir.push((
                size,
                time_of(|| {
                    is_inductively_restricted(black_box(&set), &pc);
                }),
            ));
        }
        print_series(&format!("{title}: weak acyclicity"), "|Σ|", "ms", &wa);
        print_series(&format!("{title}: safety"), "|Σ|", "ms", &safe);
        print_series(&format!("{title}: stratification"), "|Σ|", "ms", &strat);
        print_series(&format!("{title}: inductive restriction"), "|Σ|", "ms", &ir);
    }
}

fn bench(c: &mut Criterion) {
    let pc = PrecedenceConfig::default();
    let mut g = c.benchmark_group("recognition_scaling");
    g.sample_size(10);
    for n in [2usize, 4, 6] {
        let set = families::inductively_restricted_family(n);
        g.bench_with_input(BenchmarkId::new("weak_acyclicity", n), &set, |b, s| {
            b.iter(|| is_weakly_acyclic(black_box(s)))
        });
        g.bench_with_input(BenchmarkId::new("safety", n), &set, |b, s| {
            b.iter(|| is_safe(black_box(s)))
        });
        g.bench_with_input(BenchmarkId::new("stratification", n), &set, |b, s| {
            b.iter(|| is_stratified(black_box(s), &pc))
        });
        g.bench_with_input(
            BenchmarkId::new("inductive_restriction", n),
            &set,
            |b, s| b.iter(|| is_inductively_restricted(black_box(s), &pc)),
        );
    }
    g.finish();
}

fn main() {
    print_shapes();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
