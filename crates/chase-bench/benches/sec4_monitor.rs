//! E14 — Section 4.2: monitor-graph overhead on terminating runs, abort
//! latency on divergent runs, and the Proposition 11 pay-as-you-go sweep.

use chase_bench::{print_table, Row};
use chase_corpus::{families, paper};
use chase_engine::{chase, ChaseConfig, StopReason};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

fn print_shape() {
    // Pay-as-you-go: for (Σk, Ik), depth d succeeds iff d ≥ k.
    let mut rows = Vec::new();
    for k in 3..=6usize {
        let (sigma, inst) = paper::prop11_family(k);
        let outcomes: Vec<String> = (2..=k + 1)
            .map(|depth| {
                let res = chase(&inst, &sigma, &ChaseConfig::with_monitor_depth(depth));
                match res.reason {
                    StopReason::Satisfied => format!("d{depth}:ok"),
                    StopReason::MonitorAbort { .. } => format!("d{depth}:abort"),
                    other => format!("d{depth}:{other:?}"),
                }
            })
            .collect();
        rows.push(Row::new(format!("Σ{k}/I{k}"), vec![outcomes.join(" ")]));
    }
    print_table(
        "Proposition 11 — pay-as-you-go monitor depth",
        &["workload", "outcome per depth"],
        &rows,
    );

    // Abort latency on the divergent q1.
    let sigma = paper::fig9_travel();
    let (frozen, _) = paper::q1().freeze();
    let rows: Vec<Row> = (2..=6)
        .map(|depth| {
            let res = chase(&frozen, &sigma, &ChaseConfig::with_monitor_depth(depth));
            Row::new(
                format!("depth {depth}"),
                vec![format!("{:?}", res.reason), res.steps.to_string()],
            )
        })
        .collect();
    print_table(
        "q1 divergence — steps until monitor abort",
        &["guard", "outcome", "steps"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);

    // Overhead on a terminating workload: with vs without monitor.
    let sigma = paper::example10_sigma();
    for n in [8usize, 24] {
        let inst = families::cycle_instance(n);
        let plain = ChaseConfig::with_max_steps(100_000);
        let monitored = ChaseConfig {
            keep_monitor: true,
            ..ChaseConfig::with_max_steps(100_000)
        };
        g.bench_with_input(BenchmarkId::new("terminating_plain", n), &inst, |b, i| {
            b.iter(|| chase(black_box(i), &sigma, &plain))
        });
        g.bench_with_input(
            BenchmarkId::new("terminating_monitored", n),
            &inst,
            |b, i| b.iter(|| chase(black_box(i), &sigma, &monitored)),
        );
    }

    // Abort latency on the divergent travel query.
    let travel = paper::fig9_travel();
    let (frozen, _) = paper::q1().freeze();
    for depth in [3usize, 5] {
        let cfg = ChaseConfig::with_monitor_depth(depth);
        g.bench_with_input(BenchmarkId::new("q1_abort", depth), &frozen, |b, i| {
            b.iter(|| chase(black_box(i), &travel, &cfg))
        });
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
