//! E16 (oracle view) — the coNP core in isolation: cost of individual `≺`,
//! `≺c` and `≺k,P` queries, as the chain length k grows, on the Example 15
//! family whose witnesses get deeper with arity.

use chase_bench::{print_table, Row};
use chase_core::PosSet;
use chase_corpus::paper;
use chase_termination::{precedes, precedes_c, precedes_k, PrecedenceConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn print_shape() {
    let pc = PrecedenceConfig::default();
    let empty = PosSet::new();
    let mut rows = Vec::new();
    for arity in 2..=4usize {
        let set = paper::sigma_family(arity);
        for k in 2..=arity + 1 {
            let seq = vec![0usize; k];
            let t0 = Instant::now();
            let verdict = precedes_k(&set, &seq, &empty, &pc);
            rows.push(Row::new(
                format!("arity {arity}, ≺{k},∅"),
                vec![format!("{verdict:?}"), format!("{:.2?}", t0.elapsed())],
            ));
        }
    }
    print_table(
        "≺k,P oracle — verdicts and query times on the Example 15 family",
        &["query", "verdict", "time"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let pc = PrecedenceConfig::default();
    let empty = PosSet::new();
    let mut g = c.benchmark_group("precedence_oracle");
    g.sample_size(10);

    // ≺ and ≺c on Example 4 (where they differ, Figures 4/5).
    let ex4 = paper::example4_sigma();
    g.bench_function("precedes_alpha2_alpha4", |b| {
        b.iter(|| precedes(black_box(&ex4), 1, 3, &pc))
    });
    g.bench_function("precedes_c_alpha2_alpha4", |b| {
        b.iter(|| precedes_c(black_box(&ex4), 1, 3, &pc))
    });

    // ≺k,∅ chains of growing length.
    for arity in 2..=4usize {
        let set = paper::sigma_family(arity);
        for k in 2..=arity + 1 {
            let seq = vec![0usize; k];
            g.bench_with_input(
                BenchmarkId::new(format!("prec_k{k}"), format!("arity{arity}")),
                &set,
                |b, s| b.iter(|| precedes_k(black_box(s), &seq, &empty, &pc)),
            );
        }
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
