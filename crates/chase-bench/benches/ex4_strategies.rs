//! E4/E5 — Example 4 vs Theorem 2: the cost of the wrong chase order versus
//! the statically constructed terminating order.
//!
//! The cyclic order diverges (steps = budget, cost grows with the budget);
//! the Theorem 2 phased order terminates in a handful of steps regardless.

use chase_bench::{print_table, Row};
use chase_corpus::paper;
use chase_engine::{chase, ChaseConfig, Strategy};
use chase_termination::{stratified_order, PrecedenceConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

fn print_shape() {
    let sigma = paper::example4_sigma();
    let start = paper::example5_instance();
    let pc = PrecedenceConfig::default();
    let phases = stratified_order(&sigma, &pc);

    let mut rows = Vec::new();
    for budget in [50usize, 200, 800] {
        let bad = chase(
            &start,
            &sigma,
            &ChaseConfig {
                strategy: Strategy::FixedCycle(vec![0, 1, 2, 3]),
                max_steps: Some(budget),
                ..ChaseConfig::default()
            },
        );
        rows.push(Row::new(
            format!("cyclic order, budget {budget}"),
            vec![
                format!("{:?}", bad.reason),
                bad.steps.to_string(),
                bad.fresh_nulls.to_string(),
            ],
        ));
    }
    let good = chase(
        &start,
        &sigma,
        &ChaseConfig {
            strategy: Strategy::Phased(phases),
            ..ChaseConfig::default()
        },
    );
    rows.push(Row::new(
        "Theorem 2 order",
        vec![
            format!("{:?}", good.reason),
            good.steps.to_string(),
            good.fresh_nulls.to_string(),
        ],
    ));
    let bfs = chase_engine::find_terminating_sequence(&start, &sigma, 20_000);
    rows.push(Row::new(
        "BFS strawman (§3.2)",
        vec![
            format!(
                "found {}-step sequence",
                bfs.sequence.as_ref().map(Vec::len).unwrap_or(0)
            ),
            format!("{} nodes expanded", bfs.expanded),
            "-".into(),
        ],
    ));
    print_table(
        "Example 4/5 — chase order decides termination",
        &["run", "outcome", "steps", "fresh nulls"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let sigma = paper::example4_sigma();
    let start = paper::example5_instance();
    let pc = PrecedenceConfig::default();
    let phases = stratified_order(&sigma, &pc);

    let mut g = c.benchmark_group("example4_orders");
    g.sample_size(10);
    for budget in [50usize, 200] {
        let cfg = ChaseConfig {
            strategy: Strategy::FixedCycle(vec![0, 1, 2, 3]),
            max_steps: Some(budget),
            ..ChaseConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::new("cyclic_until_budget", budget),
            &cfg,
            |b, cfg| b.iter(|| chase(black_box(&start), &sigma, cfg)),
        );
        // The seed engine's behaviour: full trigger re-enumeration per step.
        g.bench_with_input(
            BenchmarkId::new("cyclic_until_budget_naive", budget),
            &cfg,
            |b, cfg| b.iter(|| chase_engine::chase_naive(black_box(&start), &sigma, cfg)),
        );
    }
    let good_cfg = ChaseConfig {
        strategy: Strategy::Phased(phases),
        ..ChaseConfig::default()
    };
    g.bench_function("theorem2_order", |b| {
        b.iter(|| chase(black_box(&start), &sigma, &good_cfg))
    });
    g.bench_function("theorem2_order_naive", |b| {
        b.iter(|| chase_engine::chase_naive(black_box(&start), &sigma, &good_cfg))
    });
    g.bench_function("compute_theorem2_order", |b| {
        b.iter(|| stratified_order(black_box(&sigma), &pc))
    });
    // The Section 3.2 strawman: breadth-first search for a terminating
    // sequence — "rather uneffective" compared to the static order.
    g.bench_function("bfs_strawman", |b| {
        b.iter(|| chase_engine::find_terminating_sequence(black_box(&start), &sigma, 20_000))
    });
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
