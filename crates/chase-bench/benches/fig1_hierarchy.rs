//! E1 — Figure 1 regenerated: the classification matrix of the corpus under
//! every termination condition, plus recognizer timings per corpus entry.
//!
//! The printed table *is* the figure: each row is a constraint set, each
//! column a condition; the inclusion structure of Figure 1 can be read off
//! the yes/no pattern (and is asserted by `tests/classification_matrix.rs`).

use chase_bench::{print_table, Row};
use chase_core::ConstraintSet;
use chase_corpus::paper;
use chase_corpus::random::{random_instance, RandomInstanceConfig};
use chase_engine::{chase, chase_naive, ChaseConfig};
use chase_termination::{
    analyze, is_inductively_restricted, is_safe, is_stratified, is_weakly_acyclic, PrecedenceConfig,
};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

fn corpus() -> Vec<(&'static str, ConstraintSet)> {
    vec![
        ("intro-a1", paper::intro_alpha1()),
        ("intro-a2", paper::intro_alpha2()),
        ("fig2", paper::fig2_sigma()),
        ("ex2-gamma", paper::example2_gamma()),
        ("ex4", paper::example4_sigma()),
        ("safety-beta", paper::safety_beta()),
        ("thm4-pair", paper::thm4_safe_not_stratified()),
        ("ex10", paper::example10_sigma()),
        ("ex13-prime", paper::example13_sigma_prime()),
        ("sec37-dprime", paper::sec37_sigma_dprime()),
        ("fig9-travel", paper::fig9_travel()),
        ("data-exchange", paper::data_exchange_baseline()),
    ]
}

fn print_matrix() {
    let pc = PrecedenceConfig::default();
    let rows: Vec<Row> = corpus()
        .iter()
        .map(|(name, set)| {
            let r = analyze(set, 4, &pc);
            Row::new(
                *name,
                vec![
                    if r.weakly_acyclic { "yes" } else { "no" }.into(),
                    if r.safe { "yes" } else { "no" }.into(),
                    r.stratified.to_string(),
                    r.c_stratified.to_string(),
                    r.safely_restricted.to_string(),
                    r.inductively_restricted.to_string(),
                    r.t_level.map(|k| format!("T[{k}]")).unwrap_or("-".into()),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 1 — classification matrix (corpus × condition)",
        &[
            "set",
            "WA",
            "safe",
            "strat",
            "c-strat",
            "safe-restr",
            "IR=T[2]",
            "T-level≤4",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let pc = PrecedenceConfig::default();
    let mut g = c.benchmark_group("fig1_recognizers");
    g.sample_size(10);
    for (name, set) in corpus() {
        g.bench_with_input(BenchmarkId::new("weak_acyclicity", name), &set, |b, s| {
            b.iter(|| is_weakly_acyclic(black_box(s)))
        });
        g.bench_with_input(BenchmarkId::new("safety", name), &set, |b, s| {
            b.iter(|| is_safe(black_box(s)))
        });
        g.bench_with_input(BenchmarkId::new("stratification", name), &set, |b, s| {
            b.iter(|| is_stratified(black_box(s), &pc))
        });
        g.bench_with_input(
            BenchmarkId::new("inductive_restriction", name),
            &set,
            |b, s| b.iter(|| is_inductively_restricted(black_box(s), &pc)),
        );
    }
    g.finish();

    // The chase itself over every Figure 1 corpus entry: the delta-driven
    // trigger queue versus the seed engine's per-step re-enumeration, on
    // identical chase sequences (the engines select identically).
    let mut g = c.benchmark_group("fig1_chase_engines");
    g.sample_size(10);
    let cfg = ChaseConfig {
        max_steps: Some(300),
        ..ChaseConfig::default()
    };
    for (name, set) in corpus() {
        let inst = random_instance(
            &set,
            &RandomInstanceConfig {
                facts: 30,
                domain: 5,
                seed: 0xF161,
            },
        );
        g.bench_with_input(BenchmarkId::new("delta", name), &inst, |b, i| {
            b.iter(|| chase(black_box(i), &set, &cfg))
        });
        g.bench_with_input(BenchmarkId::new("naive", name), &inst, |b, i| {
            b.iter(|| chase_naive(black_box(i), &set, &cfg))
        });
    }
    g.finish();
}

fn main() {
    print_matrix();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
