//! S1 — session_updates: warm incremental re-chase through a
//! `chase-serve` session against from-scratch re-chase, on seeded update
//! streams.
//!
//! The serving model: after every update batch the caller needs the chased
//! state (to answer queries). The **cold** path re-chases the union of all
//! batches so far from scratch at every epoch — paying full trigger
//! re-discovery on data it already chased. The **warm** path keeps one
//! `ChaseSession` resident: each batch is inserted into the columnar store,
//! the trigger pool is re-matched semi-naively from the batch delta, and
//! the chase resumes with pool, dead-memo and join plans already warm.
//! Both paths produce a universal model of the same accumulated facts
//! after every epoch (pinned up to core isomorphism by
//! `tests/session_equivalence.rs`); only the work differs.

use chase_bench::{print_table, scaled, Row};
use chase_core::{Atom, ConstraintSet, Instance};
use chase_corpus::random::{
    random_instance, random_travel_stream, update_stream, RandomInstanceConfig, RandomTravelConfig,
    UpdateStreamConfig,
};
use chase_engine::{chase, ChaseConfig, StopReason};
use chase_serve::{ChaseSession, SessionConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

struct Workload {
    name: &'static str,
    set: ConstraintSet,
    stream: Vec<Vec<Atom>>,
}

fn workloads() -> Vec<Workload> {
    let travel_set = ConstraintSet::parse(
        "fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)\n\
         rail(C1,C2,D) -> rail(C2,C1,D)",
    )
    .expect("travel set parses");
    let travel_stream = random_travel_stream(
        &RandomTravelConfig {
            cities: scaled(80, 14),
            flights: scaled(900, 60),
            rails: scaled(500, 40),
            seed: 11,
        },
        scaled(10, 4),
    );

    let tc_set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").expect("tc set parses");
    let tc_edges = random_instance(
        &tc_set,
        &RandomInstanceConfig {
            facts: scaled(90, 24),
            domain: scaled(40, 10),
            seed: 11,
        },
    );
    let tc_stream = update_stream(
        &tc_edges,
        &UpdateStreamConfig {
            batches: scaled(10, 4),
            seed: 11,
        },
    );

    let lav_set = ConstraintSet::parse(
        "S(X) -> E(X,Y)\n\
         E(X,Y), E(Y,Z) -> E(X,Z)",
    )
    .expect("lav set parses");
    let mut lav_base = random_instance(
        &lav_set,
        &RandomInstanceConfig {
            facts: scaled(60, 16),
            domain: scaled(30, 8),
            seed: 12,
        },
    );
    for i in 0..scaled(20, 5) {
        lav_base.insert(Atom::new(
            "S",
            vec![chase_core::Term::constant(&format!("c{i}"))],
        ));
    }
    let lav_stream = update_stream(
        &lav_base,
        &UpdateStreamConfig {
            batches: scaled(8, 4),
            seed: 12,
        },
    );

    vec![
        Workload {
            name: "travel",
            set: travel_set,
            stream: travel_stream,
        },
        Workload {
            name: "tc_random",
            set: tc_set,
            stream: tc_stream,
        },
        Workload {
            name: "lav_tc",
            set: lav_set,
            stream: lav_stream,
        },
    ]
}

/// Warm path: one resident session, every batch continued from its delta.
fn run_warm(set: &ConstraintSet, stream: &[Vec<Atom>]) -> usize {
    let cfg = SessionConfig {
        use_sqo: false, // no queries here; measure pure re-chase
        ..SessionConfig::default()
    };
    let mut session = ChaseSession::with_config(set.clone(), cfg);
    let mut steps = 0;
    for batch in stream {
        let out = session.apply(batch.iter().cloned()).expect("batch applies");
        assert_eq!(out.reason, StopReason::Satisfied, "workload must quiesce");
        steps += out.steps;
    }
    steps
}

/// Cold path: re-chase the accumulated union from scratch at every epoch.
fn run_cold(set: &ConstraintSet, stream: &[Vec<Atom>]) -> usize {
    let cfg = ChaseConfig::default();
    let mut union = Instance::new();
    let mut last_steps = 0;
    for batch in stream {
        union.extend(batch.iter().cloned());
        let res = chase(&union, set, &cfg);
        assert_eq!(res.reason, StopReason::Satisfied, "workload must quiesce");
        last_steps = res.steps;
    }
    last_steps
}

fn print_shape() {
    let mut rows = Vec::new();
    for w in workloads() {
        let epochs = w.stream.len();
        let t0 = Instant::now();
        let warm_steps = run_warm(&w.set, &w.stream);
        let warm_time = t0.elapsed();
        let t0 = Instant::now();
        let cold_final_steps = run_cold(&w.set, &w.stream);
        let cold_time = t0.elapsed();
        // Warm steps can exceed the final from-scratch count (a warm
        // session may derive a fact a later batch would have delivered as
        // base data), but never by more than the stream's fact count.
        rows.push(Row::new(
            w.name.to_string(),
            vec![
                epochs.to_string(),
                format!("{warm_steps}/{cold_final_steps}"),
                format!("{:.2} ms", warm_time.as_secs_f64() * 1e3),
                format!("{:.2} ms", cold_time.as_secs_f64() * 1e3),
                format!(
                    "{:.2}x",
                    cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9)
                ),
            ],
        ));
    }
    print_table(
        "S1 — warm session re-chase vs from-scratch re-chase per epoch",
        &[
            "workload",
            "epochs",
            "steps warm/cold-final",
            "warm total",
            "cold total",
            "cold/warm",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_updates");
    g.sample_size(10);
    for w in workloads() {
        g.bench_with_input(BenchmarkId::new(w.name, "warm"), &w, |b, w| {
            b.iter(|| run_warm(black_box(&w.set), &w.stream))
        });
        g.bench_with_input(BenchmarkId::new(w.name, "cold"), &w, |b, w| {
            b.iter(|| run_cold(black_box(&w.set), &w.stream))
        });
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
