//! E15 — Section 5: cost of the guarded-class recognizers. Weak
//! guardedness is a polynomial scan; restricted guardedness pays for a
//! minimal 2-restriction system first.

use chase_bench::{print_table, Row};
use chase_corpus::{families, paper};
use chase_guarded::guards::{is_restrictedly_guarded, is_weakly_guarded};
use chase_termination::PrecedenceConfig;
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

fn workloads() -> Vec<(String, chase_core::ConstraintSet)> {
    let mut out = vec![
        ("example19".to_string(), paper::example19_guarded()),
        (
            "wg-rg-witness".to_string(),
            chase_core::ConstraintSet::parse(
                "R(X1,X2,X3), S(X2) -> R(X2,Y,X1)\n\
                 R(A,U,B), T(U), R(C,V,D), T(V) -> H(U,V)",
            )
            .unwrap(),
        ),
    ];
    for n in [2usize, 4] {
        out.push((format!("safe-family-{n}"), families::safe_family(n)));
    }
    out
}

fn print_shape() {
    let pc = PrecedenceConfig::default();
    let rows: Vec<Row> = workloads()
        .iter()
        .map(|(name, set)| {
            Row::new(
                name.clone(),
                vec![
                    if is_weakly_guarded(set) { "yes" } else { "no" }.into(),
                    is_restrictedly_guarded(set, &pc).to_string(),
                ],
            )
        })
        .collect();
    print_table(
        "Section 5 — guarded-class recognition",
        &["set", "weakly guarded", "restrictedly guarded"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let pc = PrecedenceConfig::default();
    let mut g = c.benchmark_group("guarded_recognition");
    g.sample_size(10);
    for (name, set) in workloads() {
        g.bench_with_input(BenchmarkId::new("weakly_guarded", &name), &set, |b, s| {
            b.iter(|| is_weakly_guarded(black_box(s)))
        });
        g.bench_with_input(
            BenchmarkId::new("restrictedly_guarded", &name),
            &set,
            |b, s| b.iter(|| is_restrictedly_guarded(black_box(s), &pc)),
        );
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
