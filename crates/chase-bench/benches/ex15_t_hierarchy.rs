//! E2 — Figure 2 / Example 15: hierarchy levels of the Σ-family and the
//! cost of membership testing per level.
//!
//! The printed series shows the empirical law `level(arity n) = n + 1`
//! (DESIGN.md §4.3); the timings show how the `≺k,P` oracle cost grows with
//! the chain length k.

use chase_bench::{print_table, Row};
use chase_corpus::paper;
use chase_termination::{check, t_level, PrecedenceConfig};
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

fn print_levels() {
    let pc = PrecedenceConfig::default();
    let rows: Vec<Row> = (2..=4)
        .map(|arity| {
            let set = paper::sigma_family(arity);
            let (level, _) = t_level(&set, arity + 2, &pc);
            let memberships: Vec<String> = (2..=arity + 2)
                .map(|k| format!("T[{k}]={}", check(&set, k, &pc)))
                .collect();
            Row::new(
                format!("arity {arity}"),
                vec![
                    level.map(|k| format!("T[{k}]")).unwrap_or("-".into()),
                    memberships.join(" "),
                ],
            )
        })
        .collect();
    print_table(
        "Example 15 — hierarchy level per family arity",
        &["member", "least level", "memberships"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let pc = PrecedenceConfig::default();
    let mut g = c.benchmark_group("t_hierarchy_membership");
    g.sample_size(10);
    for arity in 2..=4usize {
        let set = paper::sigma_family(arity);
        for k in 2..=arity + 1 {
            g.bench_with_input(
                BenchmarkId::new(format!("check_T{k}"), format!("arity{arity}")),
                &set,
                |b, s| b.iter(|| check(black_box(s), k, &pc)),
            );
        }
    }
    g.finish();
}

fn main() {
    print_levels();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
