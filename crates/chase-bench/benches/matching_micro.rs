//! Planned vs unplanned body matching on wide-body TGDs — the microbench
//! behind the `chase-plan` join compiler's headline claim: a compiled,
//! statistics-ordered join program with composite secondary indexes beats
//! the per-node dynamic searcher by ≥ 2x on badly-written bodies, while
//! enumerating exactly the same homomorphism multiset (asserted here before
//! timing anything).
//!
//! Workloads (bodies written worst-first, as a constraint author plausibly
//! would):
//!
//! * `star` — `E1(X,Y1), …, E4(X,Y4), S(X)`: a 5-atom star join whose only
//!   selective atom comes last;
//! * `chain` — `E(X1,X2), E(X2,X3), E(X3,X4), S(X4)`: a path join anchored
//!   at the far end;
//! * `pair` — `T(X,Y), S(X), R(Y)`: a fat relation with a low-selectivity
//!   first column, where only the two-column composite index is selective.

use chase_bench::{print_table, scaled, Row};
use chase_core::{Atom, ConstraintSet, Instance, Term};
use chase_engine::Matcher;
use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;

struct Workload {
    name: &'static str,
    set: ConstraintSet,
    inst: Instance,
}

fn star(n: usize) -> Workload {
    let set = ConstraintSet::parse("E1(X,Y1), E2(X,Y2), E3(X,Y3), E4(X,Y4), S(X) -> Q(X)").unwrap();
    let mut inst = Instance::new();
    for i in 0..n {
        let x = Term::constant(&format!("v{}", i % (n / 8).max(1)));
        for e in ["E1", "E2", "E3", "E4"] {
            inst.insert(Atom::new(e, vec![x, Term::constant(&format!("{e}w{i}"))]));
        }
    }
    inst.insert(Atom::new("S", vec![Term::constant("v0")]));
    Workload {
        name: "star",
        set,
        inst,
    }
}

fn chain(n: usize) -> Workload {
    let set = ConstraintSet::parse("E(X1,X2), E(X2,X3), E(X3,X4), S(X4) -> Q(X1)").unwrap();
    let mut inst = Instance::new();
    for i in 0..n {
        inst.insert(Atom::new(
            "E",
            vec![
                Term::constant(&format!("v{i}")),
                Term::constant(&format!("v{}", i + 1)),
            ],
        ));
    }
    inst.insert(Atom::new("S", vec![Term::constant(&format!("v{n}"))]));
    Workload {
        name: "chain",
        set,
        inst,
    }
}

fn pair(n: usize) -> Workload {
    let set = ConstraintSet::parse("T(X,Y), S(X), R(Y) -> Q(X,Y)").unwrap();
    let mut inst = Instance::new();
    for i in 0..n {
        inst.insert(Atom::new(
            "T",
            vec![
                Term::constant(&format!("a{}", i % 4)),
                Term::constant(&format!("b{i}")),
            ],
        ));
    }
    for i in 0..4 {
        inst.insert(Atom::new("S", vec![Term::constant(&format!("a{i}"))]));
        inst.insert(Atom::new("R", vec![Term::constant(&format!("b{i}"))]));
    }
    Workload {
        name: "pair",
        set,
        inst,
    }
}

fn count_matches(m: &Matcher, w: &Workload) -> usize {
    let mut n = 0usize;
    m.for_each_body_hom(0, &w.set[0], &w.inst, &mut |_| {
        n += 1;
        false
    });
    n
}

fn workloads() -> Vec<Workload> {
    let n = scaled(512, 96);
    vec![star(n), chain(n), pair(n)]
}

fn print_shape() {
    let mut rows = Vec::new();
    for mut w in workloads() {
        let planned = Matcher::planned(&w.set, &mut w.inst);
        let unplanned = Matcher::unplanned();
        let t0 = std::time::Instant::now();
        let np = count_matches(&planned, &w);
        let dt_p = t0.elapsed();
        let t0 = std::time::Instant::now();
        let nu = count_matches(&unplanned, &w);
        let dt_u = t0.elapsed();
        assert_eq!(np, nu, "planner changed the result set on {}", w.name);
        rows.push(Row::new(
            w.name,
            vec![
                w.inst.len().to_string(),
                np.to_string(),
                format!("{dt_p:.2?}"),
                format!("{dt_u:.2?}"),
                format!("{:.1}x", dt_u.as_secs_f64() / dt_p.as_secs_f64().max(1e-9)),
            ],
        ));
    }
    print_table(
        "Body matching — compiled join programs vs dynamic searcher",
        &[
            "workload",
            "facts",
            "homs",
            "planned",
            "unplanned",
            "speedup",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching_micro");
    g.sample_size(10);
    for mut w in workloads() {
        let planned = Matcher::planned(&w.set, &mut w.inst);
        let unplanned = Matcher::unplanned();
        g.bench_with_input(BenchmarkId::new(w.name, "planned"), &w, |b, w| {
            b.iter(|| count_matches(black_box(&planned), w))
        });
        g.bench_with_input(BenchmarkId::new(w.name, "unplanned"), &w, |b, w| {
            b.iter(|| count_matches(black_box(&unplanned), w))
        });
    }
    g.finish();
}

fn main() {
    print_shape();
    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
