//! Planned execution: run a [`JoinProgram`] against an indexed [`Instance`].
//!
//! The executor keeps variable bindings in a dense *register file* of
//! interned term ids (`Vec<Option<TermId>>` indexed by the plan's register
//! allocation) instead of a hash-map substitution, verifies candidate facts
//! position by position straight out of the columnar store (raw `u32`
//! compares, no atom materialized), and unwinds bindings through an
//! explicit trail. [`chase_core::Term`]s are materialized — an O(1) id
//! round-trip each
//! — only when a complete match builds the [`chase_core::Subst`] the
//! callback needs.
//!
//! Candidate buckets come from the access path the compiler chose:
//! registered composite (multi-column) buckets for steps with ≥ 2 bound
//! positions, else the smallest applicable `(pred, position, id)` bucket,
//! else the per-predicate bucket. Every access path over-approximates the
//! matching facts and the per-position verification filters exactly, so the
//! enumerated homomorphism set is independent of the plan — the equivalence
//! the proptest suite pins against [`chase_core::homomorphism::for_each_hom`].

use crate::plan::{Access, JoinProgram, PatTerm};
use chase_core::homomorphism::Subst;
use chase_core::{Instance, TermId};

/// Mutable search state, separate from the instance so candidate buckets
/// (which borrow the instance) stay valid across recursion.
struct RunState {
    regs: Vec<Option<TermId>>,
    /// Registers bound since entry, for backtracking.
    trail: Vec<u16>,
    /// Scratch buffer for composite keys (reused across nodes).
    key: Vec<TermId>,
    /// The substitution handed to the callback, reused across matches: at a
    /// complete match every register is bound, so overwriting the pattern
    /// variables' bindings in place is equivalent to rebuilding from the
    /// seed — without the per-match clone.
    out: Subst,
}

/// Enumerate every homomorphism of the program's pattern into `inst` that
/// extends `seed`, exactly as [`chase_core::homomorphism::for_each_hom`]
/// would (pattern mode), but in plan order. The callback returns `true` to
/// stop; the function returns `true` iff the callback stopped it.
///
/// Seed bindings for variables the compiler did not assume bound are
/// honored (over-binding narrows the search); seed bindings for variables
/// outside the pattern ride along into the substitutions handed to the
/// callback, which extend the seed like the unplanned searcher's do.
pub fn for_each_match(
    prog: &JoinProgram,
    inst: &Instance,
    seed: &Subst,
    cb: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    let mut st = RunState {
        regs: vec![None; prog.vars.len()],
        trail: Vec::with_capacity(prog.vars.len()),
        key: Vec::new(),
        out: seed.clone(),
    };
    for (r, &v) in prog.vars.iter().enumerate() {
        if let Some(t) = seed.var(v) {
            // A seed binding to a non-ground term (a variable bound to a
            // variable) could never equal a stored fact term; `NEVER` keeps
            // that semantics in id space.
            st.regs[r] = Some(TermId::from_ground(t).unwrap_or(TermId::NEVER));
        }
    }
    step(prog, inst, &mut st, 0, cb)
}

/// Does any homomorphism extending `seed` exist? The planned counterpart of
/// [`chase_core::exists_extension`].
pub fn exists_match(prog: &JoinProgram, inst: &Instance, seed: &Subst) -> bool {
    for_each_match(prog, inst, seed, &mut |_| true)
}

fn step(
    prog: &JoinProgram,
    inst: &Instance,
    st: &mut RunState,
    depth: usize,
    cb: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    let Some(s) = prog.steps.get(depth) else {
        // Complete match: every register is bound (each variable occurs in
        // some matched atom), so overwriting `out`'s bindings in place
        // yields exactly `seed` extended by the current registers. The
        // substitution is only valid for the duration of the callback, like
        // the unplanned searcher's. This is the one place ids become
        // [`chase_core::Term`]s again.
        for (r, &v) in prog.vars.iter().enumerate() {
            let t = st.regs[r].expect("all registers bound at a complete match");
            st.out.bind_var(v, t.term());
        }
        return cb(&st.out);
    };
    // Resolve the step's access path under the current registers. Bound
    // registers are always `Some` by construction (seed or earlier step);
    // the `else` arms below only defend against callers seeding less than
    // the compiler was promised, degrading to a wider bucket.
    let cands: &[u32] = match s.access {
        Access::Composite => {
            st.key.clear();
            let mut complete = true;
            for &(_, pt) in &s.bound {
                match resolve(pt, &st.regs) {
                    Some(t) => st.key.push(t),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            let bucket = if complete {
                inst.composite_candidates_ids(s.pred, s.mask, &st.key)
            } else {
                None
            };
            match bucket {
                Some(b) => b,
                None => positional_bucket(inst, s, &st.regs),
            }
        }
        Access::Positional => positional_bucket(inst, s, &st.regs),
        Access::FullScan => inst.pred_bucket(s.pred),
    };
    'cand: for &ci in cands {
        let fact = inst.fact(ci);
        if fact.arity() != s.terms.len() {
            continue;
        }
        let mark = st.trail.len();
        for (i, &pt) in s.terms.iter().enumerate() {
            let g = fact.term_id(i);
            let ok = match pt {
                PatTerm::Ground(t) => t == g,
                PatTerm::Var(r) => match st.regs[r as usize] {
                    Some(t) => t == g,
                    None => {
                        st.regs[r as usize] = Some(g);
                        st.trail.push(r);
                        true
                    }
                },
            };
            if !ok {
                unwind(st, mark);
                continue 'cand;
            }
        }
        if step(prog, inst, st, depth + 1, cb) {
            unwind(st, mark);
            return true;
        }
        unwind(st, mark);
    }
    false
}

/// The smallest applicable single-position bucket for the step (the same
/// choice [`Instance::candidates`] makes), falling back to the
/// per-predicate bucket when nothing is bound.
fn positional_bucket<'a>(
    inst: &'a Instance,
    s: &crate::plan::PlanStep,
    regs: &[Option<TermId>],
) -> &'a [u32] {
    let mut best: Option<&'a [u32]> = None;
    for &(pos, pt) in &s.bound {
        let Some(t) = resolve(pt, regs) else { continue };
        let bucket = inst.pos_bucket(s.pred, pos as usize, t);
        if best.is_none_or(|b| bucket.len() < b.len()) {
            best = Some(bucket);
        }
        if bucket.is_empty() {
            break;
        }
    }
    best.unwrap_or_else(|| inst.pred_bucket(s.pred))
}

fn resolve(pt: PatTerm, regs: &[Option<TermId>]) -> Option<TermId> {
    match pt {
        PatTerm::Ground(t) => Some(t),
        PatTerm::Var(r) => regs[r as usize],
    }
}

fn unwind(st: &mut RunState, mark: usize) {
    while st.trail.len() > mark {
        let r = st.trail.pop().expect("trail entry");
        st.regs[r as usize] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, NoStats};
    use chase_core::homomorphism::find_all_homs_seeded;
    use chase_core::parser::parse_atom_list;
    use chase_core::{Atom, Sym, Term};

    fn inst(text: &str) -> Instance {
        Instance::parse(text).unwrap()
    }

    fn atoms(text: &str) -> Vec<Atom> {
        parse_atom_list(text).unwrap()
    }

    /// Normalized multiset of all matches, for order-free comparison.
    fn all_matches(prog: &JoinProgram, i: &Instance, seed: &Subst) -> Vec<Vec<(Sym, Term)>> {
        let mut out = Vec::new();
        for_each_match(prog, i, seed, &mut |mu| {
            out.push(mu.var_bindings());
            false
        });
        out.sort();
        out
    }

    fn unplanned(pat: &[Atom], i: &Instance, seed: &Subst) -> Vec<Vec<(Sym, Term)>> {
        let mut out: Vec<Vec<(Sym, Term)>> = find_all_homs_seeded(pat, i, seed)
            .into_iter()
            .map(|mu| mu.var_bindings())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn planned_matches_agree_with_searcher() {
        let i = inst("E(a,b). E(b,c). E(c,d). E(a,c). S(b). S(c). T(a,b,c). T(b,c,d).");
        for pat in [
            "E(X,Y), E(Y,Z)",
            "S(X), E(X,Y), E(Y,Z), S(Z)",
            "T(X,Y,Z), E(X,Y), S(Y)",
            "E(X,X)",
            "E(a,Y)",
            "P(X)", // predicate absent from the instance
        ] {
            let pattern = atoms(pat);
            let prog = compile(&pattern, &[], &i);
            assert_eq!(
                all_matches(&prog, &i, &Subst::new()),
                unplanned(&pattern, &i, &Subst::new()),
                "planned/unplanned disagree on {pat}\n{prog}"
            );
        }
    }

    #[test]
    fn planned_matches_respect_seeds() {
        let i = inst("E(a,b). E(b,c). E(c,d).");
        let pattern = atoms("E(X,Y), E(Y,Z)");
        let seed = Subst::from_vars([(Sym::new("X"), Term::constant("a"))]);
        let prog = compile(&pattern, &[Sym::new("X")], &i);
        assert_eq!(
            all_matches(&prog, &i, &seed),
            unplanned(&pattern, &i, &seed)
        );
        // Over-binding: a variable the compiler assumed free arrives bound.
        let over = Subst::from_vars([
            (Sym::new("X"), Term::constant("a")),
            (Sym::new("Z"), Term::constant("c")),
        ]);
        assert_eq!(
            all_matches(&prog, &i, &over),
            unplanned(&pattern, &i, &over)
        );
        // Seed bindings outside the pattern ride along.
        let extra = Subst::from_vars([(Sym::new("W"), Term::constant("q"))]);
        let homs = all_matches(&prog, &i, &extra);
        assert!(homs
            .iter()
            .all(|b| b.contains(&(Sym::new("W"), Term::constant("q")))));
    }

    #[test]
    fn empty_pattern_yields_exactly_the_seed() {
        let i = inst("E(a,b).");
        let prog = compile(&[], &[], &NoStats);
        let seed = Subst::from_vars([(Sym::new("X"), Term::constant("a"))]);
        assert_eq!(all_matches(&prog, &i, &seed), vec![seed.var_bindings()]);
        assert!(exists_match(&prog, &Instance::new(), &Subst::new()));
    }

    #[test]
    fn composite_path_agrees_with_fallback() {
        // Register the composite index the plan wants and check the planned
        // enumeration still agrees with the unplanned searcher.
        let mut i = Instance::new();
        for k in 0..32 {
            i.insert(Atom::new(
                "T",
                vec![
                    Term::constant(&format!("a{}", k % 4)),
                    Term::constant(&format!("b{}", k % 8)),
                ],
            ));
        }
        for k in 0..4 {
            i.insert(Atom::new("S", vec![Term::constant(&format!("a{k}"))]));
            i.insert(Atom::new("R", vec![Term::constant(&format!("b{k}"))]));
        }
        let pattern = atoms("T(X,Y), S(X), R(Y)");
        let prog = compile(&pattern, &[], &i);
        let without_index = all_matches(&prog, &i, &Subst::new());
        for (pred, mask) in prog.needed_composites().collect::<Vec<_>>() {
            i.register_composite(pred, mask);
        }
        let with_index = all_matches(&prog, &i, &Subst::new());
        assert_eq!(without_index, with_index);
        assert_eq!(with_index, unplanned(&pattern, &i, &Subst::new()));
        assert!(!with_index.is_empty());
    }

    #[test]
    fn rigid_nulls_only_match_themselves() {
        let i = inst("E(a,_n0). E(a,b).");
        let pattern = vec![Atom::new("E", vec![Term::constant("a"), Term::null(0)])];
        let prog = compile(&pattern, &[], &i);
        assert_eq!(all_matches(&prog, &i, &Subst::new()).len(), 1);
        let missing = vec![Atom::new("E", vec![Term::constant("a"), Term::null(7)])];
        let prog = compile(&missing, &[], &i);
        assert!(!exists_match(&prog, &i, &Subst::new()));
    }

    #[test]
    fn callback_stop_propagates() {
        let i = inst("S(a). S(b). S(c).");
        let pattern = atoms("S(X)");
        let prog = compile(&pattern, &[], &i);
        let mut n = 0;
        let stopped = for_each_match(&prog, &i, &Subst::new(), &mut |_| {
            n += 1;
            n == 2
        });
        assert!(stopped);
        assert_eq!(n, 2);
    }
}
