//! The [`Matcher`]: per-constraint plan cache with stats-epoch invalidation.
//!
//! A matcher is bound to one [`ConstraintSet`] and caches, per constraint
//! id:
//!
//! * the **full-body** program (pool rebuilds, naive re-enumeration),
//! * one **delta-body** program per body slot (the slot's atom pinned to a
//!   delta fact, its variables seeding the rest of the body — the
//!   semi-naive re-matching path),
//! * the **head** program for TGDs (the `exists_extension` activity check,
//!   universal variables seeded),
//! * one **head-rest** program per head slot (delta-seeded revalidation:
//!   the slot's atom unified with a delta fact, the rest completed).
//!
//! Plans are recompiled when the instance's [`Instance::stats_epoch`]
//! changes (each doubling — or merge-driven halving — of the fact count)
//! or when the matcher is handed a different constraint set; recompilation
//! also registers the composite indexes the new plans want. Merges are
//! *not* a recompile trigger on their own: the store maintains its
//! cardinality and distinct-count statistics incrementally through
//! [`Instance::merge_terms`], so a merge that leaves the stats epoch alone
//! leaves the plans exactly as good as they were.
//! Between refreshes the matcher is plain read-only data (`Sync`), so the
//! parallel engine's shard functions query it concurrently.
//!
//! An **unplanned** matcher ([`Matcher::unplanned`]) answers every query
//! through the classic backtracking searcher instead — the planner-off
//! reference the equivalence tests pin traces against. Either way the same
//! homomorphism sets come back; only enumeration order and cost differ, and
//! the engines' canonical (normalized-key) trigger selection makes traces
//! independent of enumeration order.

use crate::exec::{exists_match, for_each_match};
use crate::plan::{compile, JoinProgram};
use chase_core::homomorphism::{exists_extension, for_each_hom, unify_atom, Subst};
use chase_core::{Atom, Constraint, ConstraintSet, Instance, Sym};
use chase_obs::{EventKind, Phase, Recorder};

/// Compiled programs for one constraint.
#[derive(Debug, Clone)]
pub struct ConstraintPlans {
    /// Full-body enumeration.
    pub body: JoinProgram,
    /// Per body slot `j`: the body without atom `j`, atom `j`'s variables
    /// seeded.
    pub body_delta: Vec<JoinProgram>,
    /// TGD head, universal variables seeded (`None` for EGDs).
    pub head: Option<JoinProgram>,
    /// Per head slot `j`: the head without atom `j`, universals plus atom
    /// `j`'s variables seeded.
    pub head_rests: Vec<JoinProgram>,
}

fn without(atoms: &[Atom], j: usize) -> Vec<Atom> {
    atoms
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != j)
        .map(|(_, a)| a.clone())
        .collect()
}

fn compile_constraint(c: &Constraint, stats: &Instance) -> ConstraintPlans {
    let body = c.body();
    let body_plan = compile(body, &[], stats);
    let body_delta = (0..body.len())
        .map(|j| compile(&without(body, j), &body[j].vars(), stats))
        .collect();
    let (head, head_rests) = match c {
        Constraint::Tgd(t) => {
            let universals = t.universals();
            let head_plan = compile(t.head(), universals, stats);
            let rests = (0..t.head().len())
                .map(|j| {
                    let mut seed: Vec<Sym> = universals.to_vec();
                    for v in t.head()[j].vars() {
                        if !seed.contains(&v) {
                            seed.push(v);
                        }
                    }
                    compile(&without(t.head(), j), &seed, stats)
                })
                .collect();
            (Some(head_plan), rests)
        }
        Constraint::Egd(_) => (None, Vec::new()),
    };
    ConstraintPlans {
        body: body_plan,
        body_delta,
        head,
        head_rests,
    }
}

/// A planner-on cache: the compiled programs plus everything needed to
/// decide staleness — the set they were compiled from and the instance
/// statistics stamp at compile time.
#[derive(Debug, Clone)]
struct PlanCache {
    /// The constraint set the plans belong to; compared on refresh so a
    /// matcher handed a different set recompiles instead of silently
    /// executing the wrong programs.
    set: ConstraintSet,
    plans: Vec<ConstraintPlans>,
    /// [`Instance::stats_epoch`] at compile time; `None` forces a
    /// recompile at the next [`Matcher::refresh`].
    stamp: Option<u32>,
    /// How many times the cache has recompiled — the observable behind the
    /// serving layer's "plan caches are reused across update epochs" pin
    /// ([`Matcher::recompile_count`]).
    recompiles: u64,
}

/// The matching engine handle threaded through trigger enumeration: either
/// a plan cache (planner on) or a marker that routes every query through
/// the unplanned backtracking searcher (planner off).
#[derive(Debug, Clone)]
pub struct Matcher {
    /// `None` = unplanned.
    cache: Option<PlanCache>,
    /// Telemetry sink for plan-compile timings and recompile events;
    /// write-only (never consulted by planning), so it cannot perturb plan
    /// choice or enumeration order. Disabled by default.
    recorder: Recorder,
}

// Shared read-only across the parallel engine's matcher threads between
// refreshes, like the instance and constraint set.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Matcher>();
};

impl Matcher {
    /// A planner-off matcher: every query runs the classic searcher.
    pub fn unplanned() -> Matcher {
        Matcher {
            cache: None,
            recorder: Recorder::disabled(),
        }
    }

    /// A planner-on matcher for `set`, compiled against `inst`'s current
    /// statistics (and registering the composite indexes the plans want).
    pub fn planned(set: &ConstraintSet, inst: &mut Instance) -> Matcher {
        Matcher::planned_with(set, inst, Recorder::disabled())
    }

    /// [`Matcher::planned`], with a telemetry recorder installed before the
    /// initial compile so the first `PlanCompile` phase is captured too.
    pub fn planned_with(set: &ConstraintSet, inst: &mut Instance, recorder: Recorder) -> Matcher {
        let mut m = Matcher {
            cache: Some(PlanCache {
                set: set.clone(),
                plans: Vec::new(),
                stamp: None,
                recompiles: 0,
            }),
            recorder,
        };
        m.refresh(set, inst);
        m
    }

    /// Install a telemetry recorder (timing of future plan compiles).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Is the planner on?
    pub fn is_planned(&self) -> bool {
        self.cache.is_some()
    }

    /// The compiled plans for constraint `ci`, if the planner is on (for
    /// `EXPLAIN` dumps and tests).
    pub fn plans(&self, ci: usize) -> Option<&ConstraintPlans> {
        self.cache.as_ref().map(|c| &c.plans[ci])
    }

    /// How many times the plan cache has recompiled (0 for unplanned
    /// matchers). A stable count across calls that *could* have recompiled
    /// — e.g. update batches that only duplicate existing facts — is the
    /// observable the serving layer's plan-cache-reuse tests pin.
    pub fn recompile_count(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.recompiles)
    }

    /// Force recompilation at the next [`Matcher::refresh`].
    pub fn invalidate(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.stamp = None;
        }
    }

    /// Recompile the plans if they are stale — the instance's statistics
    /// epoch moved (a fact-count doubling, or a merge collapsing the count
    /// past a power of two), the constraint set differs from the one
    /// compiled for, or [`Matcher::invalidate`] was called. Merges alone
    /// don't invalidate: the store keeps its statistics current through
    /// [`Instance::merge_terms`], so [`Instance::merge_epoch`] is an
    /// observability counter here, not a staleness input. Registers any
    /// composite indexes the fresh plans want. Returns `true` if a
    /// recompile happened. No-op for unplanned matchers.
    ///
    /// Stale plans compiled from the *same* set are never incorrect — the
    /// executor re-verifies every candidate — so skipping refresh only
    /// costs speed. A changed set, however, would execute the wrong
    /// programs, which is why refresh compares it.
    pub fn refresh(&mut self, set: &ConstraintSet, inst: &mut Instance) -> bool {
        let Some(cache) = &mut self.cache else {
            return false;
        };
        let stamp = inst.stats_epoch();
        // The structural set comparison runs on every call, including the
        // per-step fast path — deliberately: a same-length different set
        // with an unchanged stamp would otherwise keep executing the wrong
        // programs, and constraint sets are at most dozens of small atoms
        // (`Vec` equality length-checks first), which is noise next to one
        // chase step's matching work.
        if cache.stamp == Some(stamp) && cache.set == *set {
            return false;
        }
        if cache.set != *set {
            cache.set = set.clone();
        }
        let _t = self.recorder.phase(Phase::PlanCompile);
        cache.plans = set.iter().map(|c| compile_constraint(c, inst)).collect();
        cache.recompiles += 1;
        self.recorder
            .event(EventKind::PlanRecompile, cache.recompiles, u64::from(stamp));
        for cp in &cache.plans {
            let programs = std::iter::once(&cp.body)
                .chain(&cp.body_delta)
                .chain(&cp.head)
                .chain(&cp.head_rests);
            for prog in programs {
                for (pred, mask) in prog.needed_composites() {
                    inst.register_composite(pred, mask);
                }
            }
        }
        cache.stamp = Some(stamp);
        true
    }

    /// Enumerate every body homomorphism of constraint `ci` extending the
    /// empty substitution. Same set as
    /// [`for_each_hom`]`(c.body(), inst, ..)`; order is plan-dependent.
    pub fn for_each_body_hom(
        &self,
        ci: usize,
        c: &Constraint,
        inst: &Instance,
        cb: &mut dyn FnMut(&Subst) -> bool,
    ) -> bool {
        match &self.cache {
            Some(cache) => for_each_match(&cache.plans[ci].body, inst, &Subst::new(), cb),
            None => for_each_hom(c.body(), inst, &Subst::new(), false, cb),
        }
    }

    /// Semi-naive delta enumeration for constraint `ci`: every body
    /// homomorphism mapping at least one body atom onto an atom of `delta`
    /// (a subset of `inst`), reported once per delta atom it uses — the
    /// same contract as `chase_engine::trigger::for_each_delta_match`.
    pub fn for_each_delta_match(
        &self,
        ci: usize,
        c: &Constraint,
        inst: &Instance,
        delta: &[Atom],
        cb: &mut dyn FnMut(&Subst) -> bool,
    ) -> bool {
        let body = c.body();
        match &self.cache {
            Some(cache) => {
                for (j, pattern) in body.iter().enumerate() {
                    for a in delta {
                        let Some(mu0) = unify_atom(pattern, a, &Subst::new()) else {
                            continue;
                        };
                        if for_each_match(&cache.plans[ci].body_delta[j], inst, &mu0, cb) {
                            return true;
                        }
                    }
                }
                false
            }
            None => {
                for (j, pattern) in body.iter().enumerate() {
                    let mut rest: Vec<Atom> = Vec::new();
                    let mut have_rest = false;
                    for a in delta {
                        let Some(mu0) = unify_atom(pattern, a, &Subst::new()) else {
                            continue;
                        };
                        if !have_rest {
                            rest = without(body, j);
                            have_rest = true;
                        }
                        if for_each_hom(&rest, inst, &mu0, false, cb) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Can the TGD head of constraint `ci` be satisfied under `mu` — the
    /// `exists_extension` activity check.
    ///
    /// # Panics
    /// Planner on: panics if `ci` is not a TGD (EGDs have no head plan).
    pub fn head_satisfiable(&self, ci: usize, head: &[Atom], inst: &Instance, mu: &Subst) -> bool {
        match &self.cache {
            Some(cache) => exists_match(
                cache.plans[ci].head.as_ref().expect("head plan for a TGD"),
                inst,
                mu,
            ),
            None => exists_extension(head, inst, mu),
        }
    }

    /// Is `(ci, µ)` an active (standard-chase) trigger? Assumes `µ` maps the
    /// body into `inst` — the matcher-aware form of
    /// `chase_engine::trigger::is_active`.
    pub fn is_active(&self, ci: usize, c: &Constraint, inst: &Instance, mu: &Subst) -> bool {
        match c {
            Constraint::Tgd(t) => !self.head_satisfiable(ci, t.head(), inst, mu),
            Constraint::Egd(e) => mu.var(e.left()) != mu.var(e.right()),
        }
    }

    /// Did adding `added` (already inserted into `inst`) newly satisfy the
    /// TGD head of `ci` under the pooled trigger `mu`? Matcher-aware form of
    /// `chase_engine::trigger::head_newly_satisfied` — `rests[j]` is the
    /// head with atom `j` removed and is only consulted on the unplanned
    /// path (the planned path has its own per-slot programs).
    pub fn head_newly_satisfied(
        &self,
        ci: usize,
        head: &[Atom],
        rests: &[Vec<Atom>],
        inst: &Instance,
        added: &[Atom],
        mu: &Subst,
    ) -> bool {
        head.iter().enumerate().any(|(j, h)| {
            let h_inst = mu.apply_atom(h);
            added.iter().any(|a| {
                let Some(nu0) = unify_atom(&h_inst, a, &Subst::new()) else {
                    return false;
                };
                let mut seed = mu.clone();
                for (v, term) in nu0.var_bindings() {
                    seed.bind_var(v, term);
                }
                match &self.cache {
                    Some(cache) => exists_match(&cache.plans[ci].head_rests[j], inst, &seed),
                    None => exists_extension(&rests[j], inst, &seed),
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::homomorphism::find_all_homs;
    use chase_core::Term;

    fn sorted_bindings(homs: Vec<Subst>) -> Vec<Vec<(Sym, Term)>> {
        let mut v: Vec<Vec<(Sym, Term)>> = homs.into_iter().map(|m| m.var_bindings()).collect();
        v.sort();
        v
    }

    #[test]
    fn planned_and_unplanned_matchers_agree() {
        let set = ConstraintSet::parse(
            "E(X,Y), E(Y,Z) -> E(X,Z)\n\
             S(X), E(X,Y) -> E(Y,X)\n\
             E(X,Y), E(X,Z) -> Y = Z",
        )
        .unwrap();
        let mut inst = Instance::parse("E(a,b). E(b,c). E(c,d). E(a,c). S(a). S(c).").unwrap();
        let planned = Matcher::planned(&set, &mut inst);
        let unplanned = Matcher::unplanned();
        for (ci, c) in set.enumerate() {
            let mut a = Vec::new();
            planned.for_each_body_hom(ci, c, &inst, &mut |mu| {
                a.push(mu.clone());
                false
            });
            let mut b = Vec::new();
            unplanned.for_each_body_hom(ci, c, &inst, &mut |mu| {
                b.push(mu.clone());
                false
            });
            assert_eq!(
                sorted_bindings(a.clone()),
                sorted_bindings(b),
                "body homs differ on constraint {ci}"
            );
            assert_eq!(
                sorted_bindings(a),
                sorted_bindings(find_all_homs(c.body(), &inst)),
                "planned matcher diverges from find_all_homs on {ci}"
            );
            // Activity agrees hom by hom.
            for mu in find_all_homs(c.body(), &inst) {
                assert_eq!(
                    planned.is_active(ci, c, &inst, &mu),
                    unplanned.is_active(ci, c, &inst, &mu)
                );
            }
        }
    }

    #[test]
    fn delta_matching_agrees_and_counts_multiplicity() {
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let mut inst = Instance::parse("E(a,b). E(b,c). E(c,d).").unwrap();
        let delta = vec![Atom::new(
            "E",
            vec![Term::constant("b"), Term::constant("c")],
        )];
        let planned = Matcher::planned(&set, &mut inst);
        let unplanned = Matcher::unplanned();
        let collect = |m: &Matcher| {
            let mut out = Vec::new();
            m.for_each_delta_match(0, &set[0], &inst, &delta, &mut |mu| {
                out.push(mu.clone());
                false
            });
            sorted_bindings(out)
        };
        let a = collect(&planned);
        let b = collect(&unplanned);
        assert_eq!(a, b);
        // E(b,c) seeds both slots: (a,b,c) via slot 1 and (b,c,d) via slot 0.
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn refresh_recompiles_on_staleness_only() {
        let set = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
        let mut inst = Instance::parse("E(a,b). E(b,c).").unwrap();
        let mut m = Matcher::planned(&set, &mut inst);
        assert_eq!(m.recompile_count(), 1, "planned() compiles once");
        assert!(!m.refresh(&set, &mut inst), "same stamp: no recompile");
        assert_eq!(m.recompile_count(), 1);
        inst.insert(Atom::new(
            "E",
            vec![Term::constant("c"), Term::constant("d")],
        ));
        inst.insert(Atom::new(
            "E",
            vec![Term::constant("d"), Term::constant("e")],
        ));
        assert!(m.refresh(&set, &mut inst), "len doubled: epoch moved");
        // A merge that keeps the fact count inside the same epoch does NOT
        // recompile — the store's statistics are maintained incrementally,
        // so the compiled plans are as good as they were.
        inst.insert(Atom::new("E", vec![Term::constant("d"), Term::null(0)]));
        m.refresh(&set, &mut inst);
        let before = m.recompile_count();
        let eff = inst.merge_terms(Term::null(0), Term::constant("e"));
        assert_eq!(eff.collapsed, 1, "E(d,_n0) collapses onto E(d,e)");
        assert!(
            !m.refresh(&set, &mut inst),
            "same-epoch merge: no recompile"
        );
        assert_eq!(m.recompile_count(), before);
        m.invalidate();
        assert!(m.refresh(&set, &mut inst), "invalidate forces recompile");
        assert_eq!(m.recompile_count(), before + 1, "one count per recompile");
        assert!(!Matcher::unplanned().refresh(&set, &mut inst));
        assert_eq!(Matcher::unplanned().recompile_count(), 0);
    }

    #[test]
    fn no_occurrence_merge_is_invisible_to_plans() {
        // Satellite regression: merging away a term that occurs in no fact
        // must be a true no-op — no merge-epoch bump, no recompile.
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let mut inst = Instance::parse("E(a,b). E(b,c).").unwrap();
        let mut m = Matcher::planned(&set, &mut inst);
        let before = m.recompile_count();
        let epoch = inst.merge_epoch();
        let eff = inst.merge_terms(Term::null(7), Term::constant("b"));
        assert!(eff.is_noop());
        assert_eq!(inst.merge_epoch(), epoch, "no-op merge leaves merge_epoch");
        assert!(
            !m.refresh(&set, &mut inst),
            "no-op merge: nothing to refresh"
        );
        assert_eq!(m.recompile_count(), before);
    }

    #[test]
    fn refresh_recompiles_for_a_different_set() {
        // Same length, different constraints: the cache must not keep the
        // old programs.
        let set_a = ConstraintSet::parse("E(X,Y) -> E(Y,X)").unwrap();
        let set_b = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
        let mut inst = Instance::parse("E(a,b). S(a). S(b).").unwrap();
        let mut m = Matcher::planned(&set_a, &mut inst);
        assert!(m.refresh(&set_b, &mut inst), "set change forces recompile");
        let mut homs = Vec::new();
        m.for_each_body_hom(0, &set_b[0], &inst, &mut |mu| {
            homs.push(mu.var_bindings());
            false
        });
        homs.sort();
        assert_eq!(homs.len(), 2, "S(X) matches S(a), S(b)");
        assert!(!m.refresh(&set_b, &mut inst), "now in sync with set_b");
    }

    #[test]
    fn head_revalidation_matches_activity_flip() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y), T(Y)").unwrap();
        let c = &set[0];
        let t = c.as_tgd().unwrap();
        let mut inst = Instance::parse("S(a). S(b).").unwrap();
        let planned = Matcher::planned(&set, &mut inst);
        let mut mus = Vec::new();
        planned.for_each_body_hom(0, c, &inst, &mut |mu| {
            mus.push(mu.clone());
            false
        });
        assert_eq!(mus.len(), 2);
        let rests: Vec<Vec<Atom>> = (0..t.head().len()).map(|j| without(t.head(), j)).collect();
        let added = vec![
            Atom::new("E", vec![Term::constant("a"), Term::constant("b")]),
            Atom::new("T", vec![Term::constant("b")]),
        ];
        for a in &added {
            inst.insert(a.clone());
        }
        for mu in &mus {
            let newly = planned.head_newly_satisfied(0, t.head(), &rests, &inst, &added, mu);
            assert_eq!(
                newly,
                !planned.is_active(0, c, &inst, mu),
                "revalidation and activity disagree for {mu}"
            );
            assert_eq!(
                newly,
                Matcher::unplanned().head_newly_satisfied(0, t.head(), &rests, &inst, &added, mu)
            );
        }
    }
}
