//! Join-plan compilation: a constraint body (or TGD head) becomes a
//! [`JoinProgram`] — a fixed atom order with per-step binding masks and
//! access-path choices, picked once per statistics epoch instead of at every
//! search node.
//!
//! The ordering heuristic is greedy *bind-first / smallest-relation-first*:
//! at each step the atom with the smallest estimated candidate count is
//! appended, where the estimate divides the predicate's cardinality by the
//! distinct-value count of every already-bound position (independence
//! assumption, the textbook join heuristic "Stop the Chase" points at).
//! Ties prefer the atom with more bound positions, then the smaller pattern
//! index, so compilation is deterministic.
//!
//! Compilation never affects *which* homomorphisms are enumerated — only the
//! order atoms are expanded in and the index buckets scanned. The executor
//! ([`crate::exec`]) re-verifies every candidate fact position by position.

use chase_core::{Atom, Instance, Sym, Term, TermId};
use std::fmt;

/// Statistics source for plan compilation.
///
/// Implemented by [`Instance`] (live, incrementally maintained counters) and
/// by [`NoStats`] (compile with no data — pure bind-first ordering).
pub trait Stats {
    /// `|R|`: number of facts with predicate `pred`.
    fn rows(&self, pred: Sym) -> usize;
    /// Number of distinct terms at `(pred, pos)`.
    fn distinct(&self, pred: Sym, pos: usize) -> usize;
}

impl Stats for Instance {
    fn rows(&self, pred: Sym) -> usize {
        self.pred_cardinality(pred)
    }

    fn distinct(&self, pred: Sym, pos: usize) -> usize {
        self.distinct_at(pred, pos)
    }
}

/// The "no statistics" source: every relation looks empty, so ordering
/// degenerates to bind-first with pattern order as the tie-break.
pub struct NoStats;

impl Stats for NoStats {
    fn rows(&self, _pred: Sym) -> usize {
        0
    }

    fn distinct(&self, _pred: Sym, _pos: usize) -> usize {
        0
    }
}

/// One compiled argument slot of a pattern atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatTerm {
    /// A ground term (constant — or a rigid labeled null, which in pattern
    /// mode only matches itself), pre-interned at compile time so the
    /// executor compares raw ids against the columnar store.
    Ground(TermId),
    /// A variable, resolved to a register index.
    Var(u16),
}

/// The access path a step scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// All facts of the predicate.
    FullScan,
    /// The smallest applicable `(pred, position, term)` bucket over the
    /// step's bound positions.
    Positional,
    /// The registered composite (multi-column) bucket for the step's binding
    /// mask — an exact secondary-index lookup.
    Composite,
}

/// One step of a [`JoinProgram`]: match the compiled atom against the
/// candidate bucket selected by its binding mask.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Index of this atom in the original pattern slice.
    pub pattern_index: usize,
    /// The atom's predicate.
    pub pred: Sym,
    /// Compiled argument slots.
    pub terms: Vec<PatTerm>,
    /// Positions whose value is determined when the step starts (ground, or
    /// a register bound by the seed or an earlier step), ascending.
    pub bound: Vec<(u32, PatTerm)>,
    /// Bitmask over `bound` positions (< 32 only) — the composite-index key.
    pub mask: u32,
    /// The access path chosen at compile time.
    pub access: Access,
    /// Estimated candidate rows at compile time (`EXPLAIN` output; never
    /// consulted at run time).
    pub est_rows: f64,
}

/// A compiled join program: pattern atoms in execution order plus the
/// register file layout. Plain data — shared read-only across matcher
/// threads.
#[derive(Debug, Clone)]
pub struct JoinProgram {
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
    /// Register → variable symbol (registers are dense, in seed-first then
    /// first-occurrence order).
    pub vars: Vec<Sym>,
    /// Registers the compiler assumed bound at entry (the seed variables
    /// that occur in the pattern).
    pub seed_regs: Vec<u16>,
    /// Number of atoms in the original pattern.
    pub pattern_len: usize,
}

impl JoinProgram {
    /// The `(pred, mask)` composite indexes this program's steps expect;
    /// callers register them on the instance before execution (a composite
    /// lookup on an unregistered mask falls back to the positional index,
    /// so missing registration costs speed, never correctness).
    pub fn needed_composites(&self) -> impl Iterator<Item = (Sym, u32)> + '_ {
        self.steps
            .iter()
            .filter(|s| s.access == Access::Composite)
            .map(|s| (s.pred, s.mask))
    }

    /// The register holding variable `v`, if `v` occurs in the pattern.
    pub fn reg_of(&self, v: Sym) -> Option<u16> {
        self.vars.iter().position(|&u| u == v).map(|i| i as u16)
    }
}

/// Compile `pattern` into a [`JoinProgram`], treating `seed_vars` as bound
/// at entry (they arrive through the seed substitution at execution time).
///
/// The pattern may contain constants, variables and labeled nulls (rigid, as
/// in the searcher's pattern mode). An empty pattern compiles to a program
/// with no steps, which enumerates exactly the seed substitution.
pub fn compile(pattern: &[Atom], seed_vars: &[Sym], stats: &dyn Stats) -> JoinProgram {
    // Register allocation: seed variables that occur in the pattern first,
    // then the rest in first-occurrence order.
    let mut vars: Vec<Sym> = Vec::new();
    let occurs = |v: Sym| pattern.iter().any(|a| a.terms().contains(&Term::Var(v)));
    for &v in seed_vars {
        if occurs(v) && !vars.contains(&v) {
            vars.push(v);
        }
    }
    let seed_count = vars.len();
    for a in pattern {
        for v in a.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    assert!(
        vars.len() <= u16::MAX as usize,
        "pattern has too many variables"
    );
    let reg = |v: Sym| vars.iter().position(|&u| u == v).expect("var allocated") as u16;

    let compiled: Vec<Vec<PatTerm>> = pattern
        .iter()
        .map(|a| {
            a.terms()
                .iter()
                .map(|&t| match t {
                    Term::Var(v) => PatTerm::Var(reg(v)),
                    ground => PatTerm::Ground(
                        TermId::from_ground(ground).expect("non-variable pattern term interns"),
                    ),
                })
                .collect()
        })
        .collect();

    let mut bound_regs: Vec<bool> = vec![false; vars.len()];
    bound_regs[..seed_count].fill(true);
    let mut remaining: Vec<usize> = (0..pattern.len()).collect();
    let mut steps = Vec::with_capacity(pattern.len());
    while !remaining.is_empty() {
        // Greedy pick: smallest estimated candidate count; more bound
        // positions, then smaller pattern index on ties.
        let mut best_slot = 0usize;
        let mut best_est = f64::INFINITY;
        let mut best_bound = 0usize;
        for (slot, &ai) in remaining.iter().enumerate() {
            let (est, nbound) = estimate(pattern[ai].pred(), &compiled[ai], &bound_regs, stats);
            let better = est < best_est || (est == best_est && nbound > best_bound);
            if better {
                best_slot = slot;
                best_est = est;
                best_bound = nbound;
            }
        }
        let ai = remaining.remove(best_slot);
        let terms = compiled[ai].clone();
        let mut bound: Vec<(u32, PatTerm)> = Vec::new();
        let mut mask = 0u32;
        for (i, &pt) in terms.iter().enumerate() {
            let determined = match pt {
                PatTerm::Ground(_) => true,
                PatTerm::Var(r) => bound_regs[r as usize],
            };
            if determined {
                bound.push((i as u32, pt));
                if i < 32 {
                    mask |= 1 << i;
                }
            }
        }
        let access = if bound.len() >= 2 && bound.len() == mask.count_ones() as usize {
            Access::Composite
        } else if !bound.is_empty() {
            Access::Positional
        } else {
            Access::FullScan
        };
        for &pt in &terms {
            if let PatTerm::Var(r) = pt {
                bound_regs[r as usize] = true;
            }
        }
        steps.push(PlanStep {
            pattern_index: ai,
            pred: pattern[ai].pred(),
            terms,
            bound,
            mask,
            access,
            est_rows: best_est,
        });
    }
    JoinProgram {
        steps,
        vars,
        seed_regs: (0..seed_count as u16).collect(),
        pattern_len: pattern.len(),
    }
}

/// Candidate estimate for matching `terms` with the current bound-register
/// set: `rows / Π distinct(bound position)`, floored at one row unless the
/// relation is empty. Returns the estimate and the bound-position count.
fn estimate(pred: Sym, terms: &[PatTerm], bound_regs: &[bool], stats: &dyn Stats) -> (f64, usize) {
    let rows = stats.rows(pred);
    let mut est = rows as f64;
    let mut nbound = 0usize;
    for (i, &pt) in terms.iter().enumerate() {
        let determined = match pt {
            PatTerm::Ground(_) => true,
            PatTerm::Var(r) => bound_regs[r as usize],
        };
        if determined {
            nbound += 1;
            est /= stats.distinct(pred, i).max(1) as f64;
        }
    }
    if rows > 0 {
        est = est.max(1.0);
    }
    (est, nbound)
}

impl fmt::Display for JoinProgram {
    /// `EXPLAIN`-style dump: one line per step with the atom, the access
    /// path, and the compile-time row estimate.
    ///
    /// ```text
    /// JoinProgram (3 steps, 3 vars):
    ///   1. T(X1,X2)  scan T                 est 4
    ///   2. T(X1,X3)  idx T[0]               est 2
    ///   3. T(X3,X1)  cidx T{0,1}            est 1
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "JoinProgram ({} steps, {} vars):",
            self.steps.len(),
            self.vars.len()
        )?;
        for (k, s) in self.steps.iter().enumerate() {
            let mut atom = format!("{}(", s.pred);
            for (i, pt) in s.terms.iter().enumerate() {
                if i > 0 {
                    atom.push(',');
                }
                match pt {
                    PatTerm::Ground(t) => atom.push_str(&t.to_string()),
                    PatTerm::Var(r) => atom.push_str(self.vars[*r as usize].as_str()),
                }
            }
            atom.push(')');
            let access = match s.access {
                Access::FullScan => format!("scan {}", s.pred),
                Access::Positional => {
                    let cols: Vec<String> = s.bound.iter().map(|(p, _)| p.to_string()).collect();
                    format!("idx {}[{}]", s.pred, cols.join(","))
                }
                Access::Composite => {
                    let cols: Vec<String> = s.bound.iter().map(|(p, _)| p.to_string()).collect();
                    format!("cidx {}{{{}}}", s.pred, cols.join(","))
                }
            };
            writeln!(
                f,
                "  {}. {:<24} {:<24} est {}",
                k + 1,
                atom,
                access,
                s.est_rows
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_atom_list;
    use chase_core::Instance;

    fn atoms(text: &str) -> Vec<Atom> {
        parse_atom_list(text).unwrap()
    }

    #[test]
    fn selective_atom_is_ordered_first() {
        // Many E-facts, few S-facts: the plan must start at S even though it
        // is written last.
        let mut inst = Instance::new();
        for i in 0..64 {
            inst.insert(Atom::new(
                "E",
                vec![
                    Term::constant(&format!("v{i}")),
                    Term::constant(&format!("v{}", i + 1)),
                ],
            ));
        }
        inst.insert(Atom::new("S", vec![Term::constant("v0")]));
        let pat = atoms("E(X,Y), E(Y,Z), S(X)");
        let prog = compile(&pat, &[], &inst);
        assert_eq!(prog.steps[0].pattern_index, 2, "S(X) first:\n{prog}");
        // After S binds X, E(X,Y) is index-assisted; then E(Y,Z).
        assert_eq!(prog.steps[1].pattern_index, 0);
        assert_eq!(prog.steps[1].access, Access::Positional);
        assert_eq!(prog.steps[2].pattern_index, 1);
    }

    #[test]
    fn two_bound_columns_choose_the_composite_path() {
        // T is big with a low-selectivity first column, S and R are small:
        // the greedy order is S, R, T — and by then T has both columns
        // bound, so the composite path wins over any single bucket.
        let mut inst = Instance::new();
        for i in 0..64 {
            inst.insert(Atom::new(
                "T",
                vec![
                    Term::constant(&format!("a{}", i % 4)),
                    Term::constant(&format!("b{i}")),
                ],
            ));
        }
        for i in 0..4 {
            inst.insert(Atom::new("S", vec![Term::constant(&format!("a{i}"))]));
            inst.insert(Atom::new("R", vec![Term::constant(&format!("b{i}"))]));
        }
        let pat = atoms("T(X,Y), S(X), R(Y)");
        let prog = compile(&pat, &[], &inst);
        let t_step = prog
            .steps
            .iter()
            .find(|s| s.pattern_index == 0)
            .expect("T step present");
        assert_eq!(t_step.access, Access::Composite, "{prog}");
        assert_eq!(t_step.mask, 0b11);
        let needed: Vec<(Sym, u32)> = prog.needed_composites().collect();
        assert_eq!(needed, vec![(Sym::new("T"), 0b11)]);
    }

    #[test]
    fn seed_vars_count_as_bound() {
        let inst = Instance::new();
        let pat = atoms("E(X,Y), S(Y)");
        let unseeded = compile(&pat, &[], &NoStats);
        assert_eq!(unseeded.seed_regs.len(), 0);
        let seeded = compile(&pat, &[Sym::new("X")], &NoStats);
        assert_eq!(seeded.seed_regs, vec![0]);
        assert_eq!(seeded.vars[0], Sym::new("X"));
        // With X seeded, E(X,Y)'s first column is bound at entry.
        let e_step = seeded.steps.iter().find(|s| s.pattern_index == 0).unwrap();
        assert_eq!(e_step.bound.len(), 1);
        assert_eq!(e_step.mask, 0b01);
        // Seed variables that do not occur in the pattern get no register.
        let extra = compile(&pat, &[Sym::new("Z"), Sym::new("X")], &inst);
        assert_eq!(extra.seed_regs.len(), 1);
        assert!(extra.reg_of(Sym::new("Z")).is_none());
    }

    #[test]
    fn constants_bind_without_stats() {
        let pat = atoms("E(a,Y), E(Y,Z)");
        let prog = compile(&pat, &[], &NoStats);
        // Both atoms estimate 0 rows (no stats); bind-first prefers the
        // constant-bound atom.
        assert_eq!(prog.steps[0].pattern_index, 0);
        assert_eq!(prog.steps[0].access, Access::Positional);
        assert!(matches!(
            prog.steps[0].bound.as_slice(),
            [(0, PatTerm::Ground(_))]
        ));
    }

    #[test]
    fn empty_pattern_compiles_to_no_steps() {
        let prog = compile(&[], &[], &NoStats);
        assert!(prog.steps.is_empty());
        assert_eq!(prog.pattern_len, 0);
    }

    #[test]
    fn explain_dump_is_stable() {
        let mut inst = Instance::new();
        inst.insert(Atom::new("S", vec![Term::constant("a")]));
        for c in ["a", "b", "c"] {
            inst.insert(Atom::new("E", vec![Term::constant(c), Term::constant("x")]));
        }
        let pat = atoms("E(X,Y), S(X)");
        let prog = compile(&pat, &[], &inst);
        let dump = prog.to_string();
        assert!(dump.starts_with("JoinProgram (2 steps, 2 vars):"), "{dump}");
        assert!(dump.contains("S(X)"), "{dump}");
        assert!(dump.contains("idx E[0]"), "{dump}");
    }
}
