#![warn(missing_docs)]

//! # chase-plan
//!
//! Cost-guided join-plan compilation for chase trigger enumeration.
//!
//! Every chase engine in this workspace bottoms out in body-homomorphism
//! search — *Stop the Chase* (Meier, Schmidt, Lausen) frames chase cost as
//! exactly this join-evaluation problem. The classic searcher re-derives an
//! atom order at every search node; this crate compiles each constraint
//! body (and TGD head) **once per statistics epoch** into a
//! [`JoinProgram`]:
//!
//! * a greedy *bind-first / smallest-relation-first* atom order driven by
//!   per-predicate cardinalities and per-position distinct-value counts
//!   harvested from the [`chase_core::Instance`] ([`plan`]),
//! * precomputed binding masks and access paths per step — registered
//!   composite (multi-column) hash indexes when two or more positions are
//!   bound, the positional index otherwise ([`exec`]),
//! * a register-file executor that never clones candidate facts and only
//!   materializes a [`chase_core::Subst`] at complete matches.
//!
//! The [`Matcher`] bundles the compiled programs per constraint — full
//! body, per-slot delta bodies, head, per-slot head rests — behind one
//! handle the engines thread through trigger enumeration, with plan-cache
//! invalidation on statistics-epoch changes. A planner-off matcher routes
//! everything through the unplanned searcher instead; both enumerate the
//! same homomorphism sets, so engine traces are bit-identical either way.

pub mod exec;
pub mod matcher;
pub mod plan;

pub use exec::{exists_match, for_each_match};
pub use matcher::{ConstraintPlans, Matcher};
pub use plan::{compile, Access, JoinProgram, NoStats, PatTerm, PlanStep, Stats};
