//! Weakly and restrictedly guarded TGD sets (Definitions 20 and 22).
//!
//! Both notions ask every TGD for a body atom (the *guard*) covering all
//! variables that could carry labeled nulls at chase time. They differ in
//! the over-approximation of null-carrying positions: `aff(Σ)` for weak
//! guardedness, the minimal 2-restriction system's `f` for restricted
//! guardedness. Since `f ⊆ aff(Σ)` (Lemma 7), every weakly guarded set is
//! restrictedly guarded, and Example 19 separates the classes.

use chase_core::{ConstraintSet, PosSet, Sym, Term};
use chase_termination::affected_positions;
use chase_termination::hierarchy::Recognition;
use chase_termination::precedence::PrecedenceConfig;
use chase_termination::restriction::minimal_restriction_system;

/// For each TGD of `set` (in index order): the index of a body atom guarding
/// all variables occurring at `positions` in that body, if one exists.
/// EGDs yield `None` entries with `guarded = true` semantics (Section 5
/// considers TGD sets; EGDs have no head nulls to guard).
pub fn guard_atoms(set: &ConstraintSet, positions: &PosSet) -> Vec<Option<usize>> {
    let mut out = Vec::with_capacity(set.len());
    for c in set.iter() {
        let Some(tgd) = c.as_tgd() else {
            out.push(None);
            continue;
        };
        // Variables that occur at some guarded position in the body.
        let mut need: Vec<Sym> = Vec::new();
        for atom in tgd.body() {
            for (pos, term) in atom.entries() {
                if let Term::Var(v) = term {
                    if positions.contains(&pos) && !need.contains(&v) {
                        need.push(v);
                    }
                }
            }
        }
        let guard = tgd
            .body()
            .iter()
            .position(|atom| need.iter().all(|v| atom.vars().contains(v)));
        out.push(guard);
    }
    out
}

fn all_tgds_guarded(set: &ConstraintSet, positions: &PosSet) -> bool {
    set.iter()
        .zip(guard_atoms(set, positions))
        .all(|(c, g)| !c.is_tgd() || g.is_some())
}

/// Is `set` weakly guarded (Definition 20): every TGD has a body atom
/// containing all variables at affected body positions?
pub fn is_weakly_guarded(set: &ConstraintSet) -> bool {
    let aff = affected_positions(set);
    all_tgds_guarded(set, &aff)
}

/// Is `set` restrictedly guarded (Definition 22): every TGD has a body atom
/// containing all variables at body positions from the minimal 2-restriction
/// system's `f`?
///
/// `f` grows monotonically when precedence queries give up, and a larger `f`
/// only makes guarding harder, so `Yes` is definite even then; a failed
/// guard under an indefinite `f` reports `Unknown`.
pub fn is_restrictedly_guarded(set: &ConstraintSet, cfg: &PrecedenceConfig) -> Recognition {
    let rs = minimal_restriction_system(set, 2, cfg);
    if all_tgds_guarded(set, &rs.f) {
        Recognition::Yes
    } else if rs.unknown {
        Recognition::Unknown
    } else {
        Recognition::No
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PrecedenceConfig {
        PrecedenceConfig::default()
    }

    fn parse(text: &str) -> ConstraintSet {
        ConstraintSet::parse(text).unwrap()
    }

    fn example19() -> ConstraintSet {
        parse(
            "R(X1,X2), S(X1,X2) -> S(X2,Y)\n\
             S(X1,X2), S(X3,X1) -> R(X2,X1)\n\
             T(X1,X2) -> S(Y,X2)",
        )
    }

    #[test]
    fn example19_is_not_weakly_guarded() {
        let s = example19();
        assert!(!is_weakly_guarded(&s), "α2 has no atom with x1, x2, x3");
    }

    #[test]
    fn example19_under_definition12_is_not_restrictedly_guarded() {
        // Documented deviation (DESIGN.md §4.2): the paper's worked Example
        // 19 quotes a *per-constraint* f = {S^2, R^1} from the companion
        // TR's refined restriction systems. Under this paper's formal
        // Definition 12 (one global f), the closure also pulls in S^1 (α3
        // creates nulls at S^1 and sits on the edge (α3, α2)), after which
        // α2 would need a guard covering x1, x2 *and* x3 — so the set is
        // not restrictedly guarded under the faithful global-f reading.
        // The class separation WGTGD ⊊ RGTGD itself is preserved by the
        // witness in `wg_rg_separation_witness` below.
        let s = example19();
        let rs = minimal_restriction_system(&s, 2, &cfg());
        assert!(rs.f.contains(&chase_core::Position::new("S", 0)));
        assert_eq!(is_restrictedly_guarded(&s, &cfg()), Recognition::No);
    }

    #[test]
    fn wg_rg_separation_witness() {
        // Lemma 7, bullet two, with a witness that separates the classes
        // under the formal Definition 12: α is the safety example (creates
        // nulls at R^2), and γ joins two R-tuples on their second slots —
        // but T-guards on U and V make it impossible for γ to ever consume
        // α's output or an I0 null at admissible positions, so the minimal
        // 2-restriction system is edgeless and f = ∅.
        let s = parse(
            "R(X1,X2,X3), S(X2) -> R(X2,Y,X1)\n\
             R(A,U,B), T(U), R(C,V,D), T(V) -> H(U,V)",
        );
        // Not weakly guarded: U and V sit at the affected position R^2 and
        // share no body atom.
        assert!(!is_weakly_guarded(&s));
        // Restrictedly guarded: the restriction system is edgeless.
        let rs = minimal_restriction_system(&s, 2, &cfg());
        assert!(rs.edges.is_empty(), "got edges {:?}", rs.edges);
        assert!(rs.f.is_empty());
        assert_eq!(is_restrictedly_guarded(&s, &cfg()), Recognition::Yes);
    }

    #[test]
    fn lemma7_wg_implies_rg() {
        for text in [
            "R(X1,X2) -> R(X2,Y)",
            "S(X) -> E(X,Y), S(Y)",
            "E(X,Y), S(Y) -> E(Y,Z)",
            "R(X1,X2), S(X1,X2) -> S(X2,Y)\nS(X1,X2), S(X3,X1) -> R(X2,X1)\nT(X1,X2) -> S(Y,X2)",
        ] {
            let s = parse(text);
            if is_weakly_guarded(&s) {
                assert_eq!(
                    is_restrictedly_guarded(&s, &cfg()),
                    Recognition::Yes,
                    "WG ⇒ RG failed on {text}"
                );
            }
        }
    }

    #[test]
    fn lemma7_f_subset_of_affected() {
        for text in [
            "R(X1,X2), S(X1,X2) -> S(X2,Y)\nS(X1,X2), S(X3,X1) -> R(X2,X1)\nT(X1,X2) -> S(Y,X2)",
            "S(X), E(X,Y) -> E(Y,X)\nS(X), E(X,Y) -> E(Y,Z), E(Z,X)",
            "S(X2), E(X1,X2) -> E(Y,X1)",
        ] {
            let s = parse(text);
            let aff = affected_positions(&s);
            let rs = minimal_restriction_system(&s, 2, &cfg());
            assert!(
                rs.f.iter().all(|p| aff.contains(p)),
                "f ⊄ aff(Σ) on {text}: f = {:?}, aff = {:?}",
                rs.f,
                aff
            );
        }
    }

    #[test]
    fn single_atom_bodies_are_always_guarded() {
        let s = parse("S(X) -> E(X,Y), S(Y)");
        assert!(is_weakly_guarded(&s));
        assert_eq!(is_restrictedly_guarded(&s, &cfg()), Recognition::Yes);
    }

    #[test]
    fn full_tgds_without_nulls_are_trivially_guarded() {
        let s = parse("E(X,Y) -> E(Y,X)");
        assert!(is_weakly_guarded(&s));
        let guards = guard_atoms(&s, &PosSet::new());
        assert_eq!(guards, vec![Some(0)], "empty need-set: first atom guards");
    }
}
