#![warn(missing_docs)]

//! # chase-guarded
//!
//! Section 5 of the paper: query answering over knowledge bases whose chase
//! may not terminate, via guarded fragments.
//!
//! * [`guards`] — the recognizers: *weakly guarded* TGD sets (Definition 20,
//!   Calì–Gottlob–Kifer) and the paper's strictly larger class of
//!   *restrictedly guarded* sets (Definition 22), which replaces affected
//!   positions with the restriction-system position set `f`.
//! * [`nullprop`] — the *guarded null property* (Definition 21), checked at
//!   runtime over chase traces; by Lemma 7 every chase sequence of an RGTGD
//!   set has it.
//! * [`qa`] — certain-answer query answering on (terminating or budgeted)
//!   chases. The paper's Corollary 1 decidability argument goes through
//!   Courcelle's theorem on bounded-treewidth models; what this crate ships
//!   is the *class recognition* (the paper's actual §5 contribution) plus
//!   sound certain-answer computation whenever the chase terminates — see
//!   DESIGN.md §4.5 for the documented scope substitution.
//!
//! # Examples
//!
//! Recognize a guarded set, then answer a query over a knowledge base:
//!
//! ```
//! use chase_core::{ConjunctiveQuery, ConstraintSet, Instance, Term};
//! use chase_engine::ChaseConfig;
//! use chase_guarded::{certain_answers, is_weakly_guarded};
//!
//! let sigma = ConstraintSet::parse(
//!     "parent(X,Y) -> person(X), person(Y)\n\
//!      person(X) -> bornIn(X,P)",
//! ).unwrap();
//! assert!(is_weakly_guarded(&sigma));
//!
//! let kb = Instance::parse("parent(ada,byron).").unwrap();
//! let cfg = ChaseConfig::default();
//! // Certain: ada is a person (derived, null-free).
//! let q = ConjunctiveQuery::parse("q(X) <- person(X), parent(X,byron)").unwrap();
//! let answers = certain_answers(&kb, &sigma, &q, &cfg).unwrap();
//! assert_eq!(answers, vec![vec![Term::constant("ada")]]);
//! // Not certain: the birthplace the chase invents is a labeled null.
//! let q2 = ConjunctiveQuery::parse("q(P) <- bornIn(ada,P)").unwrap();
//! assert!(certain_answers(&kb, &sigma, &q2, &cfg).unwrap().is_empty());
//! ```

pub mod guards;
pub mod nullprop;
pub mod qa;

pub use guards::{guard_atoms, is_restrictedly_guarded, is_weakly_guarded};
pub use nullprop::{guarded_null_property, NullPropViolation};
pub use qa::{certain_answers, QaError};
