#![warn(missing_docs)]

//! # chase-guarded
//!
//! Section 5 of the paper: query answering over knowledge bases whose chase
//! may not terminate, via guarded fragments.
//!
//! * [`guards`] — the recognizers: *weakly guarded* TGD sets (Definition 20,
//!   Calì–Gottlob–Kifer) and the paper's strictly larger class of
//!   *restrictedly guarded* sets (Definition 22), which replaces affected
//!   positions with the restriction-system position set `f`.
//! * [`nullprop`] — the *guarded null property* (Definition 21), checked at
//!   runtime over chase traces; by Lemma 7 every chase sequence of an RGTGD
//!   set has it.
//! * [`qa`] — certain-answer query answering on (terminating or budgeted)
//!   chases. The paper's Corollary 1 decidability argument goes through
//!   Courcelle's theorem on bounded-treewidth models; what this crate ships
//!   is the *class recognition* (the paper's actual §5 contribution) plus
//!   sound certain-answer computation whenever the chase terminates — see
//!   DESIGN.md §4.5 for the documented scope substitution.

pub mod guards;
pub mod nullprop;
pub mod qa;

pub use guards::{guard_atoms, is_restrictedly_guarded, is_weakly_guarded};
pub use nullprop::{guarded_null_property, NullPropViolation};
pub use qa::{certain_answers, QaError};
