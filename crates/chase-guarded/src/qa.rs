//! Certain-answer query answering on chased knowledge bases.
//!
//! When the chase of `I` with `Σ` terminates, the certain answers of a
//! conjunctive query are its null-free answers on `I^Σ` (the chase result is
//! a universal model). This module runs a budgeted chase and evaluates
//! queries on the result, refusing to answer when no termination occurred —
//! the honest subset of Section 5's program (see crate docs).

use chase_core::{ConjunctiveQuery, ConstraintSet, Instance, Term};
use chase_engine::{chase, ChaseConfig, StopReason};
use std::fmt;

/// Why certain answers could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QaError {
    /// The chase did not terminate within the configured budget; no sound
    /// answer set can be produced from a partial chase.
    NoTerminationWithinBudget(StopReason),
    /// The chase failed on an EGD (inconsistent knowledge base).
    ChaseFailed,
}

impl fmt::Display for QaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QaError::NoTerminationWithinBudget(r) => {
                write!(f, "chase did not terminate within budget ({r:?})")
            }
            QaError::ChaseFailed => write!(f, "chase failed: knowledge base is inconsistent"),
        }
    }
}

impl std::error::Error for QaError {}

/// Certain answers of `q` over the knowledge base `(I, Σ)`: the null-free
/// answers on the terminating chase result.
pub fn certain_answers(
    inst: &Instance,
    set: &ConstraintSet,
    q: &ConjunctiveQuery,
    cfg: &ChaseConfig,
) -> Result<Vec<Vec<Term>>, QaError> {
    let res = chase(inst, set, cfg);
    match res.reason {
        StopReason::Satisfied => Ok(q.evaluate_certain(&res.instance)),
        StopReason::Failed => Err(QaError::ChaseFailed),
        other => Err(QaError::NoTerminationWithinBudget(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_include_implied_facts() {
        let set = ConstraintSet::parse("emp(E,D) -> dept(D)").unwrap();
        let inst = Instance::parse("emp(alice,sales). emp(bob,hr).").unwrap();
        let q = ConjunctiveQuery::parse("q(D) <- dept(D)").unwrap();
        let ans = certain_answers(&inst, &set, &q, &ChaseConfig::default()).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Term::constant("sales")]));
    }

    #[test]
    fn null_answers_are_not_certain() {
        // dept gains a manager null; asking for managers certain-answers ∅.
        let set = ConstraintSet::parse("dept(D) -> mgr(D,M)").unwrap();
        let inst = Instance::parse("dept(sales).").unwrap();
        let q = ConjunctiveQuery::parse("q(M) <- mgr(D,M)").unwrap();
        let ans = certain_answers(&inst, &set, &q, &ChaseConfig::default()).unwrap();
        assert!(ans.is_empty());
        // But the boolean query "some manager exists" is certain.
        let b = ConjunctiveQuery::parse("q() <- mgr(D,M)").unwrap();
        let ans = certain_answers(&inst, &set, &b, &ChaseConfig::default()).unwrap();
        assert_eq!(ans, vec![Vec::<Term>::new()]);
    }

    #[test]
    fn divergence_is_refused() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let inst = Instance::parse("S(a).").unwrap();
        let q = ConjunctiveQuery::parse("q(X) <- S(X)").unwrap();
        let cfg = ChaseConfig::with_max_steps(25);
        assert!(matches!(
            certain_answers(&inst, &set, &q, &cfg),
            Err(QaError::NoTerminationWithinBudget(_))
        ));
    }

    #[test]
    fn inconsistent_kb_is_reported() {
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let inst = Instance::parse("E(a,b). E(a,c).").unwrap();
        let q = ConjunctiveQuery::parse("q() <- E(a,b)").unwrap();
        assert_eq!(
            certain_answers(&inst, &set, &q, &ChaseConfig::default()),
            Err(QaError::ChaseFailed)
        );
    }
}
