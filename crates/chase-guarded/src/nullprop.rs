//! The guarded null property (Definition 21), checked over chase traces.
//!
//! A chase sequence has the guarded null property when every step
//! `I' →α,a I''` has a body atom containing *all* chase-created nulls among
//! the parameters `a` that occur in the instantiated head. Lemma 7(3): every
//! chase sequence of a restrictedly guarded set has the property; the
//! integration tests drive randomized chase orders through this checker to
//! validate that claim empirically.

use chase_core::{Constraint, ConstraintSet, Instance, Term};
use chase_engine::StepRecord;
use std::collections::BTreeSet;
use std::fmt;

/// A step that violates the guarded null property.
#[derive(Debug, Clone)]
pub struct NullPropViolation {
    /// Index of the offending step in the trace.
    pub step: usize,
    /// Index of the fired constraint.
    pub constraint: usize,
    /// The head-occurring parameter nulls no single body atom covers.
    pub uncovered: Vec<Term>,
}

impl fmt::Display for NullPropViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nulls: Vec<String> = self.uncovered.iter().map(|t| t.to_string()).collect();
        write!(
            f,
            "step {} (constraint {}): no body atom covers {{{}}}",
            self.step,
            self.constraint,
            nulls.join(", ")
        )
    }
}

/// Check a chase trace (from `ChaseConfig { keep_trace: true, … }`) for the
/// guarded null property w.r.t. the original instance `initial`.
///
/// Returns the first violation, or `None` when the property holds.
pub fn guarded_null_property(
    trace: &[StepRecord],
    set: &ConstraintSet,
    initial: &Instance,
) -> Option<NullPropViolation> {
    let initial_nulls: BTreeSet<u32> = initial.nulls();
    for (si, rec) in trace.iter().enumerate() {
        let c = &set[rec.constraint];
        // Parameter nulls that occur in the instantiated head and were not
        // part of the original instance.
        let head_param_nulls: Vec<Term> = match c {
            Constraint::Tgd(t) => t
                .frontier()
                .iter()
                .filter_map(|&v| {
                    rec.assignment
                        .iter()
                        .find(|(u, _)| *u == v)
                        .map(|&(_, t)| t)
                })
                .collect(),
            Constraint::Egd(e) => [e.left(), e.right()]
                .iter()
                .filter_map(|&v| {
                    rec.assignment
                        .iter()
                        .find(|(u, _)| *u == v)
                        .map(|&(_, t)| t)
                })
                .collect(),
        };
        let mut need: Vec<Term> = head_param_nulls
            .into_iter()
            .filter(|t| match t {
                Term::Null(n) => !initial_nulls.contains(n),
                _ => false,
            })
            .collect();
        need.sort_unstable();
        need.dedup();
        if need.is_empty() {
            continue;
        }
        let covered = rec
            .ground_body
            .iter()
            .any(|atom| need.iter().all(|t| atom.terms().contains(t)));
        if !covered {
            return Some(NullPropViolation {
                step: si,
                constraint: rec.constraint,
                uncovered: need,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_engine::{chase, ChaseConfig};

    fn traced(max_steps: usize) -> ChaseConfig {
        ChaseConfig {
            keep_trace: true,
            max_steps: Some(max_steps),
            ..ChaseConfig::default()
        }
    }

    #[test]
    fn guarded_cascade_has_the_property() {
        // Single-atom bodies guard everything.
        let set = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let inst = Instance::parse("S(a).").unwrap();
        let res = chase(&inst, &set, &traced(20));
        assert!(guarded_null_property(&res.trace, &set, &inst).is_none());
    }

    #[test]
    fn split_nulls_violate_the_property() {
        // P(x), Q(y) → R(x,y) with x and y both nulls from separate
        // cascades: no body atom contains both.
        let set = ConstraintSet::parse(
            "A(X) -> P(Z)\n\
             B(X) -> Q(Z)\n\
             P(X), Q(Y) -> R(X,Y)",
        )
        .unwrap();
        let inst = Instance::parse("A(a). B(b).").unwrap();
        let res = chase(&inst, &set, &traced(20));
        assert!(res.terminated());
        let v =
            guarded_null_property(&res.trace, &set, &inst).expect("the joint R-step is unguarded");
        assert_eq!(v.constraint, 2);
        assert_eq!(v.uncovered.len(), 2);
    }

    #[test]
    fn initial_instance_nulls_do_not_count() {
        // The nulls come from the (frozen-query-style) initial instance, so
        // Definition 21 exempts them.
        let set = ConstraintSet::parse("P(X), Q(Y) -> R(X,Y)").unwrap();
        let inst = Instance::parse("P(_n0). Q(_n1).").unwrap();
        let res = chase(&inst, &set, &traced(10));
        assert!(res.terminated());
        assert!(guarded_null_property(&res.trace, &set, &inst).is_none());
    }
}
