//! Terms: constants, labeled nulls and variables.
//!
//! The paper fixes three pairwise disjoint infinite sets — constants `∆`,
//! labeled nulls `∆null` and variables `V` (Section 2). [`Term`] mirrors that
//! split. Instances hold only *ground* terms (constants and nulls); constraint
//! bodies/heads and query bodies hold constants and variables.

use crate::symbol::Sym;
use std::fmt;

/// A term: constant, labeled null, or variable.
///
/// `Term` is `Copy` (8 bytes). Labeled nulls are identified by a `u32` drawn
/// from the owning [`crate::Instance`]'s counter; they display as `_n<id>`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant from `∆`.
    Const(Sym),
    /// A labeled null from `∆null`.
    Null(u32),
    /// A variable from `V`.
    Var(Sym),
}

impl Term {
    /// Constant with the given name.
    pub fn constant(name: &str) -> Term {
        Term::Const(Sym::new(name))
    }

    /// Variable with the given name.
    pub fn var(name: &str) -> Term {
        Term::Var(Sym::new(name))
    }

    /// Labeled null with the given id.
    pub fn null(id: u32) -> Term {
        Term::Null(id)
    }

    /// Is this a constant?
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Is this a labeled null?
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Is this a variable?
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Ground terms are constants and labeled nulls — everything that may
    /// appear in a database instance.
    pub fn is_ground(self) -> bool {
        !self.is_var()
    }

    /// The variable name, if this is a variable.
    pub fn as_var(self) -> Option<Sym> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The null id, if this is a labeled null.
    pub fn as_null(self) -> Option<u32> {
        match self {
            Term::Null(n) => Some(n),
            _ => None,
        }
    }

    /// The constant name, if this is a constant.
    pub fn as_const(self) -> Option<Sym> {
        match self {
            Term::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// An interned *ground* term: one `u32` standing for a constant or a
/// labeled null, with an O(1) round-trip back to [`Term`].
///
/// The id space is one table split by the top bit: ids below `1 << 31` are
/// constants (the id is the [`Sym`] id in the process-wide string interner),
/// ids at or above it are labeled nulls (`id & !(1 << 31)` is the null id).
/// Both directions are a couple of bit operations — no lock, no lookup —
/// which is what lets [`crate::Instance`]'s columnar fact store key its
/// dedup table and indexes by ids and hash a handful of `u32`s per insert
/// instead of whole term vectors.
///
/// Variables have no `TermId` (instances never hold them); see
/// [`TermId::from_ground`].
///
/// # Ordering
///
/// `TermId`'s derived order coincides with [`Term`]'s derived order on
/// ground terms: constants (sorted by interner id) sort below nulls (sorted
/// by null id), exactly as `Term::Const(_) < Term::Null(_)` with the same
/// inner comparisons. Code that sorts ids may therefore substitute for code
/// that sorts terms without changing any canonical selection — the
/// equivalence the store's trace-stability rests on (pinned by a property
/// test in `tests/instance_store.rs`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

/// Top bit of a [`TermId`]: set for labeled nulls, clear for constants.
const NULL_BIT: u32 = 1 << 31;

impl TermId {
    /// A reserved id that matches no interned term.
    ///
    /// Planned execution uses it for register seeds that arrive bound to a
    /// non-ground term (a variable bound to a variable): the old term-level
    /// comparison could never equal a ground fact term, and `NEVER` likewise
    /// misses every index bucket and every stored id. The null id it would
    /// decode to is excluded in [`TermId::from_ground`], so no stored fact
    /// can ever collide with it.
    pub const NEVER: TermId = TermId(u32::MAX);

    /// Intern a ground term. Returns `None` for variables.
    ///
    /// # Panics
    /// Panics if the constant's interner id or the null id reaches `1 << 31`
    /// (half the 4-billion id space each — unreachable in practice, checked
    /// so the tag bit can never be clobbered).
    #[inline]
    pub fn from_ground(t: Term) -> Option<TermId> {
        match t {
            Term::Const(c) => {
                assert!(c.id() < NULL_BIT, "constant interner id overflow");
                Some(TermId(c.id()))
            }
            Term::Null(n) => {
                assert!(n < NULL_BIT - 1, "null id overflow");
                Some(TermId(n | NULL_BIT))
            }
            Term::Var(_) => None,
        }
    }

    /// The interned term back as a [`Term`] — O(1), no locking.
    #[inline]
    pub fn term(self) -> Term {
        if self.0 & NULL_BIT == 0 {
            Term::Const(Sym::from_id(self.0))
        } else {
            Term::Null(self.0 & !NULL_BIT)
        }
    }

    /// Is this the id of a labeled null?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 & NULL_BIT != 0 && self != TermId::NEVER
    }

    /// The null id, if this is a labeled null.
    #[inline]
    pub fn as_null(self) -> Option<u32> {
        self.is_null().then_some(self.0 & !NULL_BIT)
    }

    /// The raw packed id (stable within a process run only, like `Sym` ids).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.term(), f)
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TermId({})", self.term())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Null(n) => write!(f, "_n{n}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Term::constant("a").is_const());
        assert!(Term::constant("a").is_ground());
        assert!(Term::null(3).is_null());
        assert!(Term::null(3).is_ground());
        assert!(Term::var("X").is_var());
        assert!(!Term::var("X").is_ground());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant("a").to_string(), "a");
        assert_eq!(Term::null(7).to_string(), "_n7");
        assert_eq!(Term::var("X1").to_string(), "X1");
    }

    #[test]
    fn disjointness() {
        // A constant and a variable with the same spelling are different terms.
        assert_ne!(Term::constant("x"), Term::var("x"));
    }

    #[test]
    fn term_ids_round_trip_ground_terms() {
        for t in [
            Term::constant("a"),
            Term::constant("zzz"),
            Term::null(0),
            Term::null(7),
            Term::null((1 << 31) - 2),
        ] {
            let id = TermId::from_ground(t).expect("ground term interns");
            assert_eq!(id.term(), t);
            assert_eq!(id.is_null(), t.is_null());
            assert_eq!(id.as_null(), t.as_null());
        }
        assert_eq!(TermId::from_ground(Term::var("X")), None);
    }

    #[test]
    fn term_id_order_matches_term_order() {
        // Constants in interner order, then nulls in id order — the same
        // total order the derived `Term` comparison gives ground terms.
        let terms = [
            Term::constant("tio_a"),
            Term::constant("tio_b"),
            Term::null(0),
            Term::null(5),
        ];
        for &a in &terms {
            for &b in &terms {
                let (ia, ib) = (
                    TermId::from_ground(a).unwrap(),
                    TermId::from_ground(b).unwrap(),
                );
                assert_eq!(ia.cmp(&ib), a.cmp(&b), "order mismatch on {a} vs {b}");
            }
        }
    }

    #[test]
    fn never_sentinel_matches_nothing() {
        assert!(!TermId::NEVER.is_null());
        assert_eq!(TermId::NEVER.as_null(), None);
        let id = TermId::from_ground(Term::null((1 << 31) - 2)).unwrap();
        assert_ne!(id, TermId::NEVER);
    }

    #[test]
    fn accessors() {
        assert_eq!(Term::var("X").as_var(), Some(Sym::new("X")));
        assert_eq!(Term::null(2).as_null(), Some(2));
        assert_eq!(Term::constant("c").as_const(), Some(Sym::new("c")));
        assert_eq!(Term::constant("c").as_var(), None);
    }
}
