//! Terms: constants, labeled nulls and variables.
//!
//! The paper fixes three pairwise disjoint infinite sets — constants `∆`,
//! labeled nulls `∆null` and variables `V` (Section 2). [`Term`] mirrors that
//! split. Instances hold only *ground* terms (constants and nulls); constraint
//! bodies/heads and query bodies hold constants and variables.

use crate::symbol::Sym;
use std::fmt;

/// A term: constant, labeled null, or variable.
///
/// `Term` is `Copy` (8 bytes). Labeled nulls are identified by a `u32` drawn
/// from the owning [`crate::Instance`]'s counter; they display as `_n<id>`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant from `∆`.
    Const(Sym),
    /// A labeled null from `∆null`.
    Null(u32),
    /// A variable from `V`.
    Var(Sym),
}

impl Term {
    /// Constant with the given name.
    pub fn constant(name: &str) -> Term {
        Term::Const(Sym::new(name))
    }

    /// Variable with the given name.
    pub fn var(name: &str) -> Term {
        Term::Var(Sym::new(name))
    }

    /// Labeled null with the given id.
    pub fn null(id: u32) -> Term {
        Term::Null(id)
    }

    /// Is this a constant?
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Is this a labeled null?
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Is this a variable?
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Ground terms are constants and labeled nulls — everything that may
    /// appear in a database instance.
    pub fn is_ground(self) -> bool {
        !self.is_var()
    }

    /// The variable name, if this is a variable.
    pub fn as_var(self) -> Option<Sym> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// The null id, if this is a labeled null.
    pub fn as_null(self) -> Option<u32> {
        match self {
            Term::Null(n) => Some(n),
            _ => None,
        }
    }

    /// The constant name, if this is a constant.
    pub fn as_const(self) -> Option<Sym> {
        match self {
            Term::Const(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Null(n) => write!(f, "_n{n}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Term::constant("a").is_const());
        assert!(Term::constant("a").is_ground());
        assert!(Term::null(3).is_null());
        assert!(Term::null(3).is_ground());
        assert!(Term::var("X").is_var());
        assert!(!Term::var("X").is_ground());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant("a").to_string(), "a");
        assert_eq!(Term::null(7).to_string(), "_n7");
        assert_eq!(Term::var("X1").to_string(), "X1");
    }

    #[test]
    fn disjointness() {
        // A constant and a variable with the same spelling are different terms.
        assert_ne!(Term::constant("x"), Term::var("x"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Term::var("X").as_var(), Some(Sym::new("X")));
        assert_eq!(Term::null(2).as_null(), Some(2));
        assert_eq!(Term::constant("c").as_const(), Some(Sym::new("c")));
        assert_eq!(Term::constant("c").as_var(), None);
    }
}
