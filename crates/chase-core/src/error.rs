//! Error types for the core crate.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or parsing core objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Previously observed arity.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A constraint violates a well-formedness condition of Section 2.
    InvalidConstraint(String),
    /// A conjunctive query violates its well-formedness conditions.
    InvalidQuery(String),
    /// An instance operation received a non-ground atom.
    NonGroundAtom(String),
    /// Parse error with 1-based location.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable message.
        msg: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "predicate {pred} used with arity {found}, but earlier with arity {expected}"
            ),
            CoreError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            CoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            CoreError::NonGroundAtom(atom) => {
                write!(f, "instances may only contain ground atoms, got {atom}")
            }
            CoreError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ArityMismatch {
            pred: "E".into(),
            expected: 2,
            found: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('E') && msg.contains('2') && msg.contains('3'));
    }
}
