//! Global string interner.
//!
//! Predicate names, constant names and variable names are interned once into
//! a process-wide table and referred to by a 4-byte [`Sym`]. Interned strings
//! are leaked (`Box::leak`), which is the standard compiler-style trade-off:
//! the set of distinct names in a session is small and bounded, and in
//! exchange `Sym::as_str` returns `&'static str` with no locking on the read
//! path after the first lookup.

use crate::fx::FxHashMap;
use parking_lot::RwLock;
use std::fmt;
use std::sync::OnceLock;

/// An interned string (predicate, constant or variable name).
///
/// `Sym` is `Copy`, 4 bytes, and cheap to hash and compare. Two `Sym`s are
/// equal iff their underlying strings are equal. The derived `Ord` compares
/// interner ids (creation order), **not** strings; use [`Sym::as_str`] when a
/// lexicographic order is needed for stable display.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: FxHashMap<&'static str, u32>,
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            ids: FxHashMap::default(),
        })
    })
}

impl Sym {
    /// Intern `name` and return its symbol. Idempotent.
    pub fn new(name: &str) -> Sym {
        let lock = interner();
        if let Some(&id) = lock.read().ids.get(name) {
            return Sym(id);
        }
        let mut w = lock.write();
        // Re-check: another thread may have interned between the read and
        // write lock acquisitions.
        if let Some(&id) = w.ids.get(name) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(w.names.len()).expect("interner overflow");
        w.names.push(leaked);
        w.ids.insert(leaked, id);
        Sym(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// The raw interner id (stable within a process run only).
    pub fn id(self) -> u32 {
        self.0
    }

    /// The symbol with the given raw interner id — the inverse of
    /// [`Sym::id`], O(1) and lock-free.
    ///
    /// The id must have been produced by [`Sym::id`] in this process run
    /// (ids are never recycled, so any such id stays valid); a fabricated id
    /// yields a symbol whose [`Sym::as_str`] panics on the out-of-range
    /// lookup. This is the constant half of the [`crate::term::TermId`]
    /// round-trip.
    pub fn from_id(id: u32) -> Sym {
        Sym(id)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("E");
        let b = Sym::new("E");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "E");
    }

    #[test]
    fn distinct_names_distinct_syms() {
        assert_ne!(Sym::new("left"), Sym::new("right"));
    }

    #[test]
    fn display_roundtrip() {
        let s = Sym::new("hasAirport");
        assert_eq!(s.to_string(), "hasAirport");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..100)
                        .map(|i| Sym::new(&format!("t{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
