//! Relational atoms.

use crate::schema::Position;
use crate::symbol::Sym;
use crate::term::Term;
use std::fmt;

/// A relational atom `R(t1, …, tn)`.
///
/// Atoms appear both in database instances (where every term is ground) and
/// in constraint bodies/heads and query bodies (where variables occur).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    pred: Sym,
    terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: impl Into<Sym>, terms: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            terms,
        }
    }

    /// The predicate symbol.
    pub fn pred(&self) -> Sym {
        self.pred
    }

    /// The argument terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// True iff no argument is a variable.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_ground())
    }

    /// Distinct variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// All `(position, term)` pairs of the atom.
    pub fn entries(&self) -> impl Iterator<Item = (Position, Term)> + '_ {
        self.terms
            .iter()
            .enumerate()
            .map(move |(i, &t)| (Position::new(self.pred, i), t))
    }

    /// Positions (0-based indices wrapped as [`Position`]) where `t` occurs.
    pub fn positions_of(&self, t: Term) -> Vec<Position> {
        self.entries()
            .filter(|&(_, u)| u == t)
            .map(|(p, _)| p)
            .collect()
    }

    /// Replace every occurrence of `from` by `to`, returning the new atom.
    pub fn replace(&self, from: Term, to: Term) -> Atom {
        Atom {
            pred: self.pred,
            terms: self
                .terms
                .iter()
                .map(|&t| if t == from { to } else { t })
                .collect(),
        }
    }

    /// Apply a term-level function to every argument.
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            terms: self.terms.iter().map(|&t| f(t)).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> Atom {
        Atom::new(
            "E",
            vec![Term::var("X"), Term::constant("a"), Term::var("X")],
        )
    }

    #[test]
    fn display() {
        assert_eq!(atom().to_string(), "E(X,a,X)");
        assert_eq!(Atom::new("S", vec![]).to_string(), "S()");
    }

    #[test]
    fn vars_dedup_in_order() {
        let a = Atom::new("R", vec![Term::var("Y"), Term::var("X"), Term::var("Y")]);
        assert_eq!(a.vars(), vec![Sym::new("Y"), Sym::new("X")]);
    }

    #[test]
    fn groundness() {
        assert!(!atom().is_ground());
        assert!(Atom::new("E", vec![Term::constant("a"), Term::null(0)]).is_ground());
    }

    #[test]
    fn positions_of_term() {
        let ps = atom().positions_of(Term::var("X"));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0], Position::new("E", 0));
        assert_eq!(ps[1], Position::new("E", 2));
    }

    #[test]
    fn replace_all_occurrences() {
        let a = atom().replace(Term::var("X"), Term::null(5));
        assert_eq!(a.to_string(), "E(_n5,a,_n5)");
    }
}
