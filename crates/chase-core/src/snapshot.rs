//! Columnar snapshot (de)serialization for [`Instance`].
//!
//! The columnar store was designed to be dumpable: every table is a set of
//! flat `Vec<TermId>` columns, fact identity is an insertion-order index, and
//! all secondary structures (dedup table, positional/composite indexes,
//! distinct-value stats) are derivable from the columns by replaying inserts
//! in fact-id order. A snapshot therefore serializes exactly the primary
//! data — tables, insertion order, the null counter — and *rebuild markers*
//! stand in for the indexes: [`Instance::from_snapshot_bytes`] reconstructs
//! them through the ordinary [`Instance::insert_ids`] path, so a decoded
//! instance is index-consistent by construction.
//!
//! # Why ids cannot be written raw
//!
//! A [`TermId`] packs either a [`Sym`] interner id (top bit clear) or a
//! labeled-null id (top bit set). Null ids are instance-local and stable, so
//! they serialize as-is. `Sym` ids are **process-run-local** — the interner
//! assigns them in first-use order — so the snapshot carries a file-local
//! symbol-name table and rewrites every constant id to an index into it.
//! Decoding re-interns the names and maps back; the decoded instance is
//! equal to the encoded one as a set of atoms even across processes whose
//! interners disagree.
//!
//! # On-disk layout (version 1)
//!
//! All integers little-endian. The whole byte string is:
//!
//! ```text
//! magic   "CSNP"                       4 bytes
//! version u8 = 1
//! symtab  u32 count, then per name: u32 len, <len> UTF-8 bytes
//! nulls   u32 next_null                 (exact counter, not derived)
//! tables  u32 count, then per table:
//!           u32 pred   (symtab index)
//!           u32 arity
//!           u32 rows
//!           arity columns of <rows> u32 file-local term ids
//! order   u32 count, then per fact: u32 table, u32 row
//! crc     u32 CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! A *file-local term id* keeps the null tag bit: nulls are stored verbatim,
//! constants store a symtab index in the low 31 bits.
//!
//! `next_null` is carried explicitly rather than recomputed as
//! `max(null id) + 1`: EGD merges can rewrite away the highest null while the
//! counter stays put, and a resumed chase must not re-issue a null id the
//! trace has already seen.
//!
//! ```
//! use chase_core::Instance;
//!
//! let inst = Instance::parse("S(a). E(a,_n0). E(_n0,_n1).").unwrap();
//! let bytes = inst.to_snapshot_bytes();
//! let back = Instance::from_snapshot_bytes(&bytes).unwrap();
//! assert_eq!(back, inst);
//! ```

use crate::fx::FxHashMap;
use crate::instance::Instance;
use crate::symbol::Sym;
use crate::term::{Term, TermId};
use std::fmt;

/// Snapshot format version written by [`Instance::to_snapshot_bytes`].
pub const SNAPSHOT_VERSION: u8 = 1;

/// Magic prefix of a serialized instance snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CSNP";

/// Top bit of a file-local term id: set for labeled nulls (mirroring the
/// in-memory [`TermId`] encoding), clear for symtab indexes.
const FILE_NULL_BIT: u32 = 1 << 31;

/// Why a snapshot byte string failed to decode.
///
/// Every variant is a *total* rejection: decoding never panics on foreign
/// bytes, it classifies them. Callers treating snapshots as cache (the WAL
/// recovery path in `chase-serve`) fall back to replaying the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte string ended before the declared structure did.
    Truncated,
    /// The leading magic was not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// A version this build does not read.
    BadVersion(u8),
    /// The trailing CRC-32 did not match the content.
    BadChecksum {
        /// CRC recomputed over the content.
        expected: u32,
        /// CRC stored in the file.
        found: u32,
    },
    /// A symbol name was not valid UTF-8.
    BadUtf8,
    /// Structurally impossible content (out-of-range index, fact-count
    /// mismatch, duplicate row reference).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not an instance snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadChecksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch (computed {expected:#010x}, stored {found:#010x})"
            ),
            SnapshotError::BadUtf8 => write!(f, "snapshot symbol table is not UTF-8"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum guarding both
/// snapshot files and WAL records in the serving layer.
///
/// Hand-rolled (the workspace takes no external dependencies); the table is
/// built on first use and the function is pure, so callers may share it
/// freely across threads.
///
/// ```
/// use chase_core::snapshot::crc32;
///
/// // The standard check value for CRC-32/IEEE.
/// assert_eq!(crc32(b"123456789"), 0xCBF43926);
/// assert_eq!(crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Little-endian primitive writers over a growing byte buffer.
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

impl Instance {
    /// Serialize this instance to the columnar snapshot format.
    ///
    /// The encoding reads straight off the flat column vectors — no
    /// per-atom materialization — and is deterministic for a given
    /// instance history (table order is first-insert order, facts are
    /// listed in insertion order).
    ///
    /// # Examples
    ///
    /// ```
    /// use chase_core::Instance;
    ///
    /// let inst = Instance::parse("edge(a,b). edge(b,_n0).").unwrap();
    /// let bytes = inst.to_snapshot_bytes();
    /// assert_eq!(Instance::from_snapshot_bytes(&bytes).unwrap(), inst);
    /// ```
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        // File-local symbol table: predicates first, then every constant, in
        // first-appearance order over the columns. Deterministic because
        // table order and column contents are.
        let mut sym_index: FxHashMap<Sym, u32> = FxHashMap::default();
        let mut names: Vec<&'static str> = Vec::new();
        let mut local = |s: Sym, names: &mut Vec<&'static str>| -> u32 {
            *sym_index.entry(s).or_insert_with(|| {
                names.push(s.as_str());
                (names.len() - 1) as u32
            })
        };
        let pred_locals: Vec<u32> = self
            .table_preds
            .iter()
            .map(|&p| local(p, &mut names))
            .collect();
        let mut col_locals: Vec<Vec<Vec<u32>>> = Vec::with_capacity(self.tables.len());
        for t in &self.tables {
            let mut cols = Vec::with_capacity(t.cols.len());
            for col in &t.cols {
                cols.push(
                    col.iter()
                        .map(|&id| match id.term() {
                            Term::Null(_) => id.raw(), // tag bit already set
                            Term::Const(c) => local(c, &mut names),
                            Term::Var(_) => unreachable!("instances hold only ground terms"),
                        })
                        .collect::<Vec<u32>>(),
                );
            }
            col_locals.push(cols);
        }

        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        put_u32(&mut out, names.len() as u32);
        for name in &names {
            put_u32(&mut out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
        }
        put_u32(&mut out, self.next_null);
        put_u32(&mut out, self.tables.len() as u32);
        for (i, t) in self.tables.iter().enumerate() {
            put_u32(&mut out, pred_locals[i]);
            put_u32(&mut out, t.cols.len() as u32);
            put_u32(&mut out, t.rows);
            for col in &col_locals[i] {
                for &v in col {
                    put_u32(&mut out, v);
                }
            }
        }
        put_u32(&mut out, self.locs.len() as u32);
        for loc in &self.locs {
            put_u32(&mut out, loc.table);
            put_u32(&mut out, loc.row);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decode a snapshot produced by [`Instance::to_snapshot_bytes`].
    ///
    /// Decoding is *total*: any byte string either yields an instance or a
    /// classified [`SnapshotError`], never a panic. Indexes, dedup tables
    /// and statistics are rebuilt by replaying the facts in insertion order
    /// through the regular insert path, so the result is index-consistent
    /// with a freshly built instance holding the same atoms; the null
    /// counter is restored exactly.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Instance, SnapshotError> {
        if bytes.len() < 4 {
            return Err(SnapshotError::Truncated);
        }
        // CRC covers everything up to the trailing checksum word.
        let (content, tail) = bytes.split_at(bytes.len() - 4);
        let found = u32::from_le_bytes(tail.try_into().unwrap());
        let expected = crc32(content);
        let mut c = Cursor {
            bytes: content,
            at: 0,
        };
        if c.take(4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if expected != found {
            return Err(SnapshotError::BadChecksum { expected, found });
        }
        let version = c.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }

        let sym_count = c.u32()? as usize;
        let mut syms = Vec::with_capacity(sym_count.min(1 << 16));
        for _ in 0..sym_count {
            let len = c.u32()? as usize;
            let raw = c.take(len)?;
            let name = std::str::from_utf8(raw).map_err(|_| SnapshotError::BadUtf8)?;
            syms.push(Sym::new(name));
        }
        let next_null = c.u32()?;
        let resolve = |v: u32, syms: &[Sym]| -> Result<TermId, SnapshotError> {
            if v & FILE_NULL_BIT != 0 {
                let t = TermId::from_ground(Term::Null(v & !FILE_NULL_BIT))
                    .ok_or(SnapshotError::Corrupt("null id out of range"))?;
                Ok(t)
            } else {
                let s = *syms
                    .get(v as usize)
                    .ok_or(SnapshotError::Corrupt("symbol index out of range"))?;
                Ok(TermId::from_ground(Term::Const(s)).expect("constants are ground"))
            }
        };

        struct RawTable {
            pred: Sym,
            cols: Vec<Vec<TermId>>,
            rows: u32,
        }
        let table_count = c.u32()? as usize;
        let mut tables = Vec::with_capacity(table_count.min(1 << 16));
        for _ in 0..table_count {
            let pred_ix = c.u32()? as usize;
            let pred = *syms
                .get(pred_ix)
                .ok_or(SnapshotError::Corrupt("predicate index out of range"))?;
            let arity = c.u32()? as usize;
            let rows = c.u32()?;
            let mut cols = Vec::with_capacity(arity.min(64));
            for _ in 0..arity {
                let mut col = Vec::with_capacity((rows as usize).min(1 << 20));
                for _ in 0..rows {
                    col.push(resolve(c.u32()?, &syms)?);
                }
                cols.push(col);
            }
            tables.push(RawTable { pred, cols, rows });
        }

        let fact_count = c.u32()? as usize;
        let total_rows: u64 = tables.iter().map(|t| t.rows as u64).sum();
        if fact_count as u64 != total_rows {
            return Err(SnapshotError::Corrupt("fact count != total rows"));
        }
        let mut inst = Instance::new();
        let mut scratch: Vec<TermId> = Vec::new();
        let mut seen: Vec<Vec<bool>> = tables
            .iter()
            .map(|t| vec![false; t.rows as usize])
            .collect();
        for _ in 0..fact_count {
            let ti = c.u32()? as usize;
            let row = c.u32()? as usize;
            let t = tables
                .get(ti)
                .ok_or(SnapshotError::Corrupt("fact table index out of range"))?;
            if row >= t.rows as usize {
                return Err(SnapshotError::Corrupt("fact row index out of range"));
            }
            if std::mem::replace(&mut seen[ti][row], true) {
                return Err(SnapshotError::Corrupt("duplicate fact location"));
            }
            scratch.clear();
            for col in &t.cols {
                scratch.push(col[row]);
            }
            if !inst.insert_ids(t.pred, &scratch) {
                return Err(SnapshotError::Corrupt("duplicate fact content"));
            }
        }
        if c.at != content.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        // Restore the null counter exactly; replay only raised it to
        // max(null)+1, which undershoots after merges collapsed high nulls.
        if inst.next_null > next_null {
            return Err(SnapshotError::Corrupt("next_null below live null ids"));
        }
        inst.next_null = next_null;
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    #[test]
    fn empty_instance_round_trips() {
        let inst = Instance::new();
        let back = Instance::from_snapshot_bytes(&inst.to_snapshot_bytes()).unwrap();
        assert_eq!(back, inst);
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn mixed_instance_round_trips_atoms_in_order() {
        let inst =
            Instance::parse("S(a). E(a,_n0). E(_n0,_n1). T(b,c,d). zero(). S(_n5).").unwrap();
        let bytes = inst.to_snapshot_bytes();
        let back = Instance::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back, inst);
        let a: Vec<Atom> = inst.atoms();
        let b: Vec<Atom> = back.atoms();
        assert_eq!(a, b, "insertion order must survive the round trip");
    }

    #[test]
    fn next_null_restored_exactly() {
        let mut inst = Instance::parse("E(_n0,_n3).").unwrap();
        // Merge away the highest null: the counter must not rewind.
        let effect = inst.merge_terms(Term::Null(3), Term::Null(0));
        assert!(!effect.is_noop());
        let back = Instance::from_snapshot_bytes(&inst.to_snapshot_bytes()).unwrap();
        assert_eq!(back, inst);
        // The counter survives byte-for-byte: re-encoding reproduces it.
        assert_eq!(back.to_snapshot_bytes(), inst.to_snapshot_bytes());
    }

    #[test]
    fn truncation_and_corruption_are_classified() {
        let inst = Instance::parse("S(a). E(a,b).").unwrap();
        let bytes = inst.to_snapshot_bytes();
        assert_eq!(
            Instance::from_snapshot_bytes(&bytes[..2]),
            Err(SnapshotError::Truncated)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            Instance::from_snapshot_bytes(&bad_magic),
            Err(SnapshotError::BadMagic)
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            Instance::from_snapshot_bytes(&flipped),
            Err(SnapshotError::BadChecksum { .. })
        ));
        // Truncating whole trailing words still fails the checksum or length.
        assert!(Instance::from_snapshot_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = Instance::parse("fly(p,q,d1). rail(q,p,d2). hasAirport(p).").unwrap();
        let b = Instance::parse("fly(p,q,d1). rail(q,p,d2). hasAirport(p).").unwrap();
        assert_eq!(a.to_snapshot_bytes(), b.to_snapshot_bytes());
    }
}
