//! Conjunctive queries.
//!
//! A CQ is `ans(x) ← ϕ(x, z)` (Section 2). Queries are evaluated by the
//! homomorphism engine; for semantic query optimization they can be *frozen*
//! into a canonical instance (variables become labeled nulls) and *thawed*
//! back after chasing.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::fx::FxHashMap;
use crate::homomorphism::find_all_homs;
use crate::instance::Instance;
use crate::symbol::Sym;
use crate::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// A conjunctive query `head_pred(head_args) ← body`.
#[derive(Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    head_pred: Sym,
    head_args: Vec<Term>,
    body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Construct a query. Head arguments must be variables occurring in the
    /// body, or constants; nulls are not allowed anywhere.
    pub fn new(
        head_pred: impl Into<Sym>,
        head_args: Vec<Term>,
        body: Vec<Atom>,
    ) -> Result<ConjunctiveQuery, CoreError> {
        let body_vars: Vec<Sym> = {
            let mut out = Vec::new();
            for a in &body {
                for v in a.vars() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
                for t in a.terms() {
                    if t.is_null() {
                        return Err(CoreError::InvalidQuery(format!(
                            "labeled null {t} in query body atom {a}"
                        )));
                    }
                }
            }
            out
        };
        for t in &head_args {
            match t {
                Term::Var(v) if body_vars.contains(v) => {}
                Term::Var(v) => {
                    return Err(CoreError::InvalidQuery(format!(
                        "head variable {v} does not occur in the body"
                    )))
                }
                Term::Const(_) => {}
                Term::Null(_) => {
                    return Err(CoreError::InvalidQuery("labeled null in query head".into()))
                }
            }
        }
        Ok(ConjunctiveQuery {
            head_pred: head_pred.into(),
            head_args,
            body,
        })
    }

    /// Parse a query of the form `q(X,Y) <- R(X,Z), S(Z,Y)`.
    pub fn parse(text: &str) -> Result<ConjunctiveQuery, CoreError> {
        crate::parser::parse_query(text)
    }

    /// Head predicate name.
    pub fn head_pred(&self) -> Sym {
        self.head_pred
    }

    /// Head argument terms.
    pub fn head_args(&self) -> &[Term] {
        &self.head_args
    }

    /// Body atoms.
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// Is this a boolean query (empty head)?
    pub fn is_boolean(&self) -> bool {
        self.head_args.is_empty()
    }

    /// Distinct body variables, in first-occurrence order.
    pub fn body_vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for a in &self.body {
            for v in a.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Evaluate on an instance; returns the distinct answer tuples, sorted.
    pub fn evaluate(&self, inst: &Instance) -> Vec<Vec<Term>> {
        let mut out: BTreeSet<Vec<Term>> = BTreeSet::new();
        for h in find_all_homs(&self.body, inst) {
            out.insert(self.head_args.iter().map(|&t| h.apply(t)).collect());
        }
        out.into_iter().collect()
    }

    /// *Certain-answer* evaluation: like [`Self::evaluate`] but tuples
    /// containing labeled nulls are dropped (nulls are not certain values).
    pub fn evaluate_certain(&self, inst: &Instance) -> Vec<Vec<Term>> {
        self.evaluate(inst)
            .into_iter()
            .filter(|tup| tup.iter().all(|t| t.is_const()))
            .collect()
    }

    /// Boolean satisfaction: does the body embed into the instance?
    pub fn holds_on(&self, inst: &Instance) -> bool {
        crate::homomorphism::exists_hom(&self.body, inst)
    }

    /// Freeze the query into its canonical instance: each body variable maps
    /// to a fresh labeled null, constants stay fixed. Returns the instance
    /// and the variable-to-null mapping.
    pub fn freeze(&self) -> (Instance, FxHashMap<Sym, u32>) {
        let mut inst = Instance::new();
        let mut map: FxHashMap<Sym, u32> = FxHashMap::default();
        // Allocate nulls in first-occurrence order for determinism.
        for v in self.body_vars() {
            let n = inst.fresh_null().as_null().expect("fresh null");
            map.insert(v, n);
        }
        for a in &self.body {
            inst.insert(a.map_terms(|t| match t {
                Term::Var(v) => Term::Null(map[&v]),
                other => other,
            }));
        }
        (inst, map)
    }

    /// Rebuild a query from a chased frozen instance.
    ///
    /// `head_args` are the head terms *in frozen form* (nulls/constants);
    /// every null of the instance becomes a variable `V<id>`.
    pub fn thaw(
        inst: &Instance,
        head_pred: impl Into<Sym>,
        head_args: &[Term],
    ) -> Result<ConjunctiveQuery, CoreError> {
        let unfreeze = |t: Term| match t {
            Term::Null(n) => Term::var(&format!("V{n}")),
            other => other,
        };
        let body: Vec<Atom> = inst
            .sorted_atoms()
            .into_iter()
            .map(|a| a.map_terms(unfreeze))
            .collect();
        let head: Vec<Term> = head_args.iter().map(|&t| unfreeze(t)).collect();
        ConjunctiveQuery::new(head_pred, head, body)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_pred)?;
        for (i, t) in self.head_args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") <- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let q = ConjunctiveQuery::parse("q(X2) <- rail(c1,X1,Y1), fly(X1,X2,Y2)").unwrap();
        let q2 = ConjunctiveQuery::parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn head_var_must_occur_in_body() {
        assert!(ConjunctiveQuery::parse("q(X) <- E(Y,Z)").is_err());
    }

    #[test]
    fn evaluate_projects_and_dedupes() {
        let q = ConjunctiveQuery::parse("q(X) <- E(X,Y)").unwrap();
        let i = Instance::parse("E(a,b). E(a,c). E(b,c).").unwrap();
        let ans = q.evaluate(&i);
        assert_eq!(
            ans,
            vec![vec![Term::constant("a")], vec![Term::constant("b")]]
        );
    }

    #[test]
    fn certain_answers_drop_nulls() {
        let q = ConjunctiveQuery::parse("q(X) <- E(X,Y)").unwrap();
        let i = Instance::parse("E(a,b). E(_n0,c).").unwrap();
        assert_eq!(q.evaluate(&i).len(), 2);
        assert_eq!(q.evaluate_certain(&i).len(), 1);
    }

    #[test]
    fn boolean_query() {
        let q = ConjunctiveQuery::parse("q() <- E(X,X)").unwrap();
        assert!(q.is_boolean());
        assert!(q.holds_on(&Instance::parse("E(a,a).").unwrap()));
        assert!(!q.holds_on(&Instance::parse("E(a,b).").unwrap()));
    }

    #[test]
    fn freeze_maps_vars_to_nulls_and_keeps_constants() {
        let q = ConjunctiveQuery::parse("q(X) <- rail(c1,X,Y)").unwrap();
        let (inst, map) = q.freeze();
        assert_eq!(inst.len(), 1);
        let atom = &inst.atoms()[0];
        assert_eq!(atom.terms()[0], Term::constant("c1"));
        assert_eq!(atom.terms()[1], Term::Null(map[&Sym::new("X")]));
        assert_eq!(atom.terms()[2], Term::Null(map[&Sym::new("Y")]));
    }

    #[test]
    fn thaw_inverts_freeze_up_to_renaming() {
        let q = ConjunctiveQuery::parse("q(X) <- rail(c1,X,Y), fly(X,Z,W)").unwrap();
        let (inst, map) = q.freeze();
        let head = [Term::Null(map[&Sym::new("X")])];
        let q2 = ConjunctiveQuery::thaw(&inst, "q", &head).unwrap();
        // Same number of atoms, same shape: freezing q2 again yields a
        // hom-equivalent instance.
        let (inst2, _) = q2.freeze();
        assert!(crate::homomorphism::hom_equivalent(&inst, &inst2));
    }
}
