//! A minimal Fx-style hasher (the algorithm popularized by rustc's
//! `FxHashMap`), hand-rolled to avoid an extra dependency.
//!
//! Keys in this workspace are almost exclusively small integers ([`crate::Sym`]
//! ids, null ids, atom indices), for which SipHash is needlessly slow and
//! HashDoS resistance is irrelevant — inputs are trusted constraint sets and
//! synthetic instances.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher. One `u64` of state, a few cycles per write.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut set = FxHashSet::default();
        for i in 0u32..10_000 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
        for i in 0u32..10_000 {
            assert!(set.contains(&i));
        }
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"chase"), h(b"chase"));
        assert_ne!(h(b"chase"), h(b"chase "));
    }
}
