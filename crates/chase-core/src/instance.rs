//! Database instances: deduplicated, indexed sets of ground atoms over an
//! interned, columnar fact store.
//!
//! An [`Instance`] stores facts in insertion order (so chase sequences are
//! reproducible), but not as owned [`Atom`]s: every ground term is interned
//! to a [`TermId`] (constants through the process-wide [`Sym`] table, nulls
//! self-encoded — see [`TermId`]) and facts live in per-`(predicate, arity)`
//! **column-major tables**, one flat `Vec<TermId>` per argument position.
//! A fact is addressed by its [`FactId`] (its insertion index), which maps
//! through a location table to `(table, row)`.
//!
//! Everything downstream is keyed by ids instead of owned terms:
//!
//! * **dedup** — a row-content hash table (`u64` hash → fact chain) probed
//!   with a handful of `u32`s; inserting a duplicate never allocates,
//!   inserting a new fact appends to the columns instead of cloning an atom;
//! * **`by_pos`** — the `(predicate, position, TermId)` index behind
//!   [`Instance::candidates`];
//! * **composite** — registered multi-column indexes keyed by
//!   `Vec<TermId>` (see [`Instance::register_composite`]);
//! * per-predicate cardinality and per-position distinct-value statistics
//!   for the `chase-plan` join compiler.
//!
//! EGD merges ([`Instance::merge_terms`]) are id-remap passes over the
//! columns: the old rows are replayed in insertion order with `from`'s id
//! rewritten to `to`'s, through the same id-level insert — no term vector is
//! re-hashed and no atom materialized.
//!
//! The atom-level API ([`Instance::atoms`], [`Instance::iter`],
//! [`Instance::atom_at`]) materializes [`Atom`]s on demand (an O(arity)
//! gather per fact); hot paths use the id-level accessors
//! ([`Instance::fact`], [`Instance::pos_bucket`],
//! [`Instance::composite_candidates_ids`]) and touch only `u32`s.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::fx::{FxHashMap, FxHasher};
use crate::schema::{PosSet, Position, Schema};
use crate::symbol::Sym;
use crate::term::{Term, TermId};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hasher;

/// A fact's insertion index in its [`Instance`] — the currency of every
/// index bucket and candidate list.
pub type FactId = u32;

/// One composite index: key (the term ids at the mask's positions,
/// ascending by position) → fact ids.
type CompositeBuckets = FxHashMap<Vec<TermId>, Vec<FactId>>;

/// One column-major relation: all facts sharing a predicate *and* arity
/// (the store tolerates one predicate at several arities, like the old
/// atom-level store did — each gets its own table).
#[derive(Clone, Default)]
struct PredTable {
    /// One flat id vector per argument position; all the same length.
    cols: Vec<Vec<TermId>>,
    /// Row count (kept explicitly so zero-arity predicates work).
    rows: u32,
}

/// Where a [`FactId`] lives: which table, which row.
#[derive(Clone, Copy)]
struct FactLoc {
    table: u32,
    row: u32,
}

/// A database instance: a finite set of ground atoms over constants and
/// labeled nulls, stored columnar (see the module docs).
#[derive(Clone, Default)]
pub struct Instance {
    tables: Vec<PredTable>,
    /// Predicate of each table (parallel to `tables`; split out so location
    /// lookups resolving a predicate touch a dense array). Table lookup on
    /// insert is a linear scan of this vector — the number of distinct
    /// `(pred, arity)` pairs is schema-bounded and small, and a scan keeps
    /// the per-instance footprint down (tiny instances are built by the
    /// million in the brute-force oracles).
    table_preds: Vec<Sym>,
    /// [`FactId`] → location, in insertion order. Its length is the fact
    /// count.
    locs: Vec<FactLoc>,
    /// Dedup: row-content hash → the fact with that hash. Collisions (rare;
    /// the hash covers predicate, arity and every id) chain into
    /// `dedup_overflow`. Probes compare against the columns, so neither hit
    /// nor miss allocates.
    dedup: FxHashMap<u64, FactId>,
    dedup_overflow: FxHashMap<u64, Vec<FactId>>,
    by_pred: FxHashMap<Sym, Vec<FactId>>,
    by_pos: FxHashMap<(Sym, u32, TermId), Vec<FactId>>,
    /// Registered composite indexes, nested by predicate so an insert only
    /// walks its own predicate's masks: pred → position bitmask → bucket
    /// per key. Registration is sticky — once a planner asks for a mask it
    /// stays maintained across inserts and merges, so read-only matcher
    /// shards can rely on it.
    composite: FxHashMap<Sym, FxHashMap<u32, CompositeBuckets>>,
    /// Distinct-value count per `(pred, position)` — the number of live
    /// `by_pos` buckets, maintained without scanning the key space.
    distinct: FxHashMap<(Sym, u32), u32>,
    /// Bumped on every merge (which rewrites statistics in place, unlike
    /// inserts, whose effect the fact count already captures); plan caches
    /// compare it to decide when to recompile.
    merges: u64,
    next_null: u32,
    /// Reusable id buffer for the insert path (cleared per call, never
    /// shrunk) — keeps `try_insert` allocation-free after warm-up.
    scratch: Vec<TermId>,
}

/// Hash of one row's content: predicate, arity, then every id. The dedup
/// key — covering the arity keeps a predicate's two arities from colliding
/// structurally.
fn row_hash(pred: Sym, ids: &[TermId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.id());
    h.write_u32(ids.len() as u32);
    for &id in ids {
        h.write_u32(id.raw());
    }
    h.finish()
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Build an instance from ground atoms. Errors on a non-ground atom.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Result<Instance, CoreError> {
        let mut inst = Instance::new();
        for a in atoms {
            inst.try_insert(a)?;
        }
        Ok(inst)
    }

    /// Parse an instance from text (see [`crate::parser::parse_instance`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use chase_core::Instance;
    ///
    /// let i = Instance::parse("S(n1). E(n1,_n0).").unwrap();
    /// assert_eq!(i.len(), 2);
    /// assert_eq!(i.nulls().len(), 1);   // the labeled null _n0
    /// assert_eq!(i.domain_size(), 2);   // n1 (a constant) and _n0
    /// ```
    pub fn parse(text: &str) -> Result<Instance, CoreError> {
        crate::parser::parse_instance(text)
    }

    /// Insert a ground atom; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the atom contains a variable; use [`Instance::try_insert`]
    /// for a checked version.
    pub fn insert(&mut self, atom: Atom) -> bool {
        self.try_insert(atom)
            .expect("non-ground atom inserted into instance")
    }

    /// Insert a ground atom; returns `true` if it was new, or an error if the
    /// atom contains a variable.
    pub fn try_insert(&mut self, atom: Atom) -> Result<bool, CoreError> {
        let mut ids = std::mem::take(&mut self.scratch);
        ids.clear();
        for &t in atom.terms() {
            match TermId::from_ground(t) {
                Some(id) => ids.push(id),
                None => {
                    self.scratch = ids;
                    return Err(CoreError::NonGroundAtom(atom.to_string()));
                }
            }
        }
        let new = self.insert_ids(atom.pred(), &ids);
        self.scratch = ids;
        Ok(new)
    }

    /// Insert a fact given as a predicate plus interned term ids — the
    /// id-level insert every other insert path bottoms out in. Returns
    /// `true` if the fact was new.
    ///
    /// The ids must come from [`TermId::from_ground`] (the merge remap and
    /// the micro-benchmarks use this to bypass atom materialization
    /// entirely).
    pub fn insert_ids(&mut self, pred: Sym, ids: &[TermId]) -> bool {
        let hash = row_hash(pred, ids);
        if self.probe(hash, pred, ids).is_some() {
            return false;
        }
        let fact = FactId::try_from(self.locs.len()).expect("instance too large");
        // Locate (or create) the `(pred, arity)` table and append the row.
        let table = match self
            .table_preds
            .iter()
            .zip(&self.tables)
            .position(|(&p, t)| p == pred && t.cols.len() == ids.len())
        {
            Some(t) => t as u32,
            None => {
                let t = u32::try_from(self.tables.len()).expect("too many relations");
                self.tables.push(PredTable {
                    cols: vec![Vec::new(); ids.len()],
                    rows: 0,
                });
                self.table_preds.push(pred);
                t
            }
        };
        let tbl = &mut self.tables[table as usize];
        let row = tbl.rows;
        for (col, &id) in tbl.cols.iter_mut().zip(ids) {
            col.push(id);
        }
        tbl.rows += 1;
        self.locs.push(FactLoc { table, row });
        // Positional index + distinct statistics, then composite buckets,
        // then the per-predicate bucket — the same maintenance order (and
        // therefore the same bucket contents) as the old atom-keyed store.
        for (i, &id) in ids.iter().enumerate() {
            if let Some(n) = id.as_null() {
                self.next_null = self.next_null.max(n + 1);
            }
            let bucket = self.by_pos.entry((pred, i as u32, id)).or_default();
            if bucket.is_empty() {
                *self.distinct.entry((pred, i as u32)).or_insert(0) += 1;
            }
            bucket.push(fact);
        }
        if let Some(masks) = self.composite.get_mut(&pred) {
            for (&mask, buckets) in masks.iter_mut() {
                if let Some(key) = composite_key_ids(ids, mask) {
                    buckets.entry(key).or_default().push(fact);
                }
            }
        }
        self.by_pred.entry(pred).or_default().push(fact);
        match self.dedup.entry(hash) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(fact);
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                self.dedup_overflow.entry(hash).or_default().push(fact);
            }
        }
        true
    }

    /// Insert a batch of ground atoms atomically; returns the atoms that
    /// were actually new (the batch *delta*), in insertion order.
    ///
    /// The whole batch is validated up front: if any atom contains a
    /// variable, an error is returned and the instance is left untouched —
    /// unlike a loop over [`Instance::try_insert`], which would stop
    /// half-way. Duplicates (against the store *and* within the batch)
    /// simply don't appear in the returned delta, so the result is exactly
    /// the atom set a delta-driven trigger pool must be re-matched against
    /// after ingesting the batch (see `chase_engine::EngineState`).
    ///
    /// # Examples
    ///
    /// ```
    /// use chase_core::{Atom, Instance};
    ///
    /// let mut i = Instance::parse("E(a,b).").unwrap();
    /// let delta = i
    ///     .insert_batch(Instance::parse("E(a,b). E(b,c).").unwrap().atoms())
    ///     .unwrap();
    /// assert_eq!(delta.len(), 1); // E(a,b) was already present
    /// assert_eq!(i.len(), 2);
    /// ```
    pub fn insert_batch(
        &mut self,
        atoms: impl IntoIterator<Item = Atom>,
    ) -> Result<Vec<Atom>, CoreError> {
        let batch: Vec<Atom> = atoms.into_iter().collect();
        if let Some(bad) = batch.iter().find(|a| !a.is_ground()) {
            return Err(CoreError::NonGroundAtom(bad.to_string()));
        }
        // Groundness is validated; insert through the id-level path and
        // move (never clone) the atoms that turn out to be new into the
        // delta — duplicates cost an intern + probe and nothing else.
        let mut added = Vec::new();
        let mut ids = std::mem::take(&mut self.scratch);
        for a in batch {
            ids.clear();
            ids.extend(
                a.terms()
                    .iter()
                    .map(|&t| TermId::from_ground(t).expect("batch validated ground")),
            );
            if self.insert_ids(a.pred(), &ids) {
                added.push(a);
            }
        }
        self.scratch = ids;
        Ok(added)
    }

    /// The fact with this exact content, if present (dedup probe).
    fn probe(&self, hash: u64, pred: Sym, ids: &[TermId]) -> Option<FactId> {
        let eq = |f: FactId| {
            let loc = self.locs[f as usize];
            let tbl = &self.tables[loc.table as usize];
            self.table_preds[loc.table as usize] == pred
                && tbl.cols.len() == ids.len()
                && tbl
                    .cols
                    .iter()
                    .zip(ids)
                    .all(|(col, &id)| col[loc.row as usize] == id)
        };
        let &first = self.dedup.get(&hash)?;
        if eq(first) {
            return Some(first);
        }
        self.dedup_overflow
            .get(&hash)?
            .iter()
            .copied()
            .find(|&f| eq(f))
    }

    /// Does the instance contain this exact atom?
    pub fn contains(&self, atom: &Atom) -> bool {
        let mut ids = Vec::with_capacity(atom.arity());
        for &t in atom.terms() {
            match TermId::from_ground(t) {
                Some(id) => ids.push(id),
                None => return false,
            }
        }
        self.probe(row_hash(atom.pred(), &ids), atom.pred(), &ids)
            .is_some()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// True iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Facts in insertion order, materialized.
    ///
    /// This gathers every fact out of the columns into owned [`Atom`]s —
    /// O(total terms). Fine for snapshots handed to instance-level
    /// homomorphism searches or sharded enumeration; per-fact hot paths
    /// should use [`Instance::fact`] instead.
    pub fn atoms(&self) -> Vec<Atom> {
        self.iter().collect()
    }

    /// Iterate over facts in insertion order, materializing each.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Atom> + '_ {
        (0..self.locs.len() as u32).map(|f| self.atom_at(f))
    }

    /// Facts with the given predicate, in insertion order.
    ///
    /// Routed through the per-predicate index: O(k) in the number of
    /// `pred`-facts, independent of the instance size (pinned by
    /// `with_pred_is_index_backed` below — per-predicate iteration is on the
    /// planner's statistics path and must never degrade to a full scan).
    pub fn with_pred(&self, pred: Sym) -> impl ExactSizeIterator<Item = Atom> + '_ {
        self.by_pred
            .get(&pred)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| self.atom_at(i))
    }

    /// Number of facts with the given predicate — `|R|`, in O(1).
    pub fn pred_cardinality(&self, pred: Sym) -> usize {
        self.by_pred.get(&pred).map_or(0, Vec::len)
    }

    /// Number of distinct terms occurring at `(pred, pos)`, in O(1).
    ///
    /// Maintained incrementally as `by_pos` buckets are created; after a
    /// merge the counters are rebuilt alongside the indexes. This is the
    /// per-position selectivity statistic the join planner divides by.
    pub fn distinct_at(&self, pred: Sym, pos: usize) -> usize {
        self.distinct
            .get(&(pred, pos as u32))
            .map_or(0, |&n| n as usize)
    }

    /// Number of merges ([`Instance::merge_terms`]) performed so far.
    ///
    /// Merges rewrite cardinalities and distinct counts in place without
    /// necessarily moving the fact count, so plan caches recompile when this
    /// moves (growth is separately captured by [`Instance::stats_epoch`]).
    pub fn merge_epoch(&self) -> u64 {
        self.merges
    }

    /// The statistics epoch: the bit length of the fact count.
    ///
    /// Grows by one each time the instance doubles, so a plan cache that
    /// recompiles on epoch change re-reads the statistics O(log n) times over
    /// a run instead of every step. Stale plans remain *correct* — only
    /// their cost estimates age.
    pub fn stats_epoch(&self) -> u32 {
        u64::BITS - (self.locs.len() as u64).leading_zeros()
    }

    /// Register a composite (multi-column) index for `pred` over the
    /// positions set in `mask` (bit `i` = argument position `i`).
    ///
    /// Backfills from the existing `pred`-facts on first registration (O(k))
    /// and is maintained incrementally by every later insert and rebuilt on
    /// merges. Registering an already-registered mask is a no-op. Masks with
    /// fewer than two bits are rejected (the positional index already serves
    /// them); positions beyond an atom's arity simply never match.
    pub fn register_composite(&mut self, pred: Sym, mask: u32) {
        if mask.count_ones() < 2
            || self
                .composite
                .get(&pred)
                .is_some_and(|m| m.contains_key(&mask))
        {
            return;
        }
        let mut buckets = CompositeBuckets::default();
        if let Some(idxs) = self.by_pred.get(&pred) {
            for &i in idxs {
                let loc = self.locs[i as usize];
                let tbl = &self.tables[loc.table as usize];
                if let Some(key) = composite_key_row(tbl, loc.row, mask) {
                    buckets.entry(key).or_default().push(i);
                }
            }
        }
        self.composite
            .entry(pred)
            .or_default()
            .insert(mask, buckets);
    }

    /// Candidate facts whose arguments at the positions of a registered
    /// `(pred, mask)` composite index equal `key` (the terms at those
    /// positions, ascending). Returns `None` when the mask was never
    /// registered — callers fall back to [`Instance::candidates`].
    pub fn composite_candidates(&self, pred: Sym, mask: u32, key: &[Term]) -> Option<&[FactId]> {
        let mut ids = Vec::with_capacity(key.len());
        for &t in key {
            // A non-ground key term can equal no stored id.
            ids.push(TermId::from_ground(t).unwrap_or(TermId::NEVER));
        }
        self.composite_candidates_ids(pred, mask, &ids)
    }

    /// [`Instance::composite_candidates`] keyed by interned ids — the form
    /// the planned executor uses, no term conversion on the hot path.
    pub fn composite_candidates_ids(
        &self,
        pred: Sym,
        mask: u32,
        key: &[TermId],
    ) -> Option<&[FactId]> {
        let buckets = self.composite.get(&pred)?.get(&mask)?;
        Some(buckets.get(key).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// The composite masks currently registered for `pred` (planner
    /// introspection and tests).
    pub fn registered_composites(&self, pred: Sym) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .composite
            .get(&pred)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Indices of candidate facts for a `pred`-atom whose argument at each
    /// listed `(index, term)` pair is already fixed. Returns the smallest
    /// applicable index bucket (the caller still has to verify the full
    /// match). With no fixed positions this is the per-predicate bucket.
    pub fn candidates(&self, pred: Sym, fixed: &[(usize, Term)]) -> &[FactId] {
        if fixed.is_empty() {
            return self.pred_bucket(pred);
        }
        let mut best: Option<&[FactId]> = None;
        for &(i, t) in fixed {
            let id = TermId::from_ground(t).unwrap_or(TermId::NEVER);
            let bucket = self.pos_bucket(pred, i, id);
            if best.is_none_or(|b| bucket.len() < b.len()) {
                best = Some(bucket);
            }
            if bucket.is_empty() {
                break;
            }
        }
        best.unwrap_or(&[])
    }

    /// All facts of `pred`, in insertion order — the per-predicate bucket.
    pub fn pred_bucket(&self, pred: Sym) -> &[FactId] {
        self.by_pred.get(&pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The `(pred, position, id)` bucket: facts whose argument at `pos` is
    /// exactly `id`, in insertion order. The id-level positional index the
    /// planned executor scans.
    pub fn pos_bucket(&self, pred: Sym, pos: usize, id: TermId) -> &[FactId] {
        self.by_pos
            .get(&(pred, pos as u32, id))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Fact at a raw index, materialized (used with
    /// [`Instance::candidates`]); hot paths use [`Instance::fact`].
    pub fn atom_at(&self, idx: FactId) -> Atom {
        let view = self.fact(idx);
        Atom::new(
            view.pred(),
            (0..view.arity()).map(|i| view.term(i)).collect(),
        )
    }

    /// Zero-copy view of the fact at `idx`: predicate, arity, and per-column
    /// id access without materializing an [`Atom`].
    pub fn fact(&self, idx: FactId) -> FactView<'_> {
        let loc = self.locs[idx as usize];
        FactView {
            table: &self.tables[loc.table as usize],
            pred: self.table_preds[loc.table as usize],
            row: loc.row as usize,
        }
    }

    /// A fresh labeled null, never used in this instance before.
    pub fn fresh_null(&mut self) -> Term {
        let t = Term::Null(self.next_null);
        self.next_null += 1;
        t
    }

    /// Make sure future fresh nulls are numbered at least `floor`.
    pub fn reserve_nulls(&mut self, floor: u32) {
        self.next_null = self.next_null.max(floor);
    }

    /// The domain `dom(I)`: every constant and null occurring in some fact,
    /// in sorted order.
    pub fn domain(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for tbl in &self.tables {
            for col in &tbl.cols {
                out.extend(col.iter().map(|id| id.term()));
            }
        }
        out
    }

    /// `|dom(I)|`.
    pub fn domain_size(&self) -> usize {
        self.domain().len()
    }

    /// All labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        for tbl in &self.tables {
            for col in &tbl.cols {
                out.extend(col.iter().filter_map(|id| id.as_null()));
            }
        }
        out
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for tbl in &self.tables {
            for col in &tbl.cols {
                out.extend(col.iter().filter_map(|id| id.term().as_const()));
            }
        }
        out
    }

    /// `null-pos({t}, I)` (Definition 9): the set of positions at which `t`
    /// occurs in the instance.
    pub fn positions_of(&self, t: Term) -> PosSet {
        let mut out = PosSet::new();
        let Some(id) = TermId::from_ground(t) else {
            return out;
        };
        for (ti, tbl) in self.tables.iter().enumerate() {
            for (i, col) in tbl.cols.iter().enumerate() {
                if col.contains(&id) {
                    out.insert(Position::new(self.table_preds[ti], i));
                }
            }
        }
        out
    }

    /// Replace every occurrence of `from` by `to` (the EGD merge primitive).
    ///
    /// An id-remap pass over the columns: the old rows are replayed in
    /// insertion order with `from`'s id rewritten to `to`'s through the
    /// id-level insert, so rows that collapse onto existing rows are
    /// deduplicated and every index is rebuilt — without materializing or
    /// re-hashing a single atom. Returns the number of facts that were
    /// rewritten.
    pub fn merge_terms(&mut self, from: Term, to: Term) -> usize {
        if from == to {
            return 0;
        }
        // A variable `from` can occur in no fact, but the old atom-level
        // store still counted the call as a merge (rebuilding everything);
        // keep that epoch behaviour. A variable `to` is checked at rewrite
        // time below — replacing an occurring term by a non-ground one
        // panicked in the old store (the replay hit `insert`'s ground
        // check) and must not silently store the NEVER sentinel here.
        let from_id = TermId::from_ground(from).unwrap_or(TermId::NEVER);
        let to_id = TermId::from_ground(to).unwrap_or(TermId::NEVER);
        let to_is_ground = to.is_ground();
        let tables = std::mem::take(&mut self.tables);
        let table_preds = std::mem::take(&mut self.table_preds);
        let locs = std::mem::take(&mut self.locs);
        self.dedup.clear();
        self.dedup_overflow.clear();
        self.by_pred.clear();
        self.by_pos.clear();
        self.distinct.clear();
        // Composite registrations survive the merge (read-only matcher code
        // relies on a registered mask staying queryable); only the buckets
        // are rebuilt, by the id-level inserts below.
        for masks in self.composite.values_mut() {
            for buckets in masks.values_mut() {
                buckets.clear();
            }
        }
        let next_null = self.next_null;
        let mut ids = std::mem::take(&mut self.scratch);
        let mut rewritten = 0;
        for loc in &locs {
            let tbl = &tables[loc.table as usize];
            ids.clear();
            let mut changed = false;
            for col in &tbl.cols {
                let id = col[loc.row as usize];
                if id == from_id {
                    assert!(
                        to_is_ground,
                        "merge target must be ground, got {to} for occurring term {from}"
                    );
                    changed = true;
                    ids.push(to_id);
                } else {
                    ids.push(id);
                }
            }
            if changed {
                rewritten += 1;
            }
            self.insert_ids(table_preds[loc.table as usize], &ids);
        }
        self.scratch = ids;
        self.next_null = self.next_null.max(next_null);
        self.merges += 1;
        rewritten
    }

    /// The schema induced by the facts.
    pub fn schema(&self) -> Result<Schema, CoreError> {
        let mut s = Schema::new();
        // Tables are created in first-occurrence order, so an arity
        // conflict reports the earliest arity as "expected", like the old
        // per-atom observation did.
        for (ti, tbl) in self.tables.iter().enumerate() {
            s.observe(self.table_preds[ti], tbl.cols.len())?;
        }
        Ok(s)
    }

    /// A read-only view of this instance for concurrent matching.
    ///
    /// Between chase steps the instance — including its per-predicate and
    /// per-`(predicate, position, id)` indexes — is immutable, so a view
    /// taken then is a consistent *snapshot* of the position index that any
    /// number of worker threads may query through [`Instance::candidates`]
    /// concurrently (see the `Sync` assertion in this module). The view is
    /// `Copy` and borrows the instance, so the borrow checker retires every
    /// outstanding snapshot before the next mutating step can run.
    pub fn view(&self) -> InstanceView<'_> {
        InstanceView(self)
    }

    /// Facts in a canonical sorted order (for display and comparison).
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.iter().collect();
        v.sort_by(|a, b| {
            a.pred()
                .as_str()
                .cmp(b.pred().as_str())
                .then_with(|| a.terms().cmp(b.terms()))
        });
        v
    }
}

/// The composite-index key of a row under `mask`: its ids at the mask's
/// positions, ascending. `None` when the mask addresses a position beyond
/// the row's arity (such a fact can never match a pattern bound at that
/// position, so it is simply not indexed).
fn composite_key_ids(ids: &[TermId], mask: u32) -> Option<Vec<TermId>> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        key.push(*ids.get(i)?);
        m &= m - 1;
    }
    Some(key)
}

/// [`composite_key_ids`] reading straight out of a table row.
fn composite_key_row(tbl: &PredTable, row: u32, mask: u32) -> Option<Vec<TermId>> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        key.push(tbl.cols.get(i)?[row as usize]);
        m &= m - 1;
    }
    Some(key)
}

/// A borrowed view of one stored fact: predicate, arity and per-position
/// term access without materializing an [`Atom`].
///
/// This is what the homomorphism searcher and the planned executor match
/// candidates against — [`FactView::term_id`] is a column load, so
/// verifying a candidate position by position touches only `u32`s.
#[derive(Clone, Copy)]
pub struct FactView<'a> {
    table: &'a PredTable,
    pred: Sym,
    row: usize,
}

impl FactView<'_> {
    /// The fact's predicate.
    pub fn pred(&self) -> Sym {
        self.pred
    }

    /// The fact's arity.
    pub fn arity(&self) -> usize {
        self.table.cols.len()
    }

    /// The interned id at position `pos`.
    ///
    /// # Panics
    /// Panics when `pos` is out of the fact's arity.
    #[inline]
    pub fn term_id(&self, pos: usize) -> TermId {
        self.table.cols[pos][self.row]
    }

    /// The term at position `pos` (an O(1) id round-trip).
    ///
    /// # Panics
    /// Panics when `pos` is out of the fact's arity.
    #[inline]
    pub fn term(&self, pos: usize) -> Term {
        self.term_id(pos).term()
    }
}

/// A read-only, thread-shareable snapshot of an [`Instance`] (see
/// [`Instance::view`]).
///
/// Dereferences to the instance, exposing the whole query API
/// (`candidates`, `fact`, `with_pred`, …) with no way to mutate. The
/// parallel matching engine hands one to its revalidation workers, which
/// query the snapshot's position index concurrently; its other sharded
/// paths share `&Instance` through the run state under the same `Sync`
/// contract (asserted below).
#[derive(Clone, Copy)]
pub struct InstanceView<'a>(&'a Instance);

impl<'a> InstanceView<'a> {
    /// The underlying instance.
    pub fn instance(&self) -> &'a Instance {
        self.0
    }
}

impl std::ops::Deref for InstanceView<'_> {
    type Target = Instance;

    fn deref(&self) -> &Instance {
        self.0
    }
}

// The contract the parallel chase engine builds on: instances (and therefore
// views of them) can be shared across matcher threads. `Sym` is an index
// into the process-wide interner, which is guarded by a `parking_lot`-style
// `RwLock`, `TermId` is plain data, so everything an instance holds is
// plain shareable data.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Instance>();
    assert_sync::<InstanceView<'_>>();
};

impl PartialEq for Instance {
    /// Set equality over facts (insertion order and null counters ignored).
    fn eq(&self, other: &Instance) -> bool {
        if self.locs.len() != other.locs.len() {
            return false;
        }
        // Both sides are duplicate-free, so equal cardinality plus
        // one-sided containment is set equality.
        let mut ids: Vec<TermId> = Vec::new();
        for (ti, tbl) in self.tables.iter().enumerate() {
            let pred = self.table_preds[ti];
            for row in 0..tbl.rows {
                ids.clear();
                ids.extend(tbl.cols.iter().map(|col| col[row as usize]));
                if other.probe(row_hash(pred, &ids), pred, &ids).is_none() {
                    return false;
                }
            }
        }
        true
    }
}

impl Eq for Instance {}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in self.sorted_atoms() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{a}.")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{self}}}")
    }
}

impl Extend<Atom> for Instance {
    fn extend<T: IntoIterator<Item = Atom>>(&mut self, iter: T) {
        for a in iter {
            self.insert(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca(pred: &str, terms: &[&str]) -> Atom {
        Atom::new(pred, terms.iter().map(|t| Term::constant(t)).collect())
    }

    #[test]
    fn insert_dedupes() {
        let mut i = Instance::new();
        assert!(i.insert(ca("E", &["a", "b"])));
        assert!(!i.insert(ca("E", &["a", "b"])));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn insert_batch_is_atomic_and_returns_the_delta() {
        let mut i = Instance::parse("E(a,b). S(a).").unwrap();
        let delta = i
            .insert_batch(vec![
                ca("E", &["a", "b"]),
                ca("E", &["b", "c"]),
                ca("S", &["b"]),
            ])
            .unwrap();
        assert_eq!(delta, vec![ca("E", &["b", "c"]), ca("S", &["b"])]);
        assert_eq!(i.len(), 4);
        // In-batch duplicates collapse into one delta entry.
        let delta = i
            .insert_batch(vec![ca("T", &["x"]), ca("T", &["x"])])
            .unwrap();
        assert_eq!(delta.len(), 1);
        // A non-ground atom anywhere in the batch rejects the whole batch.
        let before = i.len();
        let res = i.insert_batch(vec![ca("T", &["y"]), Atom::new("T", vec![Term::var("X")])]);
        assert!(res.is_err());
        assert_eq!(i.len(), before, "failed batch must not partially apply");
    }

    #[test]
    fn rejects_variables() {
        let mut i = Instance::new();
        let res = i.try_insert(Atom::new("E", vec![Term::var("X")]));
        assert!(res.is_err());
    }

    #[test]
    fn fresh_nulls_avoid_existing_ids() {
        let mut i = Instance::new();
        i.insert(Atom::new("S", vec![Term::null(7)]));
        assert_eq!(i.fresh_null(), Term::null(8));
        assert_eq!(i.fresh_null(), Term::null(9));
    }

    #[test]
    fn atoms_round_trip_in_insertion_order() {
        let mut i = Instance::new();
        let a = Atom::new("E", vec![Term::constant("a"), Term::null(0)]);
        let b = ca("S", &["a"]);
        let c = ca("E", &["a", "b"]);
        i.insert(a.clone());
        i.insert(b.clone());
        i.insert(c.clone());
        assert_eq!(i.atoms(), vec![a.clone(), b, c]);
        assert_eq!(i.atom_at(0), a);
        let v = i.fact(0);
        assert_eq!(v.pred(), Sym::new("E"));
        assert_eq!(v.arity(), 2);
        assert_eq!(v.term(0), Term::constant("a"));
        assert_eq!(v.term_id(1), TermId::from_ground(Term::null(0)).unwrap());
    }

    #[test]
    fn mixed_arity_predicates_coexist() {
        // The old atom-level store tolerated one predicate at two arities;
        // the columnar store keeps that (separate tables, shared buckets).
        let mut i = Instance::new();
        i.insert(ca("R", &["a"]));
        i.insert(ca("R", &["a", "b"]));
        i.insert(ca("R", &["b"]));
        assert_eq!(i.len(), 3);
        assert_eq!(i.pred_cardinality(Sym::new("R")), 3);
        let atoms: Vec<Atom> = i.with_pred(Sym::new("R")).collect();
        assert_eq!(
            atoms,
            vec![ca("R", &["a"]), ca("R", &["a", "b"]), ca("R", &["b"])]
        );
        assert!(i.contains(&ca("R", &["a", "b"])));
        assert!(!i.contains(&ca("R", &["a", "c"])));
        assert!(i.schema().is_err(), "schema still reports the conflict");
    }

    #[test]
    fn candidates_uses_position_index() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("E", &["a", "c"]));
        i.insert(ca("E", &["d", "c"]));
        let all = i.candidates(Sym::new("E"), &[]);
        assert_eq!(all.len(), 3);
        let first_a = i.candidates(Sym::new("E"), &[(0, Term::constant("a"))]);
        assert_eq!(first_a.len(), 2);
        let both = i.candidates(
            Sym::new("E"),
            &[(0, Term::constant("d")), (1, Term::constant("c"))],
        );
        assert_eq!(both.len(), 1);
        let none = i.candidates(Sym::new("E"), &[(0, Term::constant("zzz"))]);
        assert!(none.is_empty());
    }

    #[test]
    fn merge_rewrites_and_dedupes() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        i.insert(Atom::new(
            "E",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        let rewritten = i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(rewritten, 1);
        assert_eq!(i.len(), 1);
        assert!(i.contains(&ca("E", &["a", "b"])));
        // Null counter still advances past the merged null.
        assert!(i.fresh_null().as_null().unwrap() >= 1);
    }

    /// The position index must agree with a brute-force scan — the
    /// delta-driven engine trusts `candidates` to seed trigger re-matching,
    /// so a stale bucket after a merge would silently shrink the trigger
    /// set.
    fn assert_index_consistent(i: &Instance) {
        let atoms = i.atoms();
        let mut preds: BTreeSet<Sym> = BTreeSet::new();
        for a in &atoms {
            preds.insert(a.pred());
        }
        for &p in &preds {
            for t in i.domain() {
                let max_arity = atoms
                    .iter()
                    .filter(|a| a.pred() == p)
                    .map(|a| a.terms().len())
                    .max()
                    .unwrap_or(0);
                for pos in 0..max_arity {
                    let indexed: Vec<u32> = i.candidates(p, &[(pos, t)]).to_vec();
                    let scanned: Vec<u32> = atoms
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.pred() == p && a.terms().get(pos) == Some(&t))
                        .map(|(idx, _)| idx as u32)
                        .collect();
                    assert_eq!(
                        indexed, scanned,
                        "stale index bucket for ({p}, {pos}, {t}) in {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_keeps_position_index_consistent() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        i.insert(Atom::new("E", vec![Term::null(0), Term::constant("c")]));
        i.insert(Atom::new(
            "E",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        i.insert(Atom::new("S", vec![Term::null(0)]));
        i.insert(Atom::new("S", vec![Term::constant("b")]));
        assert_index_consistent(&i);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_index_consistent(&i);
        // The merged-away null must have vanished from every bucket.
        assert!(i
            .candidates(Sym::new("E"), &[(0, Term::null(0))])
            .is_empty());
        assert!(i
            .candidates(Sym::new("E"), &[(1, Term::null(0))])
            .is_empty());
        assert!(i
            .candidates(Sym::new("S"), &[(0, Term::null(0))])
            .is_empty());
        // Chained merges (null into null, then into a constant) stay clean.
        let mut j = Instance::new();
        j.insert(Atom::new("E", vec![Term::null(1), Term::null(2)]));
        j.insert(Atom::new("E", vec![Term::null(2), Term::null(1)]));
        j.merge_terms(Term::null(2), Term::null(1));
        assert_index_consistent(&j);
        j.merge_terms(Term::null(1), Term::constant("x"));
        assert_index_consistent(&j);
        assert!(j.contains(&ca("E", &["x", "x"])));
        assert_eq!(j.len(), 1);
    }

    #[test]
    #[should_panic(expected = "merge target must be ground")]
    fn merge_to_a_variable_panics_when_occurring() {
        // The old owned-atom store hit `insert`'s ground check when the
        // replay produced a non-ground atom; the id-remap path must not
        // silently store the NEVER sentinel instead.
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.merge_terms(Term::constant("b"), Term::var("X"));
    }

    #[test]
    fn merge_from_a_variable_is_an_indexed_no_op() {
        // A variable occurs in no fact: nothing rewrites, but the call
        // still counts as a merge epoch (like the old store).
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        assert_eq!(i.merge_terms(Term::var("X"), Term::constant("c")), 0);
        assert_eq!(i.merge_epoch(), 1);
        assert_eq!(i.len(), 1);
    }

    /// `with_pred` must be served by the per-predicate index, not a scan
    /// over all atoms — after merges included.
    #[test]
    fn with_pred_is_index_backed() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("S", &["a"]));
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        let e: Vec<Atom> = i.with_pred(Sym::new("E")).collect();
        assert_eq!(e.len(), 2); // ExactSizeIterator: length known up front
        assert_eq!(i.with_pred(Sym::new("E")).len(), 2);
        assert_eq!(i.pred_cardinality(Sym::new("E")), 2);
        assert_eq!(i.pred_cardinality(Sym::new("zzz")), 0);
        let scanned: Vec<Atom> = i.iter().filter(|a| a.pred() == Sym::new("E")).collect();
        assert_eq!(e, scanned);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(i.with_pred(Sym::new("E")).len(), 1);
        assert_eq!(i.pred_cardinality(Sym::new("E")), 1);
    }

    #[test]
    fn distinct_counts_track_inserts_and_merges() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("E", &["a", "c"]));
        i.insert(ca("E", &["d", "c"]));
        let e = Sym::new("E");
        assert_eq!(i.distinct_at(e, 0), 2); // a, d
        assert_eq!(i.distinct_at(e, 1), 2); // b, c
        assert_eq!(i.distinct_at(e, 2), 0);
        assert_eq!(i.distinct_at(Sym::new("S"), 0), 0);
        // Merging c into b collapses the second column to one value.
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        assert_eq!(i.distinct_at(e, 1), 3);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(i.distinct_at(e, 1), 2);
        assert_eq!(i.distinct_at(e, 0), 2);
    }

    #[test]
    fn stats_epoch_grows_with_doubling() {
        let mut i = Instance::new();
        assert_eq!(i.stats_epoch(), 0);
        i.insert(ca("S", &["a"]));
        assert_eq!(i.stats_epoch(), 1);
        i.insert(ca("S", &["b"]));
        assert_eq!(i.stats_epoch(), 2);
        i.insert(ca("S", &["c"]));
        assert_eq!(i.stats_epoch(), 2);
        i.insert(ca("S", &["d"]));
        assert_eq!(i.stats_epoch(), 3);
        assert_eq!(i.merge_epoch(), 0);
        i.insert(Atom::new("S", vec![Term::null(0)]));
        i.merge_terms(Term::null(0), Term::constant("a"));
        assert_eq!(i.merge_epoch(), 1);
        i.merge_terms(Term::constant("a"), Term::constant("a")); // no-op
        assert_eq!(i.merge_epoch(), 1);
    }

    #[test]
    fn composite_index_matches_brute_force() {
        let mut i = Instance::new();
        i.insert(ca("T", &["a", "b", "c"]));
        i.insert(ca("T", &["a", "b", "d"]));
        i.insert(ca("T", &["a", "x", "c"]));
        i.insert(ca("T", &["y", "b", "c"]));
        let t = Sym::new("T");
        // Unregistered: None, caller falls back to the positional index.
        assert!(i.composite_candidates(t, 0b011, &[]).is_none());
        i.register_composite(t, 0b011); // columns 0 and 1
        assert_eq!(i.registered_composites(t), vec![0b011]);
        let key = vec![Term::constant("a"), Term::constant("b")];
        let got = i.composite_candidates(t, 0b011, &key).unwrap().to_vec();
        assert_eq!(got, vec![0, 1]);
        let miss = vec![Term::constant("y"), Term::constant("x")];
        assert!(i.composite_candidates(t, 0b011, &miss).unwrap().is_empty());
        // Single-column masks are rejected — the positional index serves
        // those.
        i.register_composite(t, 0b100);
        assert!(i.composite_candidates(t, 0b100, &[]).is_none());
        // Incremental maintenance on insert.
        i.insert(ca("T", &["a", "b", "e"]));
        let got = i.composite_candidates(t, 0b011, &key).unwrap().to_vec();
        assert_eq!(got, vec![0, 1, 4]);
    }

    #[test]
    fn composite_index_survives_merges() {
        let mut i = Instance::new();
        let t = Sym::new("T");
        i.insert(Atom::new(
            "T",
            vec![Term::constant("a"), Term::null(0), Term::constant("c")],
        ));
        i.insert(ca("T", &["a", "b", "c"]));
        i.insert(ca("T", &["z", "b", "c"]));
        i.register_composite(t, 0b011);
        let key_null = vec![Term::constant("a"), Term::null(0)];
        assert_eq!(
            i.composite_candidates(t, 0b011, &key_null).unwrap().len(),
            1
        );
        i.merge_terms(Term::null(0), Term::constant("b"));
        // The null key is gone, the merged atoms collapse into one bucket.
        assert!(i
            .composite_candidates(t, 0b011, &key_null)
            .unwrap()
            .is_empty());
        let key = vec![Term::constant("a"), Term::constant("b")];
        let bucket = i.composite_candidates(t, 0b011, &key).unwrap();
        assert_eq!(bucket.len(), 1);
        assert_eq!(i.atom_at(bucket[0]), ca("T", &["a", "b", "c"]));
        // Registration is sticky: inserts after the merge keep indexing.
        i.insert(ca("T", &["a", "b", "q"]));
        assert_eq!(i.composite_candidates(t, 0b011, &key).unwrap().len(), 2);
    }

    #[test]
    fn composite_key_ignores_out_of_arity_masks() {
        let mut i = Instance::new();
        i.insert(ca("S", &["a"]));
        i.insert(ca("S", &["b"]));
        let s = Sym::new("S");
        i.register_composite(s, 0b101); // bit 2 is beyond arity 1
        assert_eq!(
            i.composite_candidates(s, 0b101, &[Term::constant("a"), Term::constant("a")])
                .unwrap(),
            &[] as &[u32]
        );
    }

    #[test]
    fn domain_and_positions() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(1)]));
        i.insert(Atom::new("S", vec![Term::null(1)]));
        assert_eq!(i.domain_size(), 2);
        let pos = i.positions_of(Term::null(1));
        assert!(pos.contains(&Position::new("E", 1)));
        assert!(pos.contains(&Position::new("S", 0)));
        assert_eq!(pos.len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let i1 = Instance::from_atoms(vec![ca("E", &["a", "b"]), ca("S", &["a"])]).unwrap();
        let i2 = Instance::from_atoms(vec![ca("S", &["a"]), ca("E", &["a", "b"])]).unwrap();
        assert_eq!(i1, i2);
        let i3 = Instance::from_atoms(vec![ca("E", &["a", "b"]), ca("S", &["b"])]).unwrap();
        assert_ne!(i1, i3);
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let i = Instance::from_atoms(vec![ca("S", &["b"]), ca("E", &["a", "b"]), ca("S", &["a"])])
            .unwrap();
        assert_eq!(i.to_string(), "E(a,b). S(a). S(b).");
    }
}
