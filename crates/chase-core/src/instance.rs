//! Database instances: deduplicated, indexed sets of ground atoms over an
//! interned, columnar fact store.
//!
//! An [`Instance`] stores facts in insertion order (so chase sequences are
//! reproducible), but not as owned [`Atom`]s: every ground term is interned
//! to a [`TermId`] (constants through the process-wide [`Sym`] table, nulls
//! self-encoded — see [`TermId`]) and facts live in per-`(predicate, arity)`
//! **column-major tables**, one flat `Vec<TermId>` per argument position.
//! A fact is addressed by its [`FactId`] (its insertion index), which maps
//! through a location table to `(table, row)`.
//!
//! Everything downstream is keyed by ids instead of owned terms:
//!
//! * **dedup** — a row-content hash table (`u64` hash → fact chain) probed
//!   with a handful of `u32`s; inserting a duplicate never allocates,
//!   inserting a new fact appends to the columns instead of cloning an atom;
//! * **`by_pos`** — the `(predicate, position, TermId)` index behind
//!   [`Instance::candidates`];
//! * **composite** — registered multi-column indexes keyed by
//!   `Vec<TermId>` (see [`Instance::register_composite`]);
//! * per-predicate cardinality and per-position distinct-value statistics
//!   for the `chase-plan` join compiler.
//!
//! EGD merges ([`Instance::merge_terms`]) are **delta passes**: the
//! occurrences of `from` are located through `by_pos`, only those rows are
//! rewritten in place, and every index and statistic is patched
//! incrementally — rows that collapse onto already-present rows are removed
//! and the surviving fact ids compacted, reproducing exactly the state a
//! from-scratch replay of the rewritten insert stream would build. The
//! returned [`MergeEffect`] names the rewritten rows so engines can treat
//! a merge like any other delta.
//!
//! The atom-level API ([`Instance::atoms`], [`Instance::iter`],
//! [`Instance::atom_at`]) materializes [`Atom`]s on demand (an O(arity)
//! gather per fact); hot paths use the id-level accessors
//! ([`Instance::fact`], [`Instance::pos_bucket`],
//! [`Instance::composite_candidates_ids`]) and touch only `u32`s.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::fx::{FxHashMap, FxHasher};
use crate::schema::{PosSet, Position, Schema};
use crate::symbol::Sym;
use crate::term::{Term, TermId};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hasher;

/// A fact's insertion index in its [`Instance`] — the currency of every
/// index bucket and candidate list.
pub type FactId = u32;

/// One composite index: key (the term ids at the mask's positions,
/// ascending by position) → fact ids.
type CompositeBuckets = FxHashMap<Vec<TermId>, Vec<FactId>>;

/// One column-major relation: all facts sharing a predicate *and* arity
/// (the store tolerates one predicate at several arities, like the old
/// atom-level store did — each gets its own table).
#[derive(Clone, Default)]
pub(crate) struct PredTable {
    /// One flat id vector per argument position; all the same length.
    pub(crate) cols: Vec<Vec<TermId>>,
    /// Row count (kept explicitly so zero-arity predicates work).
    pub(crate) rows: u32,
}

/// Where a [`FactId`] lives: which table, which row.
#[derive(Clone, Copy)]
pub(crate) struct FactLoc {
    pub(crate) table: u32,
    pub(crate) row: u32,
}

/// A database instance: a finite set of ground atoms over constants and
/// labeled nulls, stored columnar (see the module docs).
#[derive(Clone, Default)]
pub struct Instance {
    pub(crate) tables: Vec<PredTable>,
    /// Predicate of each table (parallel to `tables`; split out so location
    /// lookups resolving a predicate touch a dense array). Table lookup on
    /// insert is a linear scan of this vector — the number of distinct
    /// `(pred, arity)` pairs is schema-bounded and small, and a scan keeps
    /// the per-instance footprint down (tiny instances are built by the
    /// million in the brute-force oracles).
    pub(crate) table_preds: Vec<Sym>,
    /// [`FactId`] → location, in insertion order. Its length is the fact
    /// count.
    pub(crate) locs: Vec<FactLoc>,
    /// Dedup: row-content hash → the fact with that hash. Collisions (rare;
    /// the hash covers predicate, arity and every id) chain into
    /// `dedup_overflow`. Probes compare against the columns, so neither hit
    /// nor miss allocates.
    dedup: FxHashMap<u64, FactId>,
    dedup_overflow: FxHashMap<u64, Vec<FactId>>,
    by_pred: FxHashMap<Sym, Vec<FactId>>,
    by_pos: FxHashMap<(Sym, u32, TermId), Vec<FactId>>,
    /// Registered composite indexes, nested by predicate so an insert only
    /// walks its own predicate's masks: pred → position bitmask → bucket
    /// per key. Registration is sticky — once a planner asks for a mask it
    /// stays maintained across inserts and merges, so read-only matcher
    /// shards can rely on it.
    composite: FxHashMap<Sym, FxHashMap<u32, CompositeBuckets>>,
    /// Distinct-value count per `(pred, position)` — the number of live
    /// `by_pos` buckets, maintained without scanning the key space.
    distinct: FxHashMap<(Sym, u32), u32>,
    /// Bumped on every *effective* merge — one that rewrote at least one
    /// row. A merge whose `from` occurs nowhere leaves the store untouched
    /// and does not move this counter.
    merges: u64,
    /// Bumped on every mutation of the fact set: each new fact inserted and
    /// each effective merge. Two reads of [`Instance::version`] returning
    /// the same number bracket a window in which the instance was not
    /// modified — the cheap staleness check behind copy-on-read snapshot
    /// publication in the serving layer (`chase-serve`).
    version: u64,
    pub(crate) next_null: u32,
    /// Reusable id buffer for the insert path (cleared per call, never
    /// shrunk) — keeps `try_insert` allocation-free after warm-up.
    scratch: Vec<TermId>,
}

/// The structured outcome of one EGD merge ([`Instance::merge_terms`]).
///
/// `rewritten` holds the *post-merge* [`FactId`]s of the rows whose content
/// changed and survived deduplication, ascending — exactly the delta a
/// trigger pool has to be re-matched against, which is how `chase-engine`
/// treats a merge like any other step. `collapsed` counts the rows that
/// vanished: rewritten rows that collapsed onto an already-present row,
/// plus present rows absorbed by an earlier rewritten row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeEffect {
    /// Surviving rewritten facts, by post-merge id, ascending.
    pub rewritten: Vec<FactId>,
    /// Facts removed by deduplication during the merge.
    pub collapsed: usize,
    /// The merged-away term.
    pub from: Term,
    /// The term every `from` occurrence now reads.
    pub to: Term,
}

impl MergeEffect {
    fn noop(from: Term, to: Term) -> MergeEffect {
        MergeEffect {
            rewritten: Vec::new(),
            collapsed: 0,
            from,
            to,
        }
    }

    /// Did the merge leave the instance untouched (`from` occurred in no
    /// fact, or `from == to`)? Then no index was modified and no epoch
    /// moved — callers can skip all maintenance.
    pub fn is_noop(&self) -> bool {
        self.rewritten.is_empty() && self.collapsed == 0
    }
}

/// Insert `fact` into a bucket kept sorted ascending (every index bucket
/// stores fact ids in insertion order, which is ascending id order).
fn bucket_insert(bucket: &mut Vec<FactId>, fact: FactId) {
    if let Err(i) = bucket.binary_search(&fact) {
        bucket.insert(i, fact);
    }
}

/// Remove `fact` from a sorted bucket, if present.
fn bucket_remove(bucket: &mut Vec<FactId>, fact: FactId) {
    if let Ok(i) = bucket.binary_search(&fact) {
        bucket.remove(i);
    }
}

/// Hash of one row's content: predicate, arity, then every id. The dedup
/// key — covering the arity keeps a predicate's two arities from colliding
/// structurally.
fn row_hash(pred: Sym, ids: &[TermId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.id());
    h.write_u32(ids.len() as u32);
    for &id in ids {
        h.write_u32(id.raw());
    }
    h.finish()
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Build an instance from ground atoms. Errors on a non-ground atom.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Result<Instance, CoreError> {
        let mut inst = Instance::new();
        for a in atoms {
            inst.try_insert(a)?;
        }
        Ok(inst)
    }

    /// Parse an instance from text (see [`crate::parser::parse_instance`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use chase_core::Instance;
    ///
    /// let i = Instance::parse("S(n1). E(n1,_n0).").unwrap();
    /// assert_eq!(i.len(), 2);
    /// assert_eq!(i.nulls().len(), 1);   // the labeled null _n0
    /// assert_eq!(i.domain_size(), 2);   // n1 (a constant) and _n0
    /// ```
    pub fn parse(text: &str) -> Result<Instance, CoreError> {
        crate::parser::parse_instance(text)
    }

    /// Insert a ground atom; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the atom contains a variable; use [`Instance::try_insert`]
    /// for a checked version.
    pub fn insert(&mut self, atom: Atom) -> bool {
        self.try_insert(atom)
            .expect("non-ground atom inserted into instance")
    }

    /// Insert a ground atom; returns `true` if it was new, or an error if the
    /// atom contains a variable.
    pub fn try_insert(&mut self, atom: Atom) -> Result<bool, CoreError> {
        let mut ids = std::mem::take(&mut self.scratch);
        ids.clear();
        for &t in atom.terms() {
            match TermId::from_ground(t) {
                Some(id) => ids.push(id),
                None => {
                    self.scratch = ids;
                    return Err(CoreError::NonGroundAtom(atom.to_string()));
                }
            }
        }
        let new = self.insert_ids(atom.pred(), &ids);
        self.scratch = ids;
        Ok(new)
    }

    /// Insert a fact given as a predicate plus interned term ids — the
    /// id-level insert every other insert path bottoms out in. Returns
    /// `true` if the fact was new.
    ///
    /// The ids must come from [`TermId::from_ground`] (the merge remap and
    /// the micro-benchmarks use this to bypass atom materialization
    /// entirely).
    pub fn insert_ids(&mut self, pred: Sym, ids: &[TermId]) -> bool {
        let hash = row_hash(pred, ids);
        if self.probe(hash, pred, ids).is_some() {
            return false;
        }
        let fact = FactId::try_from(self.locs.len()).expect("instance too large");
        // Locate (or create) the `(pred, arity)` table and append the row.
        let table = match self
            .table_preds
            .iter()
            .zip(&self.tables)
            .position(|(&p, t)| p == pred && t.cols.len() == ids.len())
        {
            Some(t) => t as u32,
            None => {
                let t = u32::try_from(self.tables.len()).expect("too many relations");
                self.tables.push(PredTable {
                    cols: vec![Vec::new(); ids.len()],
                    rows: 0,
                });
                self.table_preds.push(pred);
                t
            }
        };
        let tbl = &mut self.tables[table as usize];
        let row = tbl.rows;
        for (col, &id) in tbl.cols.iter_mut().zip(ids) {
            col.push(id);
        }
        tbl.rows += 1;
        self.locs.push(FactLoc { table, row });
        // Positional index + distinct statistics, then composite buckets,
        // then the per-predicate bucket — the same maintenance order (and
        // therefore the same bucket contents) as the old atom-keyed store.
        for (i, &id) in ids.iter().enumerate() {
            if let Some(n) = id.as_null() {
                self.next_null = self.next_null.max(n + 1);
            }
            let bucket = self.by_pos.entry((pred, i as u32, id)).or_default();
            if bucket.is_empty() {
                *self.distinct.entry((pred, i as u32)).or_insert(0) += 1;
            }
            bucket.push(fact);
        }
        if let Some(masks) = self.composite.get_mut(&pred) {
            for (&mask, buckets) in masks.iter_mut() {
                if let Some(key) = composite_key_ids(ids, mask) {
                    buckets.entry(key).or_default().push(fact);
                }
            }
        }
        self.by_pred.entry(pred).or_default().push(fact);
        self.dedup_insert(hash, fact);
        self.version += 1;
        true
    }

    /// Insert a batch of ground atoms atomically; returns the atoms that
    /// were actually new (the batch *delta*), in insertion order.
    ///
    /// The whole batch is validated up front: if any atom contains a
    /// variable, an error is returned and the instance is left untouched —
    /// unlike a loop over [`Instance::try_insert`], which would stop
    /// half-way. Duplicates (against the store *and* within the batch)
    /// simply don't appear in the returned delta, so the result is exactly
    /// the atom set a delta-driven trigger pool must be re-matched against
    /// after ingesting the batch (see `chase_engine::EngineState`).
    ///
    /// # Examples
    ///
    /// ```
    /// use chase_core::{Atom, Instance};
    ///
    /// let mut i = Instance::parse("E(a,b).").unwrap();
    /// let delta = i
    ///     .insert_batch(Instance::parse("E(a,b). E(b,c).").unwrap().atoms())
    ///     .unwrap();
    /// assert_eq!(delta.len(), 1); // E(a,b) was already present
    /// assert_eq!(i.len(), 2);
    /// ```
    pub fn insert_batch(
        &mut self,
        atoms: impl IntoIterator<Item = Atom>,
    ) -> Result<Vec<Atom>, CoreError> {
        let batch: Vec<Atom> = atoms.into_iter().collect();
        if let Some(bad) = batch.iter().find(|a| !a.is_ground()) {
            return Err(CoreError::NonGroundAtom(bad.to_string()));
        }
        // Groundness is validated; insert through the id-level path and
        // move (never clone) the atoms that turn out to be new into the
        // delta — duplicates cost an intern + probe and nothing else.
        let mut added = Vec::new();
        let mut ids = std::mem::take(&mut self.scratch);
        for a in batch {
            ids.clear();
            ids.extend(
                a.terms()
                    .iter()
                    .map(|&t| TermId::from_ground(t).expect("batch validated ground")),
            );
            if self.insert_ids(a.pred(), &ids) {
                added.push(a);
            }
        }
        self.scratch = ids;
        Ok(added)
    }

    /// The fact with this exact content, if present (dedup probe).
    fn probe(&self, hash: u64, pred: Sym, ids: &[TermId]) -> Option<FactId> {
        let eq = |f: FactId| {
            let loc = self.locs[f as usize];
            let tbl = &self.tables[loc.table as usize];
            self.table_preds[loc.table as usize] == pred
                && tbl.cols.len() == ids.len()
                && tbl
                    .cols
                    .iter()
                    .zip(ids)
                    .all(|(col, &id)| col[loc.row as usize] == id)
        };
        let &first = self.dedup.get(&hash)?;
        if eq(first) {
            return Some(first);
        }
        self.dedup_overflow
            .get(&hash)?
            .iter()
            .copied()
            .find(|&f| eq(f))
    }

    /// Does the instance contain this exact atom?
    pub fn contains(&self, atom: &Atom) -> bool {
        let mut ids = Vec::with_capacity(atom.arity());
        for &t in atom.terms() {
            match TermId::from_ground(t) {
                Some(id) => ids.push(id),
                None => return false,
            }
        }
        self.probe(row_hash(atom.pred(), &ids), atom.pred(), &ids)
            .is_some()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// True iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Facts in insertion order, materialized.
    ///
    /// This gathers every fact out of the columns into owned [`Atom`]s —
    /// O(total terms). Fine for snapshots handed to instance-level
    /// homomorphism searches or sharded enumeration; per-fact hot paths
    /// should use [`Instance::fact`] instead.
    pub fn atoms(&self) -> Vec<Atom> {
        self.iter().collect()
    }

    /// Iterate over facts in insertion order, materializing each.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Atom> + '_ {
        (0..self.locs.len() as u32).map(|f| self.atom_at(f))
    }

    /// Facts with the given predicate, in insertion order.
    ///
    /// Routed through the per-predicate index: O(k) in the number of
    /// `pred`-facts, independent of the instance size (pinned by
    /// `with_pred_is_index_backed` below — per-predicate iteration is on the
    /// planner's statistics path and must never degrade to a full scan).
    pub fn with_pred(&self, pred: Sym) -> impl ExactSizeIterator<Item = Atom> + '_ {
        self.by_pred
            .get(&pred)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| self.atom_at(i))
    }

    /// Number of facts with the given predicate — `|R|`, in O(1).
    pub fn pred_cardinality(&self, pred: Sym) -> usize {
        self.by_pred.get(&pred).map_or(0, Vec::len)
    }

    /// Number of distinct terms occurring at `(pred, pos)`, in O(1).
    ///
    /// Maintained incrementally as `by_pos` buckets are created and (on
    /// merges) emptied. This is the per-position selectivity statistic the
    /// join planner divides by.
    pub fn distinct_at(&self, pred: Sym, pos: usize) -> usize {
        self.distinct
            .get(&(pred, pos as u32))
            .map_or(0, |&n| n as usize)
    }

    /// Number of *effective* merges ([`Instance::merge_terms`] calls that
    /// rewrote at least one row) performed so far.
    ///
    /// Merges maintain every statistic incrementally, so this is a change
    /// counter for observability — not a recompile trigger; plan caches
    /// watch [`Instance::stats_epoch`] alone. A merge whose `from` occurs
    /// in no fact is a true no-op and does not move this counter.
    pub fn merge_epoch(&self) -> u64 {
        self.merges
    }

    /// The mutation version: bumped once per new fact inserted and once per
    /// effective merge, never decremented.
    ///
    /// Equal versions across two observations mean the fact set (and every
    /// index over it) was not modified in between — which makes a cached
    /// clone of the instance taken at version `v` still exact while
    /// `version()` still reads `v`. The `chase-serve` conductor uses this
    /// as its copy-on-read staleness check: the session actor republishes
    /// its shared read snapshot only when the version moved, so duplicate
    /// batches and read-only traffic never pay an O(instance) copy.
    ///
    /// The counter is observational only (like [`Instance::merge_epoch`]):
    /// nothing inside `chase-core` keys off it, and a clone carries its
    /// parent's version forward.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The statistics epoch: the bit length of the fact count.
    ///
    /// Grows by one each time the instance doubles, so a plan cache that
    /// recompiles on epoch change re-reads the statistics O(log n) times over
    /// a run instead of every step. Stale plans remain *correct* — only
    /// their cost estimates age.
    pub fn stats_epoch(&self) -> u32 {
        u64::BITS - (self.locs.len() as u64).leading_zeros()
    }

    /// Register a composite (multi-column) index for `pred` over the
    /// positions set in `mask` (bit `i` = argument position `i`).
    ///
    /// Backfills from the existing `pred`-facts on first registration (O(k))
    /// and is maintained incrementally by every later insert and merge.
    /// Registering an already-registered mask is a no-op. Masks with
    /// fewer than two bits are rejected (the positional index already serves
    /// them); positions beyond an atom's arity simply never match.
    pub fn register_composite(&mut self, pred: Sym, mask: u32) {
        if mask.count_ones() < 2
            || self
                .composite
                .get(&pred)
                .is_some_and(|m| m.contains_key(&mask))
        {
            return;
        }
        let mut buckets = CompositeBuckets::default();
        if let Some(idxs) = self.by_pred.get(&pred) {
            for &i in idxs {
                let loc = self.locs[i as usize];
                let tbl = &self.tables[loc.table as usize];
                if let Some(key) = composite_key_row(tbl, loc.row, mask) {
                    buckets.entry(key).or_default().push(i);
                }
            }
        }
        self.composite
            .entry(pred)
            .or_default()
            .insert(mask, buckets);
    }

    /// Candidate facts whose arguments at the positions of a registered
    /// `(pred, mask)` composite index equal `key` (the terms at those
    /// positions, ascending). Returns `None` when the mask was never
    /// registered — callers fall back to [`Instance::candidates`].
    pub fn composite_candidates(&self, pred: Sym, mask: u32, key: &[Term]) -> Option<&[FactId]> {
        let mut ids = Vec::with_capacity(key.len());
        for &t in key {
            // A non-ground key term can equal no stored id.
            ids.push(TermId::from_ground(t).unwrap_or(TermId::NEVER));
        }
        self.composite_candidates_ids(pred, mask, &ids)
    }

    /// [`Instance::composite_candidates`] keyed by interned ids — the form
    /// the planned executor uses, no term conversion on the hot path.
    pub fn composite_candidates_ids(
        &self,
        pred: Sym,
        mask: u32,
        key: &[TermId],
    ) -> Option<&[FactId]> {
        let buckets = self.composite.get(&pred)?.get(&mask)?;
        Some(buckets.get(key).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// The composite masks currently registered for `pred` (planner
    /// introspection and tests).
    pub fn registered_composites(&self, pred: Sym) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .composite
            .get(&pred)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Indices of candidate facts for a `pred`-atom whose argument at each
    /// listed `(index, term)` pair is already fixed. Returns the smallest
    /// applicable index bucket (the caller still has to verify the full
    /// match). With no fixed positions this is the per-predicate bucket.
    pub fn candidates(&self, pred: Sym, fixed: &[(usize, Term)]) -> &[FactId] {
        if fixed.is_empty() {
            return self.pred_bucket(pred);
        }
        let mut best: Option<&[FactId]> = None;
        for &(i, t) in fixed {
            let id = TermId::from_ground(t).unwrap_or(TermId::NEVER);
            let bucket = self.pos_bucket(pred, i, id);
            if best.is_none_or(|b| bucket.len() < b.len()) {
                best = Some(bucket);
            }
            if bucket.is_empty() {
                break;
            }
        }
        best.unwrap_or(&[])
    }

    /// All facts of `pred`, in insertion order — the per-predicate bucket.
    pub fn pred_bucket(&self, pred: Sym) -> &[FactId] {
        self.by_pred.get(&pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The `(pred, position, id)` bucket: facts whose argument at `pos` is
    /// exactly `id`, in insertion order. The id-level positional index the
    /// planned executor scans.
    pub fn pos_bucket(&self, pred: Sym, pos: usize, id: TermId) -> &[FactId] {
        self.by_pos
            .get(&(pred, pos as u32, id))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Fact at a raw index, materialized (used with
    /// [`Instance::candidates`]); hot paths use [`Instance::fact`].
    pub fn atom_at(&self, idx: FactId) -> Atom {
        let view = self.fact(idx);
        Atom::new(
            view.pred(),
            (0..view.arity()).map(|i| view.term(i)).collect(),
        )
    }

    /// Zero-copy view of the fact at `idx`: predicate, arity, and per-column
    /// id access without materializing an [`Atom`].
    pub fn fact(&self, idx: FactId) -> FactView<'_> {
        let loc = self.locs[idx as usize];
        FactView {
            table: &self.tables[loc.table as usize],
            pred: self.table_preds[loc.table as usize],
            row: loc.row as usize,
        }
    }

    /// A fresh labeled null, never used in this instance before.
    pub fn fresh_null(&mut self) -> Term {
        let t = Term::Null(self.next_null);
        self.next_null += 1;
        t
    }

    /// Make sure future fresh nulls are numbered at least `floor`.
    pub fn reserve_nulls(&mut self, floor: u32) {
        self.next_null = self.next_null.max(floor);
    }

    /// The domain `dom(I)`: every constant and null occurring in some fact,
    /// in sorted order.
    pub fn domain(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for tbl in &self.tables {
            for col in &tbl.cols {
                out.extend(col.iter().map(|id| id.term()));
            }
        }
        out
    }

    /// `|dom(I)|`.
    pub fn domain_size(&self) -> usize {
        self.domain().len()
    }

    /// All labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        for tbl in &self.tables {
            for col in &tbl.cols {
                out.extend(col.iter().filter_map(|id| id.as_null()));
            }
        }
        out
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for tbl in &self.tables {
            for col in &tbl.cols {
                out.extend(col.iter().filter_map(|id| id.term().as_const()));
            }
        }
        out
    }

    /// `null-pos({t}, I)` (Definition 9): the set of positions at which `t`
    /// occurs in the instance.
    pub fn positions_of(&self, t: Term) -> PosSet {
        let mut out = PosSet::new();
        let Some(id) = TermId::from_ground(t) else {
            return out;
        };
        for (ti, tbl) in self.tables.iter().enumerate() {
            for (i, col) in tbl.cols.iter().enumerate() {
                if col.contains(&id) {
                    out.insert(Position::new(self.table_preds[ti], i));
                }
            }
        }
        out
    }

    /// Replace every occurrence of `from` by `to` (the EGD merge primitive).
    ///
    /// A **delta pass**: the rows containing `from` are located through the
    /// `(pred, pos, from)` buckets of the positional index, only those rows
    /// are rewritten in place, and dedup, `by_pred`, `by_pos`, composite
    /// buckets and the cardinality/distinct statistics are patched
    /// incrementally — O(occurrences + removed-id compaction), not
    /// O(instance). Rewritten rows that collapse onto an already-present
    /// row (and present rows absorbed by an earlier rewritten row) are
    /// removed and the remaining fact ids compacted, so the resulting store
    /// is indistinguishable from replaying the whole rewritten insert
    /// stream from scratch.
    ///
    /// A merge whose `from` occurs in no fact (including a variable or
    /// `from == to`) is a true no-op: no index is touched and
    /// [`Instance::merge_epoch`] does not move, so plan caches and trigger
    /// pools stay untouched too.
    ///
    /// Returns a [`MergeEffect`] naming the surviving rewritten rows — the
    /// delta engines re-match triggers against — and the collapse count.
    ///
    /// # Panics
    /// Panics when `from` occurs in some fact but `to` is not ground (the
    /// rewrite would have to store a variable).
    pub fn merge_terms(&mut self, from: Term, to: Term) -> MergeEffect {
        if from == to {
            return MergeEffect::noop(from, to);
        }
        // A variable (never-interned) `from` occurs in no fact.
        let Some(from_id) = TermId::from_ground(from) else {
            return MergeEffect::noop(from, to);
        };
        // The occurrences of `from`, via the positional index: the union of
        // the `(pred, pos, from)` buckets over every stored column. The
        // `(pred, pos)` pairs are collected first because two tables can
        // share a predicate (mixed arities share positional buckets).
        let mut pairs: Vec<(Sym, u32)> = Vec::new();
        for (ti, tbl) in self.tables.iter().enumerate() {
            let pred = self.table_preds[ti];
            for p in 0..tbl.cols.len() as u32 {
                if !pairs.contains(&(pred, p)) {
                    pairs.push((pred, p));
                }
            }
        }
        let mut touched: Vec<FactId> = Vec::new();
        for &(pred, p) in &pairs {
            if let Some(bucket) = self.by_pos.get(&(pred, p, from_id)) {
                touched.extend_from_slice(bucket);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        if touched.is_empty() {
            return MergeEffect::noop(from, to);
        }
        let to_id = match TermId::from_ground(to) {
            Some(id) => id,
            // The old owned-atom store hit `insert`'s ground check when the
            // replay produced a non-ground atom; the delta path must not
            // silently store the NEVER sentinel instead.
            None => panic!("merge target must be ground, got {to} for occurring term {from}"),
        };

        // Phase 1 — classify, replay-faithfully: walking the touched rows
        // in id order, the first row to reach a content keeps it and later
        // duplicates collapse; a rewritten row also *absorbs* a later
        // untouched row that already carried its post-rewrite content.
        // Read-only: the store still answers pre-merge probes here.
        struct RowPlan {
            fact: FactId,
            old_hash: u64,
            new_hash: u64,
            /// Positions where `from` occurred in this row.
            from_positions: Vec<u32>,
            /// `false`: collapses onto an earlier row and is removed.
            survives: bool,
        }
        let mut plans: Vec<RowPlan> = Vec::with_capacity(touched.len());
        // Untouched rows absorbed by an earlier rewritten row.
        let mut absorbed: Vec<FactId> = Vec::new();
        // Contents minted so far this merge: new row hash → the surviving
        // touched rows now carrying it (chained on hash collision).
        let mut fresh: FxHashMap<u64, Vec<FactId>> = FxHashMap::default();
        let mut ids = std::mem::take(&mut self.scratch);
        for &t in &touched {
            let loc = self.locs[t as usize];
            let tbl = &self.tables[loc.table as usize];
            let pred = self.table_preds[loc.table as usize];
            ids.clear();
            let mut from_positions = Vec::new();
            let mut oh = FxHasher::default();
            let mut nh = FxHasher::default();
            oh.write_u32(pred.id());
            nh.write_u32(pred.id());
            oh.write_u32(tbl.cols.len() as u32);
            nh.write_u32(tbl.cols.len() as u32);
            for (p, col) in tbl.cols.iter().enumerate() {
                let id = col[loc.row as usize];
                oh.write_u32(id.raw());
                if id == from_id {
                    from_positions.push(p as u32);
                    nh.write_u32(to_id.raw());
                    ids.push(to_id);
                } else {
                    nh.write_u32(id.raw());
                    ids.push(id);
                }
            }
            let (old_hash, new_hash) = (oh.finish(), nh.finish());
            let mut survives = true;
            if let Some(owners) = fresh.get(&new_hash) {
                // An earlier touched row already owns this content (its
                // stored cells still read `from`, so compare through the
                // rewrite).
                survives = !owners
                    .iter()
                    .any(|&o| self.row_matches_rewritten(o, pred, &ids, from_id, to_id));
            }
            if survives {
                if let Some(j) = self.probe(new_hash, pred, &ids) {
                    // A pre-merge row already carries the new content; it
                    // can only be an untouched row (touched contents still
                    // contain `from`). Earlier row wins, exactly like the
                    // replay.
                    if j < t {
                        survives = false;
                    } else {
                        absorbed.push(j);
                    }
                }
            }
            if survives {
                fresh.entry(new_hash).or_default().push(t);
            }
            plans.push(RowPlan {
                fact: t,
                old_hash,
                new_hash,
                from_positions,
                survives,
            });
        }
        let mut removed: Vec<FactId> = absorbed.clone();
        removed.extend(plans.iter().filter(|p| !p.survives).map(|p| p.fact));
        removed.sort_unstable();

        // Phase 2 — apply. Dedup first (removals before insertions, since
        // an absorbed row's entry sits under the exact hash its absorber is
        // about to claim), while the absorbed rows still hold their cells.
        for plan in &plans {
            self.dedup_remove(plan.old_hash, plan.fact);
        }
        for &j in &absorbed {
            let loc = self.locs[j as usize];
            let tbl = &self.tables[loc.table as usize];
            ids.clear();
            ids.extend(tbl.cols.iter().map(|c| c[loc.row as usize]));
            let hash = row_hash(self.table_preds[loc.table as usize], &ids);
            self.dedup_remove(hash, j);
        }
        for plan in plans.iter().filter(|p| p.survives) {
            self.dedup_insert(plan.new_hash, plan.fact);
        }

        // Positional index: every `(pred, pos, from)` bucket empties
        // wholesale — its members are exactly the touched rows.
        for &(pred, p) in &pairs {
            if self.by_pos.remove(&(pred, p, from_id)).is_some() {
                let d = self
                    .distinct
                    .get_mut(&(pred, p))
                    .expect("live bucket is counted");
                *d -= 1;
                if *d == 0 {
                    self.distinct.remove(&(pred, p));
                }
            }
        }
        // Survivors move into the `to` buckets at their rewritten
        // positions; collapsing rows leave every bucket they were in.
        for plan in &plans {
            let loc = self.locs[plan.fact as usize];
            let pred = self.table_preds[loc.table as usize];
            if plan.survives {
                for &p in &plan.from_positions {
                    let bucket = self.by_pos.entry((pred, p, to_id)).or_default();
                    if bucket.is_empty() {
                        *self.distinct.entry((pred, p)).or_insert(0) += 1;
                    }
                    bucket_insert(bucket, plan.fact);
                }
            } else {
                let tbl = &self.tables[loc.table as usize];
                ids.clear();
                ids.extend(tbl.cols.iter().map(|c| c[loc.row as usize]));
                for (p, &id) in ids.iter().enumerate() {
                    // The `from` buckets are already gone wholesale.
                    if id != from_id {
                        self.remove_pos_entry(pred, p as u32, id, plan.fact);
                    }
                }
            }
        }
        for &j in &absorbed {
            let loc = self.locs[j as usize];
            let pred = self.table_preds[loc.table as usize];
            let tbl = &self.tables[loc.table as usize];
            ids.clear();
            ids.extend(tbl.cols.iter().map(|c| c[loc.row as usize]));
            for (p, &id) in ids.iter().enumerate() {
                self.remove_pos_entry(pred, p as u32, id, j);
            }
        }

        // Rewrite the surviving rows' cells in place (after the removals
        // above, which still needed the collapsing rows' old content).
        for plan in plans.iter().filter(|p| p.survives) {
            let loc = self.locs[plan.fact as usize];
            let tbl = &mut self.tables[loc.table as usize];
            for &p in &plan.from_positions {
                tbl.cols[p as usize][loc.row as usize] = to_id;
            }
        }

        // Composite buckets: survivors move from their old key to the
        // rewritten key for every mask covering a `from` position; removed
        // rows leave all their buckets. Registrations are sticky either way.
        for plan in &plans {
            let loc = self.locs[plan.fact as usize];
            let pred = self.table_preds[loc.table as usize];
            if !self.composite.contains_key(&pred) {
                continue;
            }
            ids.clear();
            ids.extend(
                self.tables[loc.table as usize]
                    .cols
                    .iter()
                    .map(|c| c[loc.row as usize]),
            );
            let masks = self.composite.get_mut(&pred).expect("checked above");
            for (&mask, buckets) in masks.iter_mut() {
                let Some(current_key) = composite_key_ids(&ids, mask) else {
                    continue; // out-of-arity mask: this row was never filed
                };
                if plan.survives {
                    // Cells are rewritten, so `current_key` is the *new*
                    // key; restore `from` at the rewritten slots for the
                    // old one.
                    if !plan
                        .from_positions
                        .iter()
                        .any(|&p| p < 32 && mask & (1 << p) != 0)
                    {
                        continue; // mask misses every rewritten position
                    }
                    let mut old_key = current_key.clone();
                    let mut slot = 0;
                    let mut m = mask;
                    while m != 0 {
                        if plan.from_positions.contains(&m.trailing_zeros()) {
                            old_key[slot] = from_id;
                        }
                        slot += 1;
                        m &= m - 1;
                    }
                    if let Some(b) = buckets.get_mut(&old_key) {
                        bucket_remove(b, plan.fact);
                        if b.is_empty() {
                            buckets.remove(&old_key);
                        }
                    }
                    bucket_insert(buckets.entry(current_key).or_default(), plan.fact);
                } else {
                    // Collapsing row: cells untouched, current key = old key.
                    if let Some(b) = buckets.get_mut(&current_key) {
                        bucket_remove(b, plan.fact);
                        if b.is_empty() {
                            buckets.remove(&current_key);
                        }
                    }
                }
            }
        }
        for &j in &absorbed {
            let loc = self.locs[j as usize];
            let pred = self.table_preds[loc.table as usize];
            if !self.composite.contains_key(&pred) {
                continue;
            }
            ids.clear();
            ids.extend(
                self.tables[loc.table as usize]
                    .cols
                    .iter()
                    .map(|c| c[loc.row as usize]),
            );
            let masks = self.composite.get_mut(&pred).expect("checked above");
            for (&mask, buckets) in masks.iter_mut() {
                if let Some(key) = composite_key_ids(&ids, mask) {
                    if let Some(b) = buckets.get_mut(&key) {
                        bucket_remove(b, j);
                        if b.is_empty() {
                            buckets.remove(&key);
                        }
                    }
                }
            }
        }

        // Physically drop the removed rows: compact their tables column by
        // column, then renumber every surviving fact id above the first
        // removal — locations, all index buckets, and the dedup values.
        if !removed.is_empty() {
            for &r in &removed {
                let loc = self.locs[r as usize];
                let pred = self.table_preds[loc.table as usize];
                let bucket = self.by_pred.get_mut(&pred).expect("fact was indexed");
                bucket_remove(bucket, r);
                if bucket.is_empty() {
                    self.by_pred.remove(&pred);
                }
            }
            let mut rows_by_table: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            for &r in &removed {
                let loc = self.locs[r as usize];
                rows_by_table.entry(loc.table).or_default().push(loc.row);
            }
            for (&t, rows) in rows_by_table.iter_mut() {
                rows.sort_unstable();
                let tbl = &mut self.tables[t as usize];
                let nrows = tbl.rows as usize;
                for col in &mut tbl.cols {
                    let mut next_gone = 0;
                    let mut w = 0;
                    for r in 0..nrows {
                        if next_gone < rows.len() && rows[next_gone] as usize == r {
                            next_gone += 1;
                            continue;
                        }
                        col[w] = col[r];
                        w += 1;
                    }
                    col.truncate(w);
                }
                tbl.rows -= rows.len() as u32;
            }
            let mut new_locs = Vec::with_capacity(self.locs.len() - removed.len());
            let mut next_gone = 0;
            for (f, loc) in self.locs.iter().enumerate() {
                if next_gone < removed.len() && removed[next_gone] as usize == f {
                    next_gone += 1;
                    continue;
                }
                let mut l = *loc;
                if let Some(rows) = rows_by_table.get(&l.table) {
                    l.row -= rows.partition_point(|&r| r < l.row) as u32;
                }
                new_locs.push(l);
            }
            self.locs = new_locs;
            let first = removed[0];
            let renumber = |bucket: &mut Vec<FactId>| {
                if bucket.last().is_none_or(|&l| l < first) {
                    return; // wholly below the first removal: unchanged
                }
                for id in bucket.iter_mut() {
                    *id -= removed.partition_point(|&r| r < *id) as u32;
                }
            };
            for bucket in self.by_pred.values_mut() {
                renumber(bucket);
            }
            for bucket in self.by_pos.values_mut() {
                renumber(bucket);
            }
            for masks in self.composite.values_mut() {
                for buckets in masks.values_mut() {
                    for bucket in buckets.values_mut() {
                        renumber(bucket);
                    }
                }
            }
            for id in self.dedup.values_mut() {
                *id -= removed.partition_point(|&r| r < *id) as u32;
            }
            for chain in self.dedup_overflow.values_mut() {
                for id in chain.iter_mut() {
                    *id -= removed.partition_point(|&r| r < *id) as u32;
                }
            }
        }

        if let Some(n) = to_id.as_null() {
            self.next_null = self.next_null.max(n + 1);
        }
        self.merges += 1;
        self.version += 1;
        self.scratch = ids;
        let rewritten = plans
            .iter()
            .filter(|p| p.survives)
            .map(|p| p.fact - removed.partition_point(|&r| r < p.fact) as u32)
            .collect();
        MergeEffect {
            rewritten,
            collapsed: removed.len(),
            from,
            to,
        }
    }

    /// Content equality of `ids` (a row as it will read post-rewrite)
    /// against the stored row `f` viewed through the same `from → to`
    /// rewrite. Used by the merge's classification phase, where the store
    /// still holds pre-merge cells.
    fn row_matches_rewritten(
        &self,
        f: FactId,
        pred: Sym,
        ids: &[TermId],
        from_id: TermId,
        to_id: TermId,
    ) -> bool {
        let loc = self.locs[f as usize];
        let tbl = &self.tables[loc.table as usize];
        self.table_preds[loc.table as usize] == pred
            && tbl.cols.len() == ids.len()
            && tbl.cols.iter().zip(ids).all(|(col, &want)| {
                let mut have = col[loc.row as usize];
                if have == from_id {
                    have = to_id;
                }
                have == want
            })
    }

    /// Drop `fact` from the `(pred, pos, id)` bucket, dropping the bucket
    /// (and its distinct count) when it empties.
    fn remove_pos_entry(&mut self, pred: Sym, pos: u32, id: TermId, fact: FactId) {
        let Some(bucket) = self.by_pos.get_mut(&(pred, pos, id)) else {
            return;
        };
        bucket_remove(bucket, fact);
        if bucket.is_empty() {
            self.by_pos.remove(&(pred, pos, id));
            let d = self
                .distinct
                .get_mut(&(pred, pos))
                .expect("live bucket is counted");
            *d -= 1;
            if *d == 0 {
                self.distinct.remove(&(pred, pos));
            }
        }
    }

    /// Drop `fact` from the dedup table under `hash`, keeping the
    /// primary-slot/overflow-chain invariant (a probe gives up when the
    /// primary slot is empty, so a surviving chain entry gets promoted).
    fn dedup_remove(&mut self, hash: u64, fact: FactId) {
        if self.dedup.get(&hash) == Some(&fact) {
            match self.dedup_overflow.get_mut(&hash) {
                Some(chain) if !chain.is_empty() => {
                    let promoted = chain.remove(0);
                    if chain.is_empty() {
                        self.dedup_overflow.remove(&hash);
                    }
                    self.dedup.insert(hash, promoted);
                }
                _ => {
                    self.dedup.remove(&hash);
                    self.dedup_overflow.remove(&hash);
                }
            }
        } else if let Some(chain) = self.dedup_overflow.get_mut(&hash) {
            chain.retain(|&f| f != fact);
            if chain.is_empty() {
                self.dedup_overflow.remove(&hash);
            }
        }
    }

    /// Enter `fact` into the dedup table under `hash`: primary slot if
    /// free, overflow chain otherwise (the tail of `insert_ids`, shared
    /// with the merge path).
    fn dedup_insert(&mut self, hash: u64, fact: FactId) {
        match self.dedup.entry(hash) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(fact);
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                self.dedup_overflow.entry(hash).or_default().push(fact);
            }
        }
    }

    /// The schema induced by the facts.
    pub fn schema(&self) -> Result<Schema, CoreError> {
        let mut s = Schema::new();
        // Tables are created in first-occurrence order, so an arity
        // conflict reports the earliest arity as "expected", like the old
        // per-atom observation did.
        for (ti, tbl) in self.tables.iter().enumerate() {
            s.observe(self.table_preds[ti], tbl.cols.len())?;
        }
        Ok(s)
    }

    /// A read-only view of this instance for concurrent matching.
    ///
    /// Between chase steps the instance — including its per-predicate and
    /// per-`(predicate, position, id)` indexes — is immutable, so a view
    /// taken then is a consistent *snapshot* of the position index that any
    /// number of worker threads may query through [`Instance::candidates`]
    /// concurrently (see the `Sync` assertion in this module). The view is
    /// `Copy` and borrows the instance, so the borrow checker retires every
    /// outstanding snapshot before the next mutating step can run.
    pub fn view(&self) -> InstanceView<'_> {
        InstanceView(self)
    }

    /// Facts in a canonical sorted order (for display and comparison).
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.iter().collect();
        v.sort_by(|a, b| {
            a.pred()
                .as_str()
                .cmp(b.pred().as_str())
                .then_with(|| a.terms().cmp(b.terms()))
        });
        v
    }
}

/// The composite-index key of a row under `mask`: its ids at the mask's
/// positions, ascending. `None` when the mask addresses a position beyond
/// the row's arity (such a fact can never match a pattern bound at that
/// position, so it is simply not indexed).
fn composite_key_ids(ids: &[TermId], mask: u32) -> Option<Vec<TermId>> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        key.push(*ids.get(i)?);
        m &= m - 1;
    }
    Some(key)
}

/// [`composite_key_ids`] reading straight out of a table row.
fn composite_key_row(tbl: &PredTable, row: u32, mask: u32) -> Option<Vec<TermId>> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        key.push(tbl.cols.get(i)?[row as usize]);
        m &= m - 1;
    }
    Some(key)
}

/// A borrowed view of one stored fact: predicate, arity and per-position
/// term access without materializing an [`Atom`].
///
/// This is what the homomorphism searcher and the planned executor match
/// candidates against — [`FactView::term_id`] is a column load, so
/// verifying a candidate position by position touches only `u32`s.
#[derive(Clone, Copy)]
pub struct FactView<'a> {
    table: &'a PredTable,
    pred: Sym,
    row: usize,
}

impl FactView<'_> {
    /// The fact's predicate.
    pub fn pred(&self) -> Sym {
        self.pred
    }

    /// The fact's arity.
    pub fn arity(&self) -> usize {
        self.table.cols.len()
    }

    /// The interned id at position `pos`.
    ///
    /// # Panics
    /// Panics when `pos` is out of the fact's arity.
    #[inline]
    pub fn term_id(&self, pos: usize) -> TermId {
        self.table.cols[pos][self.row]
    }

    /// The term at position `pos` (an O(1) id round-trip).
    ///
    /// # Panics
    /// Panics when `pos` is out of the fact's arity.
    #[inline]
    pub fn term(&self, pos: usize) -> Term {
        self.term_id(pos).term()
    }
}

/// A read-only, thread-shareable snapshot of an [`Instance`] (see
/// [`Instance::view`]).
///
/// Dereferences to the instance, exposing the whole query API
/// (`candidates`, `fact`, `with_pred`, …) with no way to mutate. The
/// parallel matching engine hands one to its revalidation workers, which
/// query the snapshot's position index concurrently; its other sharded
/// paths share `&Instance` through the run state under the same `Sync`
/// contract (asserted below).
#[derive(Clone, Copy)]
pub struct InstanceView<'a>(&'a Instance);

impl<'a> InstanceView<'a> {
    /// The underlying instance.
    pub fn instance(&self) -> &'a Instance {
        self.0
    }
}

impl std::ops::Deref for InstanceView<'_> {
    type Target = Instance;

    fn deref(&self) -> &Instance {
        self.0
    }
}

// The contract the parallel chase engine builds on: instances (and therefore
// views of them) can be shared across matcher threads. `Sym` is an index
// into the process-wide interner, which is guarded by a `parking_lot`-style
// `RwLock`, `TermId` is plain data, so everything an instance holds is
// plain shareable data.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Instance>();
    assert_sync::<InstanceView<'_>>();
};

impl PartialEq for Instance {
    /// Set equality over facts (insertion order and null counters ignored).
    fn eq(&self, other: &Instance) -> bool {
        if self.locs.len() != other.locs.len() {
            return false;
        }
        // Both sides are duplicate-free, so equal cardinality plus
        // one-sided containment is set equality.
        let mut ids: Vec<TermId> = Vec::new();
        for (ti, tbl) in self.tables.iter().enumerate() {
            let pred = self.table_preds[ti];
            for row in 0..tbl.rows {
                ids.clear();
                ids.extend(tbl.cols.iter().map(|col| col[row as usize]));
                if other.probe(row_hash(pred, &ids), pred, &ids).is_none() {
                    return false;
                }
            }
        }
        true
    }
}

impl Eq for Instance {}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in self.sorted_atoms() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{a}.")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{self}}}")
    }
}

impl Extend<Atom> for Instance {
    fn extend<T: IntoIterator<Item = Atom>>(&mut self, iter: T) {
        for a in iter {
            self.insert(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca(pred: &str, terms: &[&str]) -> Atom {
        Atom::new(pred, terms.iter().map(|t| Term::constant(t)).collect())
    }

    #[test]
    fn insert_dedupes() {
        let mut i = Instance::new();
        assert!(i.insert(ca("E", &["a", "b"])));
        assert!(!i.insert(ca("E", &["a", "b"])));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn version_moves_exactly_on_mutation() {
        let mut i = Instance::new();
        assert_eq!(i.version(), 0);
        i.insert(ca("E", &["a", "b"]));
        assert_eq!(i.version(), 1);
        // Duplicate insert: no mutation, no version movement.
        i.insert(ca("E", &["a", "b"]));
        assert_eq!(i.version(), 1);
        i.insert(ca("E", &["a", "c"]));
        assert_eq!(i.version(), 2);
        // A merge whose `from` occurs nowhere is a true no-op.
        let eff = i.merge_terms(Term::constant("zzz"), Term::constant("b"));
        assert!(eff.is_noop());
        assert_eq!(i.version(), 2);
        // An effective merge bumps once.
        let eff = i.merge_terms(Term::constant("c"), Term::constant("b"));
        assert!(!eff.is_noop());
        assert_eq!(i.version(), 3);
        // Clones carry the version forward.
        assert_eq!(i.clone().version(), 3);
    }

    #[test]
    fn insert_batch_is_atomic_and_returns_the_delta() {
        let mut i = Instance::parse("E(a,b). S(a).").unwrap();
        let delta = i
            .insert_batch(vec![
                ca("E", &["a", "b"]),
                ca("E", &["b", "c"]),
                ca("S", &["b"]),
            ])
            .unwrap();
        assert_eq!(delta, vec![ca("E", &["b", "c"]), ca("S", &["b"])]);
        assert_eq!(i.len(), 4);
        // In-batch duplicates collapse into one delta entry.
        let delta = i
            .insert_batch(vec![ca("T", &["x"]), ca("T", &["x"])])
            .unwrap();
        assert_eq!(delta.len(), 1);
        // A non-ground atom anywhere in the batch rejects the whole batch.
        let before = i.len();
        let res = i.insert_batch(vec![ca("T", &["y"]), Atom::new("T", vec![Term::var("X")])]);
        assert!(res.is_err());
        assert_eq!(i.len(), before, "failed batch must not partially apply");
    }

    #[test]
    fn rejects_variables() {
        let mut i = Instance::new();
        let res = i.try_insert(Atom::new("E", vec![Term::var("X")]));
        assert!(res.is_err());
    }

    #[test]
    fn fresh_nulls_avoid_existing_ids() {
        let mut i = Instance::new();
        i.insert(Atom::new("S", vec![Term::null(7)]));
        assert_eq!(i.fresh_null(), Term::null(8));
        assert_eq!(i.fresh_null(), Term::null(9));
    }

    #[test]
    fn atoms_round_trip_in_insertion_order() {
        let mut i = Instance::new();
        let a = Atom::new("E", vec![Term::constant("a"), Term::null(0)]);
        let b = ca("S", &["a"]);
        let c = ca("E", &["a", "b"]);
        i.insert(a.clone());
        i.insert(b.clone());
        i.insert(c.clone());
        assert_eq!(i.atoms(), vec![a.clone(), b, c]);
        assert_eq!(i.atom_at(0), a);
        let v = i.fact(0);
        assert_eq!(v.pred(), Sym::new("E"));
        assert_eq!(v.arity(), 2);
        assert_eq!(v.term(0), Term::constant("a"));
        assert_eq!(v.term_id(1), TermId::from_ground(Term::null(0)).unwrap());
    }

    #[test]
    fn mixed_arity_predicates_coexist() {
        // The old atom-level store tolerated one predicate at two arities;
        // the columnar store keeps that (separate tables, shared buckets).
        let mut i = Instance::new();
        i.insert(ca("R", &["a"]));
        i.insert(ca("R", &["a", "b"]));
        i.insert(ca("R", &["b"]));
        assert_eq!(i.len(), 3);
        assert_eq!(i.pred_cardinality(Sym::new("R")), 3);
        let atoms: Vec<Atom> = i.with_pred(Sym::new("R")).collect();
        assert_eq!(
            atoms,
            vec![ca("R", &["a"]), ca("R", &["a", "b"]), ca("R", &["b"])]
        );
        assert!(i.contains(&ca("R", &["a", "b"])));
        assert!(!i.contains(&ca("R", &["a", "c"])));
        assert!(i.schema().is_err(), "schema still reports the conflict");
    }

    #[test]
    fn candidates_uses_position_index() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("E", &["a", "c"]));
        i.insert(ca("E", &["d", "c"]));
        let all = i.candidates(Sym::new("E"), &[]);
        assert_eq!(all.len(), 3);
        let first_a = i.candidates(Sym::new("E"), &[(0, Term::constant("a"))]);
        assert_eq!(first_a.len(), 2);
        let both = i.candidates(
            Sym::new("E"),
            &[(0, Term::constant("d")), (1, Term::constant("c"))],
        );
        assert_eq!(both.len(), 1);
        let none = i.candidates(Sym::new("E"), &[(0, Term::constant("zzz"))]);
        assert!(none.is_empty());
    }

    #[test]
    fn merge_rewrites_and_dedupes() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        i.insert(Atom::new(
            "E",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        let eff = i.merge_terms(Term::null(0), Term::constant("b"));
        // The rewritten row (id 0) survives and absorbs the later duplicate.
        assert_eq!(eff.rewritten, vec![0]);
        assert_eq!(eff.collapsed, 1);
        assert!(!eff.is_noop());
        assert_eq!((eff.from, eff.to), (Term::null(0), Term::constant("b")));
        assert_eq!(i.len(), 1);
        assert!(i.contains(&ca("E", &["a", "b"])));
        // Null counter still advances past the merged null.
        assert!(i.fresh_null().as_null().unwrap() >= 1);
    }

    #[test]
    fn merge_effect_names_surviving_rows_post_compaction() {
        // E(_n0,c) id0, E(b,c) id1, S(_n0) id2: merging _n0→b makes id0
        // read E(b,c); being earlier, id0 keeps the content and absorbs
        // the untouched duplicate id1, while id2 rewrites to S(b).
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::null(0), Term::constant("c")]));
        i.insert(ca("E", &["b", "c"]));
        i.insert(Atom::new("S", vec![Term::null(0)]));
        let eff = i.merge_terms(Term::null(0), Term::constant("b"));
        // id0 rewrites to E(b,c) and absorbs id1; id2 rewrites to S(b) and
        // compacts from id 2 to id 1.
        assert_eq!(eff.rewritten, vec![0, 1]);
        assert_eq!(eff.collapsed, 1);
        assert_eq!(i.len(), 2);
        assert_eq!(i.atom_at(0), ca("E", &["b", "c"]));
        assert_eq!(i.atom_at(1), ca("S", &["b"]));
    }

    /// The position index must agree with a brute-force scan — the
    /// delta-driven engine trusts `candidates` to seed trigger re-matching,
    /// so a stale bucket after a merge would silently shrink the trigger
    /// set.
    fn assert_index_consistent(i: &Instance) {
        let atoms = i.atoms();
        let mut preds: BTreeSet<Sym> = BTreeSet::new();
        for a in &atoms {
            preds.insert(a.pred());
        }
        for &p in &preds {
            for t in i.domain() {
                let max_arity = atoms
                    .iter()
                    .filter(|a| a.pred() == p)
                    .map(|a| a.terms().len())
                    .max()
                    .unwrap_or(0);
                for pos in 0..max_arity {
                    let indexed: Vec<u32> = i.candidates(p, &[(pos, t)]).to_vec();
                    let scanned: Vec<u32> = atoms
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.pred() == p && a.terms().get(pos) == Some(&t))
                        .map(|(idx, _)| idx as u32)
                        .collect();
                    assert_eq!(
                        indexed, scanned,
                        "stale index bucket for ({p}, {pos}, {t}) in {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_keeps_position_index_consistent() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        i.insert(Atom::new("E", vec![Term::null(0), Term::constant("c")]));
        i.insert(Atom::new(
            "E",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        i.insert(Atom::new("S", vec![Term::null(0)]));
        i.insert(Atom::new("S", vec![Term::constant("b")]));
        assert_index_consistent(&i);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_index_consistent(&i);
        // The merged-away null must have vanished from every bucket.
        assert!(i
            .candidates(Sym::new("E"), &[(0, Term::null(0))])
            .is_empty());
        assert!(i
            .candidates(Sym::new("E"), &[(1, Term::null(0))])
            .is_empty());
        assert!(i
            .candidates(Sym::new("S"), &[(0, Term::null(0))])
            .is_empty());
        // Chained merges (null into null, then into a constant) stay clean.
        let mut j = Instance::new();
        j.insert(Atom::new("E", vec![Term::null(1), Term::null(2)]));
        j.insert(Atom::new("E", vec![Term::null(2), Term::null(1)]));
        j.merge_terms(Term::null(2), Term::null(1));
        assert_index_consistent(&j);
        j.merge_terms(Term::null(1), Term::constant("x"));
        assert_index_consistent(&j);
        assert!(j.contains(&ca("E", &["x", "x"])));
        assert_eq!(j.len(), 1);
    }

    #[test]
    #[should_panic(expected = "merge target must be ground")]
    fn merge_to_a_variable_panics_when_occurring() {
        // The old owned-atom store hit `insert`'s ground check when the
        // replay produced a non-ground atom; the id-remap path must not
        // silently store the NEVER sentinel instead.
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.merge_terms(Term::constant("b"), Term::var("X"));
    }

    #[test]
    fn merge_without_occurrences_is_a_true_no_op() {
        // Nothing to rewrite — whether `from` is a variable or simply a
        // term occurring in no fact — must leave everything alone: no
        // index cleared, no merge epoch bumped (so plan caches and trigger
        // pools see nothing either).
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        let eff = i.merge_terms(Term::var("X"), Term::constant("c"));
        assert!(eff.is_noop());
        let eff = i.merge_terms(Term::null(9), Term::constant("c"));
        assert!(eff.is_noop());
        assert_eq!(i.merge_epoch(), 0, "no-op merges move no epoch");
        assert_eq!(i.len(), 1);
        assert_index_consistent(&i);
    }

    /// `with_pred` must be served by the per-predicate index, not a scan
    /// over all atoms — after merges included.
    #[test]
    fn with_pred_is_index_backed() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("S", &["a"]));
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        let e: Vec<Atom> = i.with_pred(Sym::new("E")).collect();
        assert_eq!(e.len(), 2); // ExactSizeIterator: length known up front
        assert_eq!(i.with_pred(Sym::new("E")).len(), 2);
        assert_eq!(i.pred_cardinality(Sym::new("E")), 2);
        assert_eq!(i.pred_cardinality(Sym::new("zzz")), 0);
        let scanned: Vec<Atom> = i.iter().filter(|a| a.pred() == Sym::new("E")).collect();
        assert_eq!(e, scanned);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(i.with_pred(Sym::new("E")).len(), 1);
        assert_eq!(i.pred_cardinality(Sym::new("E")), 1);
    }

    #[test]
    fn distinct_counts_track_inserts_and_merges() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("E", &["a", "c"]));
        i.insert(ca("E", &["d", "c"]));
        let e = Sym::new("E");
        assert_eq!(i.distinct_at(e, 0), 2); // a, d
        assert_eq!(i.distinct_at(e, 1), 2); // b, c
        assert_eq!(i.distinct_at(e, 2), 0);
        assert_eq!(i.distinct_at(Sym::new("S"), 0), 0);
        // Merging c into b collapses the second column to one value.
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        assert_eq!(i.distinct_at(e, 1), 3);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(i.distinct_at(e, 1), 2);
        assert_eq!(i.distinct_at(e, 0), 2);
    }

    #[test]
    fn stats_epoch_grows_with_doubling() {
        let mut i = Instance::new();
        assert_eq!(i.stats_epoch(), 0);
        i.insert(ca("S", &["a"]));
        assert_eq!(i.stats_epoch(), 1);
        i.insert(ca("S", &["b"]));
        assert_eq!(i.stats_epoch(), 2);
        i.insert(ca("S", &["c"]));
        assert_eq!(i.stats_epoch(), 2);
        i.insert(ca("S", &["d"]));
        assert_eq!(i.stats_epoch(), 3);
        assert_eq!(i.merge_epoch(), 0);
        i.insert(Atom::new("S", vec![Term::null(0)]));
        i.merge_terms(Term::null(0), Term::constant("a"));
        assert_eq!(i.merge_epoch(), 1);
        i.merge_terms(Term::constant("a"), Term::constant("a")); // no-op
        assert_eq!(i.merge_epoch(), 1);
    }

    #[test]
    fn composite_index_matches_brute_force() {
        let mut i = Instance::new();
        i.insert(ca("T", &["a", "b", "c"]));
        i.insert(ca("T", &["a", "b", "d"]));
        i.insert(ca("T", &["a", "x", "c"]));
        i.insert(ca("T", &["y", "b", "c"]));
        let t = Sym::new("T");
        // Unregistered: None, caller falls back to the positional index.
        assert!(i.composite_candidates(t, 0b011, &[]).is_none());
        i.register_composite(t, 0b011); // columns 0 and 1
        assert_eq!(i.registered_composites(t), vec![0b011]);
        let key = vec![Term::constant("a"), Term::constant("b")];
        let got = i.composite_candidates(t, 0b011, &key).unwrap().to_vec();
        assert_eq!(got, vec![0, 1]);
        let miss = vec![Term::constant("y"), Term::constant("x")];
        assert!(i.composite_candidates(t, 0b011, &miss).unwrap().is_empty());
        // Single-column masks are rejected — the positional index serves
        // those.
        i.register_composite(t, 0b100);
        assert!(i.composite_candidates(t, 0b100, &[]).is_none());
        // Incremental maintenance on insert.
        i.insert(ca("T", &["a", "b", "e"]));
        let got = i.composite_candidates(t, 0b011, &key).unwrap().to_vec();
        assert_eq!(got, vec![0, 1, 4]);
    }

    #[test]
    fn composite_index_survives_merges() {
        let mut i = Instance::new();
        let t = Sym::new("T");
        i.insert(Atom::new(
            "T",
            vec![Term::constant("a"), Term::null(0), Term::constant("c")],
        ));
        i.insert(ca("T", &["a", "b", "c"]));
        i.insert(ca("T", &["z", "b", "c"]));
        i.register_composite(t, 0b011);
        let key_null = vec![Term::constant("a"), Term::null(0)];
        assert_eq!(
            i.composite_candidates(t, 0b011, &key_null).unwrap().len(),
            1
        );
        i.merge_terms(Term::null(0), Term::constant("b"));
        // The null key is gone, the merged atoms collapse into one bucket.
        assert!(i
            .composite_candidates(t, 0b011, &key_null)
            .unwrap()
            .is_empty());
        let key = vec![Term::constant("a"), Term::constant("b")];
        let bucket = i.composite_candidates(t, 0b011, &key).unwrap();
        assert_eq!(bucket.len(), 1);
        assert_eq!(i.atom_at(bucket[0]), ca("T", &["a", "b", "c"]));
        // Registration is sticky: inserts after the merge keep indexing.
        i.insert(ca("T", &["a", "b", "q"]));
        assert_eq!(i.composite_candidates(t, 0b011, &key).unwrap().len(), 2);
    }

    #[test]
    fn composite_key_ignores_out_of_arity_masks() {
        let mut i = Instance::new();
        i.insert(ca("S", &["a"]));
        i.insert(ca("S", &["b"]));
        let s = Sym::new("S");
        i.register_composite(s, 0b101); // bit 2 is beyond arity 1
        assert_eq!(
            i.composite_candidates(s, 0b101, &[Term::constant("a"), Term::constant("a")])
                .unwrap(),
            &[] as &[u32]
        );
    }

    #[test]
    fn domain_and_positions() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(1)]));
        i.insert(Atom::new("S", vec![Term::null(1)]));
        assert_eq!(i.domain_size(), 2);
        let pos = i.positions_of(Term::null(1));
        assert!(pos.contains(&Position::new("E", 1)));
        assert!(pos.contains(&Position::new("S", 0)));
        assert_eq!(pos.len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let i1 = Instance::from_atoms(vec![ca("E", &["a", "b"]), ca("S", &["a"])]).unwrap();
        let i2 = Instance::from_atoms(vec![ca("S", &["a"]), ca("E", &["a", "b"])]).unwrap();
        assert_eq!(i1, i2);
        let i3 = Instance::from_atoms(vec![ca("E", &["a", "b"]), ca("S", &["b"])]).unwrap();
        assert_ne!(i1, i3);
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let i = Instance::from_atoms(vec![ca("S", &["b"]), ca("E", &["a", "b"]), ca("S", &["a"])])
            .unwrap();
        assert_eq!(i.to_string(), "E(a,b). S(a). S(b).");
    }
}
