//! Database instances: deduplicated, indexed sets of ground atoms.
//!
//! An [`Instance`] stores facts in insertion order (so chase sequences are
//! reproducible) alongside three indexes used by the homomorphism engine and
//! the join planner: a per-predicate index, a per-`(predicate, position,
//! term)` index, and registered *composite* (multi-column) indexes keyed by a
//! position bitmask (see [`Instance::register_composite`]). It also maintains
//! the per-predicate cardinality and per-position distinct-value statistics
//! the `chase-plan` join compiler orders constraint bodies by, and owns the
//! counter from which fresh labeled nulls are drawn during chase steps.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::fx::{FxHashMap, FxHashSet};
use crate::schema::{PosSet, Position, Schema};
use crate::symbol::Sym;
use crate::term::Term;
use std::collections::BTreeSet;
use std::fmt;

/// One composite index: key (the terms at the mask's positions, ascending)
/// → fact indices.
type CompositeBuckets = FxHashMap<Vec<Term>, Vec<u32>>;

/// A database instance: a finite set of ground atoms over constants and
/// labeled nulls.
#[derive(Clone, Default)]
pub struct Instance {
    atoms: Vec<Atom>,
    set: FxHashSet<Atom>,
    by_pred: FxHashMap<Sym, Vec<u32>>,
    by_pos: FxHashMap<(Sym, u32, Term), Vec<u32>>,
    /// Registered composite indexes, nested by predicate so an insert only
    /// walks its own predicate's masks: pred → position bitmask → bucket
    /// per key (the terms at the mask's positions, ascending). Registration
    /// is sticky — once a planner asks for a mask it stays maintained
    /// across inserts and merges, so read-only matcher shards can rely on
    /// it.
    composite: FxHashMap<Sym, FxHashMap<u32, CompositeBuckets>>,
    /// Distinct-value count per `(pred, position)` — the number of live
    /// `by_pos` buckets, maintained without scanning the key space.
    distinct: FxHashMap<(Sym, u32), u32>,
    /// Bumped on every merge (which rewrites statistics in place, unlike
    /// inserts, whose effect the fact count already captures); plan caches
    /// compare it to decide when to recompile.
    merges: u64,
    next_null: u32,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Build an instance from ground atoms. Errors on a non-ground atom.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Result<Instance, CoreError> {
        let mut inst = Instance::new();
        for a in atoms {
            inst.try_insert(a)?;
        }
        Ok(inst)
    }

    /// Parse an instance from text (see [`crate::parser::parse_instance`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use chase_core::Instance;
    ///
    /// let i = Instance::parse("S(n1). E(n1,_n0).").unwrap();
    /// assert_eq!(i.len(), 2);
    /// assert_eq!(i.nulls().len(), 1);   // the labeled null _n0
    /// assert_eq!(i.domain_size(), 2);   // n1 (a constant) and _n0
    /// ```
    pub fn parse(text: &str) -> Result<Instance, CoreError> {
        crate::parser::parse_instance(text)
    }

    /// Insert a ground atom; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the atom contains a variable; use [`Instance::try_insert`]
    /// for a checked version.
    pub fn insert(&mut self, atom: Atom) -> bool {
        self.try_insert(atom)
            .expect("non-ground atom inserted into instance")
    }

    /// Insert a ground atom; returns `true` if it was new, or an error if the
    /// atom contains a variable.
    pub fn try_insert(&mut self, atom: Atom) -> Result<bool, CoreError> {
        if !atom.is_ground() {
            return Err(CoreError::NonGroundAtom(atom.to_string()));
        }
        if self.set.contains(&atom) {
            return Ok(false);
        }
        let idx = u32::try_from(self.atoms.len()).expect("instance too large");
        for (i, &t) in atom.terms().iter().enumerate() {
            if let Term::Null(n) = t {
                self.next_null = self.next_null.max(n + 1);
            }
            let bucket = self.by_pos.entry((atom.pred(), i as u32, t)).or_default();
            if bucket.is_empty() {
                *self.distinct.entry((atom.pred(), i as u32)).or_insert(0) += 1;
            }
            bucket.push(idx);
        }
        if let Some(masks) = self.composite.get_mut(&atom.pred()) {
            for (&mask, buckets) in masks.iter_mut() {
                if let Some(key) = composite_key(&atom, mask) {
                    buckets.entry(key).or_default().push(idx);
                }
            }
        }
        self.by_pred.entry(atom.pred()).or_default().push(idx);
        self.set.insert(atom.clone());
        self.atoms.push(atom);
        Ok(true)
    }

    /// Does the instance contain this exact atom?
    pub fn contains(&self, atom: &Atom) -> bool {
        self.set.contains(atom)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Facts in insertion order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Iterate over facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.atoms.iter()
    }

    /// Facts with the given predicate, in insertion order.
    ///
    /// Routed through the per-predicate index: O(k) in the number of
    /// `pred`-facts, independent of the instance size (pinned by
    /// `with_pred_is_index_backed` below — per-predicate iteration is on the
    /// planner's statistics path and must never degrade to a full scan).
    pub fn with_pred(&self, pred: Sym) -> impl ExactSizeIterator<Item = &Atom> {
        self.by_pred
            .get(&pred)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &self.atoms[i as usize])
    }

    /// Number of facts with the given predicate — `|R|`, in O(1).
    pub fn pred_cardinality(&self, pred: Sym) -> usize {
        self.by_pred.get(&pred).map_or(0, Vec::len)
    }

    /// Number of distinct terms occurring at `(pred, pos)`, in O(1).
    ///
    /// Maintained incrementally as `by_pos` buckets are created; after a
    /// merge the counters are rebuilt alongside the indexes. This is the
    /// per-position selectivity statistic the join planner divides by.
    pub fn distinct_at(&self, pred: Sym, pos: usize) -> usize {
        self.distinct
            .get(&(pred, pos as u32))
            .map_or(0, |&n| n as usize)
    }

    /// Number of merges ([`Instance::merge_terms`]) performed so far.
    ///
    /// Merges rewrite cardinalities and distinct counts in place without
    /// necessarily moving the fact count, so plan caches recompile when this
    /// moves (growth is separately captured by [`Instance::stats_epoch`]).
    pub fn merge_epoch(&self) -> u64 {
        self.merges
    }

    /// The statistics epoch: the bit length of the fact count.
    ///
    /// Grows by one each time the instance doubles, so a plan cache that
    /// recompiles on epoch change re-reads the statistics O(log n) times over
    /// a run instead of every step. Stale plans remain *correct* — only
    /// their cost estimates age.
    pub fn stats_epoch(&self) -> u32 {
        u64::BITS - (self.atoms.len() as u64).leading_zeros()
    }

    /// Register a composite (multi-column) index for `pred` over the
    /// positions set in `mask` (bit `i` = argument position `i`).
    ///
    /// Backfills from the existing `pred`-facts on first registration (O(k))
    /// and is maintained incrementally by every later insert and rebuilt on
    /// merges. Registering an already-registered mask is a no-op. Masks with
    /// fewer than two bits are rejected (the positional index already serves
    /// them); positions beyond an atom's arity simply never match.
    pub fn register_composite(&mut self, pred: Sym, mask: u32) {
        if mask.count_ones() < 2
            || self
                .composite
                .get(&pred)
                .is_some_and(|m| m.contains_key(&mask))
        {
            return;
        }
        let mut buckets = CompositeBuckets::default();
        if let Some(idxs) = self.by_pred.get(&pred) {
            for &i in idxs {
                if let Some(key) = composite_key(&self.atoms[i as usize], mask) {
                    buckets.entry(key).or_default().push(i);
                }
            }
        }
        self.composite
            .entry(pred)
            .or_default()
            .insert(mask, buckets);
    }

    /// Candidate facts whose arguments at the positions of a registered
    /// `(pred, mask)` composite index equal `key` (the terms at those
    /// positions, ascending). Returns `None` when the mask was never
    /// registered — callers fall back to [`Instance::candidates`].
    pub fn composite_candidates(&self, pred: Sym, mask: u32, key: &[Term]) -> Option<&[u32]> {
        let buckets = self.composite.get(&pred)?.get(&mask)?;
        Some(buckets.get(key).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// The composite masks currently registered for `pred` (planner
    /// introspection and tests).
    pub fn registered_composites(&self, pred: Sym) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .composite
            .get(&pred)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Indices of candidate facts for a `pred`-atom whose argument at each
    /// listed `(index, term)` pair is already fixed. Returns the smallest
    /// applicable index bucket (the caller still has to verify the full
    /// match). With no fixed positions this is the per-predicate bucket.
    pub fn candidates(&self, pred: Sym, fixed: &[(usize, Term)]) -> &[u32] {
        if fixed.is_empty() {
            return self.by_pred.get(&pred).map(|v| v.as_slice()).unwrap_or(&[]);
        }
        let mut best: Option<&[u32]> = None;
        for &(i, t) in fixed {
            let bucket = self
                .by_pos
                .get(&(pred, i as u32, t))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            if best.is_none_or(|b| bucket.len() < b.len()) {
                best = Some(bucket);
            }
            if bucket.is_empty() {
                break;
            }
        }
        best.unwrap_or(&[])
    }

    /// Fact at a raw index (used with [`Instance::candidates`]).
    pub fn atom_at(&self, idx: u32) -> &Atom {
        &self.atoms[idx as usize]
    }

    /// A fresh labeled null, never used in this instance before.
    pub fn fresh_null(&mut self) -> Term {
        let t = Term::Null(self.next_null);
        self.next_null += 1;
        t
    }

    /// Make sure future fresh nulls are numbered at least `floor`.
    pub fn reserve_nulls(&mut self, floor: u32) {
        self.next_null = self.next_null.max(floor);
    }

    /// The domain `dom(I)`: every constant and null occurring in some fact,
    /// in sorted order.
    pub fn domain(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            out.extend(a.terms().iter().copied());
        }
        out
    }

    /// `|dom(I)|`.
    pub fn domain_size(&self) -> usize {
        self.domain().len()
    }

    /// All labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            for t in a.terms() {
                if let Term::Null(n) = t {
                    out.insert(*n);
                }
            }
        }
        out
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            for t in a.terms() {
                if let Term::Const(c) = t {
                    out.insert(*c);
                }
            }
        }
        out
    }

    /// `null-pos({t}, I)` (Definition 9): the set of positions at which `t`
    /// occurs in the instance.
    pub fn positions_of(&self, t: Term) -> PosSet {
        let mut out = PosSet::new();
        for a in &self.atoms {
            for (i, &u) in a.terms().iter().enumerate() {
                if u == t {
                    out.insert(Position::new(a.pred(), i));
                }
            }
        }
        out
    }

    /// Replace every occurrence of `from` by `to` (the EGD merge primitive).
    ///
    /// Rebuilds the indexes; atoms that collapse onto existing atoms are
    /// deduplicated. Returns the number of facts that were rewritten.
    pub fn merge_terms(&mut self, from: Term, to: Term) -> usize {
        if from == to {
            return 0;
        }
        let old = std::mem::take(&mut self.atoms);
        let next_null = self.next_null;
        self.set.clear();
        self.by_pred.clear();
        self.by_pos.clear();
        self.distinct.clear();
        // Composite registrations survive the merge (read-only matcher code
        // relies on a registered mask staying queryable); only the buckets
        // are rebuilt, by the inserts below.
        for masks in self.composite.values_mut() {
            for buckets in masks.values_mut() {
                buckets.clear();
            }
        }
        let mut rewritten = 0;
        for a in old {
            let b = a.replace(from, to);
            if b != a {
                rewritten += 1;
            }
            let _ = self.insert(b);
        }
        self.next_null = self.next_null.max(next_null);
        self.merges += 1;
        rewritten
    }

    /// The schema induced by the facts.
    pub fn schema(&self) -> Result<Schema, CoreError> {
        Schema::from_atoms(self.atoms.iter())
    }

    /// A read-only view of this instance for concurrent matching.
    ///
    /// Between chase steps the instance — including its per-predicate and
    /// per-`(predicate, position, term)` indexes — is immutable, so a view
    /// taken then is a consistent *snapshot* of the position index that any
    /// number of worker threads may query through [`Instance::candidates`]
    /// concurrently (see the `Sync` assertion in this module). The view is
    /// `Copy` and borrows the instance, so the borrow checker retires every
    /// outstanding snapshot before the next mutating step can run.
    pub fn view(&self) -> InstanceView<'_> {
        InstanceView(self)
    }

    /// Facts in a canonical sorted order (for display and comparison).
    pub fn sorted_atoms(&self) -> Vec<&Atom> {
        let mut v: Vec<&Atom> = self.atoms.iter().collect();
        v.sort_by(|a, b| {
            a.pred()
                .as_str()
                .cmp(b.pred().as_str())
                .then_with(|| a.terms().cmp(b.terms()))
        });
        v
    }
}

/// The composite-index key of `atom` under `mask`: its terms at the mask's
/// positions, ascending. `None` when the mask addresses a position beyond
/// the atom's arity (such an atom can never match a pattern bound at that
/// position, so it is simply not indexed).
fn composite_key(atom: &Atom, mask: u32) -> Option<Vec<Term>> {
    let terms = atom.terms();
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        key.push(*terms.get(i)?);
        m &= m - 1;
    }
    Some(key)
}

/// A read-only, thread-shareable snapshot of an [`Instance`] (see
/// [`Instance::view`]).
///
/// Dereferences to the instance, exposing the whole query API
/// (`candidates`, `atom_at`, `with_pred`, …) with no way to mutate. The
/// parallel matching engine hands one to its revalidation workers, which
/// query the snapshot's position index concurrently; its other sharded
/// paths share `&Instance` through the run state under the same `Sync`
/// contract (asserted below).
#[derive(Clone, Copy)]
pub struct InstanceView<'a>(&'a Instance);

impl<'a> InstanceView<'a> {
    /// The underlying instance.
    pub fn instance(&self) -> &'a Instance {
        self.0
    }
}

impl std::ops::Deref for InstanceView<'_> {
    type Target = Instance;

    fn deref(&self) -> &Instance {
        self.0
    }
}

// The contract the parallel chase engine builds on: instances (and therefore
// views of them) can be shared across matcher threads. `Sym` is an index
// into the process-wide interner, which is guarded by a `parking_lot`-style
// `RwLock`, so everything an instance holds is plain shareable data.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Instance>();
    assert_sync::<InstanceView<'_>>();
};

impl PartialEq for Instance {
    /// Set equality over facts (insertion order and null counters ignored).
    fn eq(&self, other: &Instance) -> bool {
        self.set == other.set
    }
}

impl Eq for Instance {}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in self.sorted_atoms() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{a}.")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{self}}}")
    }
}

impl Extend<Atom> for Instance {
    fn extend<T: IntoIterator<Item = Atom>>(&mut self, iter: T) {
        for a in iter {
            self.insert(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca(pred: &str, terms: &[&str]) -> Atom {
        Atom::new(pred, terms.iter().map(|t| Term::constant(t)).collect())
    }

    #[test]
    fn insert_dedupes() {
        let mut i = Instance::new();
        assert!(i.insert(ca("E", &["a", "b"])));
        assert!(!i.insert(ca("E", &["a", "b"])));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn rejects_variables() {
        let mut i = Instance::new();
        let res = i.try_insert(Atom::new("E", vec![Term::var("X")]));
        assert!(res.is_err());
    }

    #[test]
    fn fresh_nulls_avoid_existing_ids() {
        let mut i = Instance::new();
        i.insert(Atom::new("S", vec![Term::null(7)]));
        assert_eq!(i.fresh_null(), Term::null(8));
        assert_eq!(i.fresh_null(), Term::null(9));
    }

    #[test]
    fn candidates_uses_position_index() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("E", &["a", "c"]));
        i.insert(ca("E", &["d", "c"]));
        let all = i.candidates(Sym::new("E"), &[]);
        assert_eq!(all.len(), 3);
        let first_a = i.candidates(Sym::new("E"), &[(0, Term::constant("a"))]);
        assert_eq!(first_a.len(), 2);
        let both = i.candidates(
            Sym::new("E"),
            &[(0, Term::constant("d")), (1, Term::constant("c"))],
        );
        assert_eq!(both.len(), 1);
        let none = i.candidates(Sym::new("E"), &[(0, Term::constant("zzz"))]);
        assert!(none.is_empty());
    }

    #[test]
    fn merge_rewrites_and_dedupes() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        i.insert(Atom::new(
            "E",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        let rewritten = i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(rewritten, 1);
        assert_eq!(i.len(), 1);
        assert!(i.contains(&ca("E", &["a", "b"])));
        // Null counter still advances past the merged null.
        assert!(i.fresh_null().as_null().unwrap() >= 1);
    }

    /// The position index must agree with a brute-force scan — the
    /// delta-driven engine trusts `candidates` to seed trigger re-matching,
    /// so a stale bucket after a merge would silently shrink the trigger
    /// set.
    fn assert_index_consistent(i: &Instance) {
        let mut preds: BTreeSet<Sym> = BTreeSet::new();
        for a in i.atoms() {
            preds.insert(a.pred());
        }
        for &p in &preds {
            for t in i.domain() {
                let max_arity = i
                    .atoms()
                    .iter()
                    .filter(|a| a.pred() == p)
                    .map(|a| a.terms().len())
                    .max()
                    .unwrap_or(0);
                for pos in 0..max_arity {
                    let indexed: Vec<u32> = i.candidates(p, &[(pos, t)]).to_vec();
                    let scanned: Vec<u32> = i
                        .atoms()
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.pred() == p && a.terms().get(pos) == Some(&t))
                        .map(|(idx, _)| idx as u32)
                        .collect();
                    assert_eq!(
                        indexed, scanned,
                        "stale index bucket for ({p}, {pos}, {t}) in {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_keeps_position_index_consistent() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        i.insert(Atom::new("E", vec![Term::null(0), Term::constant("c")]));
        i.insert(Atom::new(
            "E",
            vec![Term::constant("a"), Term::constant("b")],
        ));
        i.insert(Atom::new("S", vec![Term::null(0)]));
        i.insert(Atom::new("S", vec![Term::constant("b")]));
        assert_index_consistent(&i);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_index_consistent(&i);
        // The merged-away null must have vanished from every bucket.
        assert!(i
            .candidates(Sym::new("E"), &[(0, Term::null(0))])
            .is_empty());
        assert!(i
            .candidates(Sym::new("E"), &[(1, Term::null(0))])
            .is_empty());
        assert!(i
            .candidates(Sym::new("S"), &[(0, Term::null(0))])
            .is_empty());
        // Chained merges (null into null, then into a constant) stay clean.
        let mut j = Instance::new();
        j.insert(Atom::new("E", vec![Term::null(1), Term::null(2)]));
        j.insert(Atom::new("E", vec![Term::null(2), Term::null(1)]));
        j.merge_terms(Term::null(2), Term::null(1));
        assert_index_consistent(&j);
        j.merge_terms(Term::null(1), Term::constant("x"));
        assert_index_consistent(&j);
        assert!(j.contains(&ca("E", &["x", "x"])));
        assert_eq!(j.len(), 1);
    }

    /// `with_pred` must be served by the per-predicate index, not a scan
    /// over all atoms — after merges included.
    #[test]
    fn with_pred_is_index_backed() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("S", &["a"]));
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        let e: Vec<&Atom> = i.with_pred(Sym::new("E")).collect();
        assert_eq!(e.len(), 2); // ExactSizeIterator: length known up front
        assert_eq!(i.with_pred(Sym::new("E")).len(), 2);
        assert_eq!(i.pred_cardinality(Sym::new("E")), 2);
        assert_eq!(i.pred_cardinality(Sym::new("zzz")), 0);
        let scanned: Vec<&Atom> = i
            .atoms()
            .iter()
            .filter(|a| a.pred() == Sym::new("E"))
            .collect();
        assert_eq!(e, scanned);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(i.with_pred(Sym::new("E")).len(), 1);
        assert_eq!(i.pred_cardinality(Sym::new("E")), 1);
    }

    #[test]
    fn distinct_counts_track_inserts_and_merges() {
        let mut i = Instance::new();
        i.insert(ca("E", &["a", "b"]));
        i.insert(ca("E", &["a", "c"]));
        i.insert(ca("E", &["d", "c"]));
        let e = Sym::new("E");
        assert_eq!(i.distinct_at(e, 0), 2); // a, d
        assert_eq!(i.distinct_at(e, 1), 2); // b, c
        assert_eq!(i.distinct_at(e, 2), 0);
        assert_eq!(i.distinct_at(Sym::new("S"), 0), 0);
        // Merging c into b collapses the second column to one value.
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(0)]));
        assert_eq!(i.distinct_at(e, 1), 3);
        i.merge_terms(Term::null(0), Term::constant("b"));
        assert_eq!(i.distinct_at(e, 1), 2);
        assert_eq!(i.distinct_at(e, 0), 2);
    }

    #[test]
    fn stats_epoch_grows_with_doubling() {
        let mut i = Instance::new();
        assert_eq!(i.stats_epoch(), 0);
        i.insert(ca("S", &["a"]));
        assert_eq!(i.stats_epoch(), 1);
        i.insert(ca("S", &["b"]));
        assert_eq!(i.stats_epoch(), 2);
        i.insert(ca("S", &["c"]));
        assert_eq!(i.stats_epoch(), 2);
        i.insert(ca("S", &["d"]));
        assert_eq!(i.stats_epoch(), 3);
        assert_eq!(i.merge_epoch(), 0);
        i.insert(Atom::new("S", vec![Term::null(0)]));
        i.merge_terms(Term::null(0), Term::constant("a"));
        assert_eq!(i.merge_epoch(), 1);
        i.merge_terms(Term::constant("a"), Term::constant("a")); // no-op
        assert_eq!(i.merge_epoch(), 1);
    }

    #[test]
    fn composite_index_matches_brute_force() {
        let mut i = Instance::new();
        i.insert(ca("T", &["a", "b", "c"]));
        i.insert(ca("T", &["a", "b", "d"]));
        i.insert(ca("T", &["a", "x", "c"]));
        i.insert(ca("T", &["y", "b", "c"]));
        let t = Sym::new("T");
        // Unregistered: None, caller falls back to the positional index.
        assert!(i.composite_candidates(t, 0b011, &[]).is_none());
        i.register_composite(t, 0b011); // columns 0 and 1
        assert_eq!(i.registered_composites(t), vec![0b011]);
        let key = vec![Term::constant("a"), Term::constant("b")];
        let got = i.composite_candidates(t, 0b011, &key).unwrap().to_vec();
        assert_eq!(got, vec![0, 1]);
        let miss = vec![Term::constant("y"), Term::constant("x")];
        assert!(i.composite_candidates(t, 0b011, &miss).unwrap().is_empty());
        // Single-column masks are rejected — the positional index serves
        // those.
        i.register_composite(t, 0b100);
        assert!(i.composite_candidates(t, 0b100, &[]).is_none());
        // Incremental maintenance on insert.
        i.insert(ca("T", &["a", "b", "e"]));
        let got = i.composite_candidates(t, 0b011, &key).unwrap().to_vec();
        assert_eq!(got, vec![0, 1, 4]);
    }

    #[test]
    fn composite_index_survives_merges() {
        let mut i = Instance::new();
        let t = Sym::new("T");
        i.insert(Atom::new(
            "T",
            vec![Term::constant("a"), Term::null(0), Term::constant("c")],
        ));
        i.insert(ca("T", &["a", "b", "c"]));
        i.insert(ca("T", &["z", "b", "c"]));
        i.register_composite(t, 0b011);
        let key_null = vec![Term::constant("a"), Term::null(0)];
        assert_eq!(
            i.composite_candidates(t, 0b011, &key_null).unwrap().len(),
            1
        );
        i.merge_terms(Term::null(0), Term::constant("b"));
        // The null key is gone, the merged atoms collapse into one bucket.
        assert!(i
            .composite_candidates(t, 0b011, &key_null)
            .unwrap()
            .is_empty());
        let key = vec![Term::constant("a"), Term::constant("b")];
        let bucket = i.composite_candidates(t, 0b011, &key).unwrap();
        assert_eq!(bucket.len(), 1);
        assert_eq!(i.atom_at(bucket[0]), &ca("T", &["a", "b", "c"]));
        // Registration is sticky: inserts after the merge keep indexing.
        i.insert(ca("T", &["a", "b", "q"]));
        assert_eq!(i.composite_candidates(t, 0b011, &key).unwrap().len(), 2);
    }

    #[test]
    fn composite_key_ignores_out_of_arity_masks() {
        let mut i = Instance::new();
        i.insert(ca("S", &["a"]));
        i.insert(ca("S", &["b"]));
        let s = Sym::new("S");
        i.register_composite(s, 0b101); // bit 2 is beyond arity 1
        assert_eq!(
            i.composite_candidates(s, 0b101, &[Term::constant("a"), Term::constant("a")])
                .unwrap(),
            &[] as &[u32]
        );
    }

    #[test]
    fn domain_and_positions() {
        let mut i = Instance::new();
        i.insert(Atom::new("E", vec![Term::constant("a"), Term::null(1)]));
        i.insert(Atom::new("S", vec![Term::null(1)]));
        assert_eq!(i.domain_size(), 2);
        let pos = i.positions_of(Term::null(1));
        assert!(pos.contains(&Position::new("E", 1)));
        assert!(pos.contains(&Position::new("S", 0)));
        assert_eq!(pos.len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let i1 = Instance::from_atoms(vec![ca("E", &["a", "b"]), ca("S", &["a"])]).unwrap();
        let i2 = Instance::from_atoms(vec![ca("S", &["a"]), ca("E", &["a", "b"])]).unwrap();
        assert_eq!(i1, i2);
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let i = Instance::from_atoms(vec![ca("S", &["b"]), ca("E", &["a", "b"]), ca("S", &["a"])])
            .unwrap();
        assert_eq!(i.to_string(), "E(a,b). S(a). S(b).");
    }
}
