#![warn(missing_docs)]

//! # chase-core
//!
//! The relational substrate underneath the chase algorithm of
//! *On Chase Termination Beyond Stratification* (Meier, Schmidt, Lausen;
//! VLDB 2009):
//!
//! * interned [`Sym`]bols, [`Term`]s (constants, labeled nulls, variables)
//!   and their interned ground form [`TermId`], [`Atom`]s and database
//!   [`Position`]s,
//! * indexed database [`Instance`]s — an interned, columnar fact store with
//!   id-keyed dedup and indexes (see [`instance`]),
//! * a backtracking [`homomorphism`] engine (the workhorse behind chase-step
//!   applicability, constraint satisfaction and conjunctive-query
//!   evaluation),
//! * the constraint language of the paper — tuple-generating dependencies
//!   ([`Tgd`]) and equality-generating dependencies ([`Egd`]) — plus
//!   [`ConjunctiveQuery`]s,
//! * a plain-text [`parser`] for constraints, instances and queries.
//!
//! Everything in this crate is deterministic: iteration orders are fixed by
//! insertion order or by explicit sorting, so chase sequences built on top of
//! it are reproducible.

pub mod atom;
pub mod constraint;
pub mod cq;
pub mod error;
pub mod fx;
pub mod homomorphism;
pub mod instance;
pub mod parser;
pub mod schema;
pub mod snapshot;
pub mod symbol;
pub mod term;

pub use atom::Atom;
pub use constraint::{Constraint, ConstraintSet, Egd, Tgd};
pub use cq::ConjunctiveQuery;
pub use error::CoreError;
pub use homomorphism::{
    exists_extension, exists_hom, find_all_homs, find_hom, unify_atom, HomConfig, Subst,
};
pub use instance::{FactId, FactView, Instance, InstanceView, MergeEffect};
pub use schema::{PosSet, Position, Schema};
pub use snapshot::{crc32, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use symbol::Sym;
pub use term::{Term, TermId};
