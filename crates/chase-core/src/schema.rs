//! Database positions and schemas.
//!
//! A *position* `(R, i)` is the `i`-th argument slot of relation `R`
//! (Section 2 of the paper; written `R^i`, 1-based, in the paper's notation).
//! Positions are the currency of every termination condition: dependency
//! graphs, propagation graphs and restriction systems are all graphs over
//! positions or sets of positions.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::fx::FxHashMap;
use crate::symbol::Sym;
use std::collections::BTreeSet;
use std::fmt;

/// A database position: argument slot `index` (0-based) of predicate `pred`.
///
/// Displayed 1-based as in the paper: position 0 of `E` prints as `E^1`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Position {
    /// The relation symbol.
    pub pred: Sym,
    /// 0-based argument index.
    pub index: usize,
}

impl Position {
    /// Construct a position; `index` is 0-based.
    pub fn new(pred: impl Into<Sym>, index: usize) -> Position {
        Position {
            pred: pred.into(),
            index,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.pred, self.index + 1)
    }
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A deterministic, ordered set of positions.
///
/// `BTreeSet` keeps iteration order stable across runs, which restriction
/// systems rely on for reproducible fixpoints and which makes reports and
/// tests deterministic.
pub type PosSet = BTreeSet<Position>;

/// A relational schema: each predicate with its arity.
///
/// Schemas are inferred from atoms rather than declared; [`Schema::observe`]
/// records a predicate's arity and rejects inconsistent reuse.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Schema {
    arities: FxHashMap<Sym, usize>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Record that `pred` is used with `arity`. Errors if a different arity
    /// was seen before.
    pub fn observe(&mut self, pred: Sym, arity: usize) -> Result<(), CoreError> {
        match self.arities.get(&pred) {
            Some(&a) if a != arity => Err(CoreError::ArityMismatch {
                pred: pred.as_str().to_owned(),
                expected: a,
                found: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.arities.insert(pred, arity);
                Ok(())
            }
        }
    }

    /// Record an atom's predicate and arity.
    pub fn observe_atom(&mut self, atom: &Atom) -> Result<(), CoreError> {
        self.observe(atom.pred(), atom.arity())
    }

    /// Build a schema from atoms, checking arity consistency.
    pub fn from_atoms<'a>(atoms: impl IntoIterator<Item = &'a Atom>) -> Result<Schema, CoreError> {
        let mut s = Schema::new();
        for a in atoms {
            s.observe_atom(a)?;
        }
        Ok(s)
    }

    /// Arity of `pred`, if known.
    pub fn arity(&self, pred: Sym) -> Option<usize> {
        self.arities.get(&pred).copied()
    }

    /// Does the schema mention `pred`?
    pub fn contains(&self, pred: Sym) -> bool {
        self.arities.contains_key(&pred)
    }

    /// All predicates, sorted by name for determinism.
    pub fn predicates(&self) -> Vec<Sym> {
        let mut v: Vec<Sym> = self.arities.keys().copied().collect();
        v.sort_by_key(|s| s.as_str());
        v
    }

    /// Every position of every predicate in the schema.
    pub fn positions(&self) -> PosSet {
        let mut out = PosSet::new();
        for (&pred, &ar) in &self.arities {
            for i in 0..ar {
                out.insert(Position::new(pred, i));
            }
        }
        out
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// True if no predicate has been observed.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Merge another schema into this one, checking consistency.
    pub fn merge(&mut self, other: &Schema) -> Result<(), CoreError> {
        for (&p, &a) in &other.arities {
            self.observe(p, a)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in self.predicates() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}/{}", p, self.arities[&p])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn position_display_is_one_based() {
        assert_eq!(Position::new("E", 0).to_string(), "E^1");
        assert_eq!(Position::new("E", 1).to_string(), "E^2");
    }

    #[test]
    fn schema_rejects_arity_clash() {
        let mut s = Schema::new();
        s.observe(Sym::new("E"), 2).unwrap();
        assert!(s.observe(Sym::new("E"), 3).is_err());
        assert!(s.observe(Sym::new("E"), 2).is_ok());
    }

    #[test]
    fn positions_enumerates_all_slots() {
        let a = Atom::new("E", vec![Term::var("X"), Term::var("Y")]);
        let b = Atom::new("S", vec![Term::var("X")]);
        let s = Schema::from_atoms([&a, &b]).unwrap();
        let pos = s.positions();
        assert_eq!(pos.len(), 3);
        assert!(pos.contains(&Position::new("E", 0)));
        assert!(pos.contains(&Position::new("E", 1)));
        assert!(pos.contains(&Position::new("S", 0)));
    }

    #[test]
    fn merge_checks_consistency() {
        let mut s1 = Schema::new();
        s1.observe(Sym::new("R"), 2).unwrap();
        let mut s2 = Schema::new();
        s2.observe(Sym::new("R"), 3).unwrap();
        assert!(s1.merge(&s2).is_err());
    }
}
