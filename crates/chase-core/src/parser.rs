//! Plain-text syntax for constraints, instances and queries.
//!
//! Conventions (documented in DESIGN.md §5):
//!
//! * identifiers starting with an ASCII uppercase letter are **variables**
//!   (`X`, `Y1`, `City`);
//! * identifiers starting with a lowercase letter or a digit are
//!   **constants** (`a`, `c1`, `42`);
//! * identifiers of the form `_n<digits>` are **labeled nulls** and are only
//!   legal inside instances;
//! * `#` and `//` start line comments.
//!
//! Grammar:
//!
//! ```text
//! constraint := [atom_list] '->' (atom_list | VAR '=' VAR)
//!             | [atom_list] '->' 'exists' var_list '.' atom_list
//! atom       := IDENT '(' [term {',' term}] ')'
//! instance   := { atom '.' }            (trailing dot optional)
//! query      := atom '<-' [atom_list]
//! ```
//!
//! Head variables of a TGD that do not occur in the body are existential; an
//! explicit `exists` clause is optional and, when present, must list exactly
//! those variables.

use crate::atom::Atom;
use crate::constraint::{Constraint, ConstraintSet, Egd, Tgd};
use crate::cq::ConjunctiveQuery;
use crate::error::CoreError;
use crate::instance::Instance;
use crate::symbol::Sym;
use crate::term::Term;

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Arrow,  // ->
    LArrow, // <-
    Eq,
    Dot,
    Eof,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    line: usize,
    col: usize,
}

fn lex(text: &str) -> Result<Vec<Tok>, CoreError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = text.chars().peekable();
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }
    loop {
        let (tl, tc) = (line, col);
        let c = match chars.peek().copied() {
            None => break,
            Some(c) => c,
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while chars.peek().is_some() && *chars.peek().unwrap() != '\n' {
                    bump!();
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while chars.peek().is_some() && *chars.peek().unwrap() != '\n' {
                        bump!();
                    }
                } else {
                    return Err(CoreError::Parse {
                        line: tl,
                        col: tc,
                        msg: "unexpected '/' (expected '//' comment)".into(),
                    });
                }
            }
            '(' => {
                bump!();
                toks.push(Tok {
                    kind: TokKind::LParen,
                    line: tl,
                    col: tc,
                });
            }
            ')' => {
                bump!();
                toks.push(Tok {
                    kind: TokKind::RParen,
                    line: tl,
                    col: tc,
                });
            }
            ',' => {
                bump!();
                toks.push(Tok {
                    kind: TokKind::Comma,
                    line: tl,
                    col: tc,
                });
            }
            '.' => {
                bump!();
                toks.push(Tok {
                    kind: TokKind::Dot,
                    line: tl,
                    col: tc,
                });
            }
            '=' => {
                bump!();
                toks.push(Tok {
                    kind: TokKind::Eq,
                    line: tl,
                    col: tc,
                });
            }
            '-' => {
                bump!();
                if chars.peek() == Some(&'>') {
                    bump!();
                    toks.push(Tok {
                        kind: TokKind::Arrow,
                        line: tl,
                        col: tc,
                    });
                } else {
                    return Err(CoreError::Parse {
                        line: tl,
                        col: tc,
                        msg: "unexpected '-' (expected '->')".into(),
                    });
                }
            }
            '<' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    toks.push(Tok {
                        kind: TokKind::LArrow,
                        line: tl,
                        col: tc,
                    });
                } else {
                    return Err(CoreError::Parse {
                        line: tl,
                        col: tc,
                        msg: "unexpected '<' (expected '<-')".into(),
                    });
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Ident(s),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(CoreError::Parse {
                    line: tl,
                    col: tc,
                    msg: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    toks.push(Tok {
        kind: TokKind::Eof,
        line,
        col,
    });
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// May `_n<k>` nulls appear (instances yes, constraints/queries no)?
    allow_nulls: bool,
}

impl Parser {
    fn new(text: &str, allow_nulls: bool) -> Result<Parser, CoreError> {
        Ok(Parser {
            toks: lex(text)?,
            pos: 0,
            allow_nulls,
        })
    }

    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn here(&self) -> (usize, usize) {
        (self.toks[self.pos].line, self.toks[self.pos].col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CoreError> {
        let (line, col) = self.here();
        Err(CoreError::Parse {
            line,
            col,
            msg: msg.into(),
        })
    }

    fn advance(&mut self) -> TokKind {
        let k = self.toks[self.pos].kind.clone();
        if k != TokKind::Eof {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, kind: TokKind, what: &str) -> Result<(), CoreError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn at_eof(&self) -> bool {
        *self.peek() == TokKind::Eof
    }

    fn term_from_ident(&self, name: &str) -> Result<Term, CoreError> {
        let first = name.chars().next().expect("non-empty ident");
        if first == '_' {
            if !self.allow_nulls {
                return self.err(format!(
                    "labeled null {name} is only legal inside instances"
                ));
            }
            let digits = name
                .strip_prefix("_n")
                .filter(|d| !d.is_empty() && d.chars().all(|c| c.is_ascii_digit()));
            return match digits {
                Some(d) => Ok(Term::Null(d.parse::<u32>().map_err(|_| {
                    CoreError::Parse {
                        line: self.here().0,
                        col: self.here().1,
                        msg: format!("null id out of range in {name}"),
                    }
                })?)),
                None => self.err(format!("nulls must be written _n<digits>, got {name}")),
            };
        }
        if first.is_ascii_uppercase() {
            Ok(Term::var(name))
        } else {
            Ok(Term::constant(name))
        }
    }

    fn parse_term(&mut self) -> Result<Term, CoreError> {
        match self.advance() {
            TokKind::Ident(name) => {
                // The token has been consumed; error positions will point
                // just past it, which is close enough for diagnostics.
                self.term_from_ident(&name)
            }
            other => self.err(format!("expected a term, found {other:?}")),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, CoreError> {
        let pred = match self.advance() {
            TokKind::Ident(name) => name,
            other => return self.err(format!("expected a predicate name, found {other:?}")),
        };
        if pred.starts_with('_') {
            return self.err(format!("predicate name may not start with '_': {pred}"));
        }
        self.expect(TokKind::LParen, "'('")?;
        let mut terms = Vec::new();
        if *self.peek() != TokKind::RParen {
            loop {
                terms.push(self.parse_term()?);
                if *self.peek() == TokKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(TokKind::RParen, "')'")?;
        Ok(Atom::new(pred.as_str(), terms))
    }

    fn parse_atom_list(&mut self) -> Result<Vec<Atom>, CoreError> {
        let mut atoms = vec![self.parse_atom()?];
        while *self.peek() == TokKind::Comma {
            self.advance();
            atoms.push(self.parse_atom()?);
        }
        Ok(atoms)
    }

    fn parse_constraint(&mut self) -> Result<Constraint, CoreError> {
        let body = if *self.peek() == TokKind::Arrow {
            Vec::new()
        } else {
            self.parse_atom_list()?
        };
        self.expect(TokKind::Arrow, "'->'")?;

        // Optional explicit existential quantifier: `exists Z, W . head`.
        let mut declared_existentials: Option<Vec<Sym>> = None;
        if let TokKind::Ident(id) = self.peek() {
            if id == "exists" {
                self.advance();
                let mut vars = Vec::new();
                loop {
                    match self.advance() {
                        TokKind::Ident(name)
                            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                        {
                            vars.push(Sym::new(&name));
                        }
                        other => {
                            return self
                                .err(format!("expected an existential variable, found {other:?}"))
                        }
                    }
                    if *self.peek() == TokKind::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(TokKind::Dot, "'.' after exists-variables")?;
                declared_existentials = Some(vars);
            }
        }

        // EGD: `Var = Var`. Distinguish from an atom by the token after the
        // identifier.
        if declared_existentials.is_none()
            && matches!(self.peek(), TokKind::Ident(_))
            && self.toks.get(self.pos + 1).map(|t| &t.kind) == Some(&TokKind::Eq)
        {
            let left = match self.advance() {
                TokKind::Ident(name) => name,
                _ => unreachable!(),
            };
            self.advance(); // '='
            let right = match self.advance() {
                TokKind::Ident(name) => name,
                other => return self.err(format!("expected a variable, found {other:?}")),
            };
            for v in [&left, &right] {
                if !v.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    return self.err(format!("EGD equates variables, got {v}"));
                }
            }
            let egd = Egd::new(body, Sym::new(&left), Sym::new(&right))?;
            return Ok(Constraint::Egd(egd));
        }

        let head = self.parse_atom_list()?;
        let tgd = Tgd::new(body, head)?;
        if let Some(declared) = declared_existentials {
            let mut inferred: Vec<Sym> = tgd.existentials().to_vec();
            let mut declared_sorted = declared;
            inferred.sort_by_key(|s| s.as_str());
            declared_sorted.sort_by_key(|s| s.as_str());
            if inferred != declared_sorted {
                return Err(CoreError::InvalidConstraint(format!(
                    "declared existentials {declared_sorted:?} differ from inferred {inferred:?}"
                )));
            }
        }
        Ok(Constraint::Tgd(tgd))
    }
}

/// Parse a single constraint (TGD or EGD).
pub fn parse_constraint(text: &str) -> Result<Constraint, CoreError> {
    let mut p = Parser::new(text, false)?;
    let c = p.parse_constraint()?;
    if !p.at_eof() {
        return p.err("trailing input after constraint");
    }
    Ok(c)
}

/// Parse a constraint set: constraints separated by newlines or `;`.
///
/// The `;` separator makes a whole set a single line of text — the form
/// wire protocols and one-line REPL commands carry — with the same
/// semantics as the newline-separated layout. `#` and `//` comments run to
/// the end of the *line*, so a `;` inside a comment separates nothing.
pub fn parse_constraints(text: &str) -> Result<ConstraintSet, CoreError> {
    let mut items = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let line = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        for piece in line.split(';') {
            if piece.trim().is_empty() {
                continue;
            }
            let c = parse_constraint(piece).map_err(|e| match e {
                CoreError::Parse { col, msg, .. } => CoreError::Parse {
                    line: lineno + 1,
                    col,
                    msg,
                },
                other => other,
            })?;
            items.push(c);
        }
    }
    ConstraintSet::from_constraints(items)
}

/// Parse an instance: ground atoms separated by (optional) dots.
pub fn parse_instance(text: &str) -> Result<Instance, CoreError> {
    let mut p = Parser::new(text, true)?;
    let mut inst = Instance::new();
    while !p.at_eof() {
        let atom = p.parse_atom()?;
        if !atom.is_ground() {
            return Err(CoreError::NonGroundAtom(atom.to_string()));
        }
        inst.insert(atom);
        if *p.peek() == TokKind::Dot {
            p.advance();
        }
    }
    Ok(inst)
}

/// Parse a conjunctive query `q(X) <- body`.
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery, CoreError> {
    let mut p = Parser::new(text, false)?;
    let head = p.parse_atom()?;
    p.expect(TokKind::LArrow, "'<-'")?;
    let body = if p.at_eof() {
        Vec::new()
    } else {
        p.parse_atom_list()?
    };
    if !p.at_eof() {
        return p.err("trailing input after query");
    }
    ConjunctiveQuery::new(head.pred(), head.terms().to_vec(), body)
}

/// Parse a comma-separated atom list (variables allowed) — handy in tests.
pub fn parse_atom_list(text: &str) -> Result<Vec<Atom>, CoreError> {
    let mut p = Parser::new(text, true)?;
    let atoms = p.parse_atom_list()?;
    if !p.at_eof() {
        return p.err("trailing input after atoms");
    }
    Ok(atoms)
}

/// Parse a single atom (variables allowed).
pub fn parse_atom(text: &str) -> Result<Atom, CoreError> {
    let mut p = Parser::new(text, true)?;
    let atom = p.parse_atom()?;
    if !p.at_eof() {
        return p.err("trailing input after atom");
    }
    Ok(atom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_all_token_kinds() {
        let toks = lex("E(X,_n1) -> X = Y <- . # comment").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokKind::Arrow));
        assert!(toks.iter().any(|t| t.kind == TokKind::LArrow));
        assert!(toks.iter().any(|t| t.kind == TokKind::Eq));
    }

    #[test]
    fn parse_tgd_with_inferred_existential() {
        let c = parse_constraint("S(X) -> E(X,Y), S(Y)").unwrap();
        let t = c.as_tgd().unwrap();
        assert_eq!(t.existentials(), &[Sym::new("Y")]);
    }

    #[test]
    fn parse_tgd_with_explicit_exists() {
        let c = parse_constraint("S(X) -> exists Y . E(X,Y), S(Y)").unwrap();
        assert_eq!(c.as_tgd().unwrap().existentials(), &[Sym::new("Y")]);
    }

    #[test]
    fn explicit_exists_mismatch_is_an_error() {
        assert!(parse_constraint("S(X) -> exists Z . E(X,Y)").is_err());
    }

    #[test]
    fn parse_egd() {
        let c = parse_constraint("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let e = c.as_egd().unwrap();
        assert_eq!(e.left(), Sym::new("Y"));
        assert_eq!(e.right(), Sym::new("Z"));
    }

    #[test]
    fn parse_empty_body() {
        let c = parse_constraint("-> S(X), E(X,Y)").unwrap();
        assert!(c.body().is_empty());
    }

    #[test]
    fn nulls_rejected_in_constraints() {
        assert!(parse_constraint("S(_n1) -> E(_n1,X)").is_err());
    }

    #[test]
    fn parse_instance_with_nulls_and_dots() {
        let i = parse_instance("S(a). E(a,_n3) S(_n3).").unwrap();
        assert_eq!(i.len(), 3);
        assert!(i.nulls().contains(&3));
        // Counter advanced past the parsed null.
        let mut i = i;
        assert!(i.fresh_null().as_null().unwrap() > 3);
    }

    #[test]
    fn instance_rejects_variables_and_bad_nulls() {
        assert!(parse_instance("S(X).").is_err());
        assert!(parse_instance("S(_foo).").is_err());
    }

    #[test]
    fn parse_query_with_constants() {
        let q = parse_query("rf(X2) <- rail(c1,X1,Y1), fly(X1,X2,Y2)").unwrap();
        assert_eq!(q.head_args(), &[Term::var("X2")]);
        assert_eq!(q.body().len(), 2);
    }

    #[test]
    fn boolean_query_parses() {
        let q = parse_query("q() <- E(X,X)").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn comments_and_blank_lines_in_sets() {
        let s = parse_constraints(
            "# leading comment\n\
             \n\
             S(X) -> T(X)   // trailing comment\n\
             T(X) -> S(X)\n",
        )
        .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn semicolons_separate_constraints_like_newlines() {
        let one_line = parse_constraints("S(X) -> T(X); T(X) -> S(X);").unwrap();
        let multi_line = parse_constraints("S(X) -> T(X)\nT(X) -> S(X)").unwrap();
        assert_eq!(one_line.len(), 2);
        assert_eq!(one_line, multi_line);
        // A `;` inside a comment separates nothing.
        let commented = parse_constraints("S(X) -> T(X) # a; comment").unwrap();
        assert_eq!(commented.len(), 1);
        // Mixed separators on one input.
        let mixed = parse_constraints("S(X) -> T(X); T(X) -> U(X)\nU(X) -> S(X)").unwrap();
        assert_eq!(mixed.len(), 3);
    }

    #[test]
    fn error_positions_are_one_based() {
        let err = parse_constraint("S(X) ->").unwrap_err();
        match err {
            CoreError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn numbers_are_constants() {
        let a = parse_atom("R(1,2,X)").unwrap();
        assert_eq!(a.terms()[0], Term::constant("1"));
        assert!(a.terms()[2].is_var());
    }
}
