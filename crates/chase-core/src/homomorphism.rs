//! The homomorphism engine.
//!
//! A homomorphism from a set of atoms `A1` to a set of atoms `A2` is a
//! mapping that is the identity on constants and maps each atom of `A1` into
//! `A2` (Section 2). This module implements backtracking search for such
//! mappings against an indexed [`Instance`], with two flexibility modes:
//!
//! * **pattern mode** (`flex_nulls = false`): only variables are mapped —
//!   used for constraint bodies, TGD-head extension tests and conjunctive
//!   queries;
//! * **instance mode** (`flex_nulls = true`): labeled nulls of the source are
//!   mapped too — used for homomorphisms *between instances* (e.g. chase
//!   result equivalence, universal-plan checks).
//!
//! Atom ordering is dynamic: at every depth the searcher expands the
//! remaining atom with the fewest index candidates under the current partial
//! substitution (the classic "most constrained first" join heuristic).

use crate::atom::Atom;
use crate::fx::FxHashMap;
use crate::instance::Instance;
use crate::symbol::Sym;
use crate::term::Term;
use std::fmt;

/// A substitution: finite mapping from variables (and, in instance mode,
/// labeled nulls) to ground terms. Constants are always fixed.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Subst {
    vars: FxHashMap<Sym, Term>,
    nulls: FxHashMap<u32, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Build a substitution from variable bindings.
    pub fn from_vars(bindings: impl IntoIterator<Item = (Sym, Term)>) -> Subst {
        Subst {
            vars: bindings.into_iter().collect(),
            nulls: FxHashMap::default(),
        }
    }

    /// Bind a variable.
    pub fn bind_var(&mut self, v: Sym, t: Term) {
        self.vars.insert(v, t);
    }

    /// Bind a labeled null (instance mode).
    pub fn bind_null(&mut self, n: u32, t: Term) {
        self.nulls.insert(n, t);
    }

    /// Binding of a variable, if any.
    pub fn var(&self, v: Sym) -> Option<Term> {
        self.vars.get(&v).copied()
    }

    /// Binding of a null, if any.
    pub fn null(&self, n: u32) -> Option<Term> {
        self.nulls.get(&n).copied()
    }

    /// Apply to a term: bound variables/nulls are replaced, everything else
    /// (including unbound variables) is returned unchanged.
    pub fn apply(&self, t: Term) -> Term {
        match t {
            Term::Var(v) => self.vars.get(&v).copied().unwrap_or(t),
            Term::Null(n) => self.nulls.get(&n).copied().unwrap_or(t),
            Term::Const(_) => t,
        }
    }

    /// Apply to every argument of an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        a.map_terms(|t| self.apply(t))
    }

    /// Apply to a slice of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Variable bindings, sorted by variable name (deterministic).
    pub fn var_bindings(&self) -> Vec<(Sym, Term)> {
        let mut v: Vec<(Sym, Term)> = self.vars.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by_key(|(k, _)| k.as_str());
        v
    }

    /// Null bindings, sorted by null id (deterministic).
    pub fn null_bindings(&self) -> Vec<(u32, Term)> {
        let mut v: Vec<(u32, Term)> = self.nulls.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// True iff no variable or null is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.nulls.is_empty()
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (v, t) in self.var_bindings() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{v}→{t}")?;
        }
        for (n, t) in self.null_bindings() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "_n{n}→{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Tuning knobs for the backtracking searcher — exposed so the benchmark
/// suite can ablate the two join optimizations (DESIGN.md §8).
#[derive(Debug, Clone)]
pub struct HomConfig {
    /// Use the per-`(predicate, position, term)` index to narrow candidate
    /// facts; with `false`, every fact of the predicate is scanned.
    pub use_position_index: bool,
    /// Expand the most-constrained remaining atom first; with `false`,
    /// atoms are matched left to right as written.
    pub dynamic_ordering: bool,
}

impl Default for HomConfig {
    fn default() -> HomConfig {
        HomConfig {
            use_position_index: true,
            dynamic_ordering: true,
        }
    }
}

/// What the searcher undoes when backtracking out of an atom match.
enum Undo {
    Var(Sym),
    Null(u32),
}

struct Searcher<'a> {
    pattern: &'a [Atom],
    target: &'a Instance,
    flex_nulls: bool,
    subst: Subst,
    cfg: HomConfig,
}

impl<'a> Searcher<'a> {
    /// Positions of `atom` whose value is already determined under the
    /// current substitution; used for dynamic atom ordering and for the
    /// index-driven candidate scan.
    fn fixed_positions(&self, atom: &Atom) -> Vec<(usize, Term)> {
        let mut fixed = Vec::new();
        for (i, &raw) in atom.terms().iter().enumerate() {
            let t = self.subst.apply(raw);
            let determined = match t {
                Term::Const(_) => true,
                Term::Var(_) => false, // unbound variable: wildcard
                Term::Null(n) => {
                    // In flex mode an *unbound* null is a wildcard; a bound
                    // null (even one bound to itself) and any null in rigid
                    // mode only match that exact term.
                    !(self.flex_nulls && raw == t && self.subst.null(n).is_none())
                }
            };
            if determined {
                fixed.push((i, t));
            }
        }
        fixed
    }

    /// The index key used for candidate lookup, honoring the ablation knob.
    fn candidate_key(&self, atom: &Atom) -> Vec<(usize, Term)> {
        if self.cfg.use_position_index {
            self.fixed_positions(atom)
        } else {
            Vec::new() // per-predicate bucket only
        }
    }

    /// Try to match `atom` against the stored fact `fact`, extending the
    /// substitution. Returns the undo list on success.
    ///
    /// The fact stays in the columnar store — each position is an O(1) id
    /// round-trip ([`crate::instance::FactView::term`]), so no candidate is
    /// ever materialized or cloned.
    fn try_match(&mut self, atom: &Atom, fact: crate::instance::FactView<'_>) -> Option<Vec<Undo>> {
        debug_assert_eq!(atom.pred(), fact.pred());
        if atom.arity() != fact.arity() {
            return None;
        }
        let mut undo = Vec::new();
        for (i, &p) in atom.terms().iter().enumerate() {
            let g = fact.term(i);
            let ok = match p {
                Term::Const(_) => p == g,
                Term::Var(v) => match self.subst.var(v) {
                    Some(t) => t == g,
                    None => {
                        self.subst.bind_var(v, g);
                        undo.push(Undo::Var(v));
                        true
                    }
                },
                Term::Null(n) => {
                    if self.flex_nulls {
                        match self.subst.null(n) {
                            Some(t) => t == g,
                            None => {
                                self.subst.bind_null(n, g);
                                undo.push(Undo::Null(n));
                                true
                            }
                        }
                    } else {
                        p == g
                    }
                }
            };
            if !ok {
                self.unwind(undo);
                return None;
            }
        }
        Some(undo)
    }

    fn unwind(&mut self, undo: Vec<Undo>) {
        for u in undo {
            match u {
                Undo::Var(v) => {
                    self.subst.vars.remove(&v);
                }
                Undo::Null(n) => {
                    self.subst.nulls.remove(&n);
                }
            }
        }
    }

    /// Depth-first search. `remaining` holds indices into `self.pattern`.
    /// Returns `true` if the callback asked to stop.
    fn search(&mut self, remaining: &mut Vec<usize>, cb: &mut dyn FnMut(&Subst) -> bool) -> bool {
        if remaining.is_empty() {
            return cb(&self.subst);
        }
        // Dynamic ordering: expand the most constrained remaining atom.
        // (Ablated mode matches atoms in written order; `remaining` is kept
        // in reverse so popping the last slot yields the leftmost atom.)
        let best_slot = if self.cfg.dynamic_ordering {
            let mut best_slot = 0;
            let mut best_len = usize::MAX;
            for (slot, &ai) in remaining.iter().enumerate() {
                let atom = &self.pattern[ai];
                let fixed = self.candidate_key(atom);
                let len = self.target.candidates(atom.pred(), &fixed).len();
                if len < best_len {
                    best_len = len;
                    best_slot = slot;
                    if len == 0 {
                        return false; // some atom has no candidates: dead branch
                    }
                }
            }
            best_slot
        } else {
            let mut best_slot = 0;
            let mut best_ai = usize::MAX;
            for (slot, &ai) in remaining.iter().enumerate() {
                if ai < best_ai {
                    best_ai = ai;
                    best_slot = slot;
                }
            }
            best_slot
        };
        let ai = remaining.swap_remove(best_slot);
        let atom = &self.pattern[ai];
        let fixed = self.candidate_key(atom);
        // The candidate bucket borrows from `target`; clone the indices so we
        // can mutate `self` while iterating.
        let cands: Vec<u32> = self.target.candidates(atom.pred(), &fixed).to_vec();
        // Copy the `&'a Instance` out of `self` so candidate views outlive
        // the `&mut self` re-borrows below.
        let target = self.target;
        let mut stopped = false;
        for ci in cands {
            let fact = target.fact(ci);
            if let Some(undo) = self.try_match(&self.pattern[ai], fact) {
                if self.search(remaining, cb) {
                    self.unwind(undo);
                    stopped = true;
                    break;
                }
                self.unwind(undo);
            }
        }
        // Restore `remaining` exactly (swap_remove reordering is fine — it is
        // a set — but the element must come back).
        remaining.push(ai);
        stopped
    }
}

/// Enumerate homomorphisms from `pattern` into `target`, extending `seed`.
///
/// The callback receives each complete substitution; returning `true` stops
/// the enumeration. The function returns `true` iff the callback stopped it.
pub fn for_each_hom(
    pattern: &[Atom],
    target: &Instance,
    seed: &Subst,
    flex_nulls: bool,
    cb: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    for_each_hom_cfg(pattern, target, seed, flex_nulls, &HomConfig::default(), cb)
}

/// [`for_each_hom`] with explicit searcher tuning (for ablation benchmarks;
/// all configurations enumerate the same homomorphisms).
pub fn for_each_hom_cfg(
    pattern: &[Atom],
    target: &Instance,
    seed: &Subst,
    flex_nulls: bool,
    cfg: &HomConfig,
    cb: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    let mut searcher = Searcher {
        pattern,
        target,
        flex_nulls,
        subst: seed.clone(),
        cfg: cfg.clone(),
    };
    let mut remaining: Vec<usize> = (0..pattern.len()).collect();
    searcher.search(&mut remaining, cb)
}

/// First homomorphism from `pattern` into `target`, if any (pattern mode).
pub fn find_hom(pattern: &[Atom], target: &Instance) -> Option<Subst> {
    find_hom_seeded(pattern, target, &Subst::new())
}

/// First homomorphism extending `seed`, if any (pattern mode).
pub fn find_hom_seeded(pattern: &[Atom], target: &Instance, seed: &Subst) -> Option<Subst> {
    let mut found = None;
    for_each_hom(pattern, target, seed, false, &mut |s| {
        found = Some(s.clone());
        true
    });
    found
}

/// Does any homomorphism from `pattern` into `target` exist (pattern mode)?
pub fn exists_hom(pattern: &[Atom], target: &Instance) -> bool {
    exists_extension(pattern, target, &Subst::new())
}

/// Does a homomorphism extending `seed` exist (pattern mode)?
///
/// This is the TGD-applicability primitive: a TGD with body match `µ` is
/// *satisfied* for `µ` iff `exists_extension(head, instance, µ)`.
pub fn exists_extension(pattern: &[Atom], target: &Instance, seed: &Subst) -> bool {
    for_each_hom(pattern, target, seed, false, &mut |_| true)
}

/// All homomorphisms from `pattern` into `target` (pattern mode), in the
/// deterministic order produced by the searcher.
pub fn find_all_homs(pattern: &[Atom], target: &Instance) -> Vec<Subst> {
    find_all_homs_seeded(pattern, target, &Subst::new())
}

/// All homomorphisms extending `seed` (pattern mode).
pub fn find_all_homs_seeded(pattern: &[Atom], target: &Instance, seed: &Subst) -> Vec<Subst> {
    let mut out = Vec::new();
    for_each_hom(pattern, target, seed, false, &mut |s| {
        out.push(s.clone());
        false
    });
    out
}

/// Unify one pattern atom with one ground fact, extending `seed` (pattern
/// mode: variables bind or must agree; constants and nulls only match
/// themselves). Returns the extended substitution on success.
///
/// This is the single-atom, persistent-substitution counterpart of the
/// searcher's internal `try_match` and must keep the same per-position
/// semantics — the delta-driven trigger engine seeds its re-matching with it
/// and then completes through [`for_each_hom`], so a disagreement between
/// the two would make delta enumeration diverge from full enumeration (see
/// `unify_atom_agrees_with_searcher`).
pub fn unify_atom(pattern: &Atom, fact: &Atom, seed: &Subst) -> Option<Subst> {
    if pattern.pred() != fact.pred() || pattern.arity() != fact.arity() {
        return None;
    }
    let mut mu = seed.clone();
    for (&p, &g) in pattern.terms().iter().zip(fact.terms()) {
        match p {
            Term::Var(v) => match mu.var(v) {
                Some(t) if t == g => {}
                Some(_) => return None,
                None => mu.bind_var(v, g),
            },
            _ => {
                if p != g {
                    return None;
                }
            }
        }
    }
    Some(mu)
}

/// A homomorphism **between instances**: constants fixed, nulls of `from`
/// flexible. Returns the mapping if one exists.
pub fn instance_hom(from: &Instance, to: &Instance) -> Option<Subst> {
    let mut found = None;
    for_each_hom(&from.atoms(), to, &Subst::new(), true, &mut |s| {
        found = Some(s.clone());
        true
    });
    found
}

/// Are two instances homomorphically equivalent (maps both ways)?
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    instance_hom(a, b).is_some() && instance_hom(b, a).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(text: &str) -> Instance {
        Instance::parse(text).unwrap()
    }

    fn atoms(text: &str) -> Vec<Atom> {
        crate::parser::parse_atom_list(text).unwrap()
    }

    #[test]
    fn simple_match() {
        let i = inst("E(a,b). E(b,c).");
        let homs = find_all_homs(&atoms("E(X,Y), E(Y,Z)"), &i);
        assert_eq!(homs.len(), 1);
        let h = &homs[0];
        assert_eq!(h.var(Sym::new("X")), Some(Term::constant("a")));
        assert_eq!(h.var(Sym::new("Z")), Some(Term::constant("c")));
    }

    #[test]
    fn shared_variable_constrains() {
        let i = inst("E(a,b). E(c,d).");
        assert!(!exists_hom(&atoms("E(X,Y), E(Y,Z)"), &i));
    }

    #[test]
    fn constants_are_fixed() {
        let i = inst("E(a,b).");
        assert!(exists_hom(&atoms("E(a,Y)"), &i));
        assert!(!exists_hom(&atoms("E(b,Y)"), &i));
    }

    #[test]
    fn empty_pattern_has_exactly_one_hom() {
        let i = inst("E(a,b).");
        assert_eq!(find_all_homs(&[], &i).len(), 1);
        assert!(exists_hom(&[], &Instance::new()));
    }

    #[test]
    fn seeded_search_respects_bindings() {
        let i = inst("E(a,b). E(b,c).");
        let seed = Subst::from_vars([(Sym::new("X"), Term::constant("b"))]);
        let homs = find_all_homs_seeded(&atoms("E(X,Y)"), &i, &seed);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].var(Sym::new("Y")), Some(Term::constant("c")));
    }

    #[test]
    fn nulls_rigid_in_pattern_mode() {
        let i = inst("E(a,_n0).");
        // The pattern contains _n1, which does not occur in the instance; in
        // pattern mode nulls only match themselves.
        let pat = vec![Atom::new("E", vec![Term::constant("a"), Term::null(1)])];
        assert!(!exists_hom(&pat, &i));
        let pat0 = vec![Atom::new("E", vec![Term::constant("a"), Term::null(0)])];
        assert!(exists_hom(&pat0, &i));
    }

    #[test]
    fn instance_hom_maps_nulls() {
        let from = inst("E(a,_n0). S(_n0).");
        let to = inst("E(a,b). S(b). S(c).");
        let h = instance_hom(&from, &to).expect("hom should exist");
        assert_eq!(h.null(0), Some(Term::constant("b")));
        assert!(
            instance_hom(&to, &from).is_none(),
            "no hom back: c unmatched"
        );
    }

    #[test]
    fn hom_equivalence_detects_isomorphic_cores() {
        let a = inst("E(a,_n0).");
        let b = inst("E(a,_n5). E(a,_n6).");
        assert!(hom_equivalent(&a, &b));
    }

    #[test]
    fn all_homs_count() {
        let i = inst("E(a,b). E(a,c). E(b,c).");
        assert_eq!(find_all_homs(&atoms("E(X,Y)"), &i).len(), 3);
        assert_eq!(find_all_homs(&atoms("E(a,Y)"), &i).len(), 2);
    }

    #[test]
    fn cartesian_patterns_enumerate_fully() {
        let i = inst("P(a). P(b). Q(c). Q(d).");
        assert_eq!(find_all_homs(&atoms("P(X), Q(Y)"), &i).len(), 4);
    }

    #[test]
    fn unify_atom_agrees_with_searcher() {
        // For a single-atom pattern, `unify_atom` against each fact must
        // produce exactly the substitutions the backtracking searcher
        // enumerates — the contract the delta-driven trigger engine relies
        // on.
        let i = inst("E(a,b). E(b,b). E(a,_n0). S(a). T(a,b,c).");
        let patterns = ["E(X,Y)", "E(X,X)", "E(a,Y)", "S(X)", "T(X,Y,Z)", "T(X,X,Z)"];
        for pat in patterns {
            let pattern = &atoms(pat)[0];
            let mut via_unify: Vec<Vec<(Sym, Term)>> = i
                .iter()
                .filter_map(|fact| unify_atom(pattern, &fact, &Subst::new()))
                .map(|mu| mu.var_bindings())
                .collect();
            let mut via_search: Vec<Vec<(Sym, Term)>> =
                find_all_homs(std::slice::from_ref(pattern), &i)
                    .into_iter()
                    .map(|mu| mu.var_bindings())
                    .collect();
            via_unify.sort();
            via_search.sort();
            assert_eq!(via_unify, via_search, "disagreement on {pat}");
        }
        // Rigid nulls and fixed seeds behave the same way, too.
        let pat = &atoms("E(X,_n0)")[0];
        assert_eq!(
            i.iter()
                .filter_map(|f| unify_atom(pat, &f, &Subst::new()))
                .count(),
            1
        );
        let seed = Subst::from_vars([(Sym::new("X"), Term::constant("a"))]);
        let pat = &atoms("E(X,Y)")[0];
        assert_eq!(
            i.iter().filter_map(|f| unify_atom(pat, &f, &seed)).count(),
            2
        );
    }

    #[test]
    fn all_searcher_configs_agree() {
        // The ablation knobs change cost, never results.
        let i = inst("E(a,b). E(b,c). E(c,d). E(a,c). S(b). S(c). T(a,b,c). T(b,c,d).");
        let patterns = [
            "E(X,Y), E(Y,Z)",
            "S(X), E(X,Y), E(Y,Z), S(Z)",
            "T(X,Y,Z), E(X,Y), S(Y)",
            "E(X,X)",
        ];
        for pat in patterns {
            let pattern = atoms(pat);
            let mut counts = Vec::new();
            for use_idx in [true, false] {
                for dynamic in [true, false] {
                    let cfg = HomConfig {
                        use_position_index: use_idx,
                        dynamic_ordering: dynamic,
                    };
                    let mut n = 0usize;
                    for_each_hom_cfg(&pattern, &i, &Subst::new(), false, &cfg, &mut |_| {
                        n += 1;
                        false
                    });
                    counts.push(n);
                }
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "configs disagree on {pat}: {counts:?}"
            );
        }
    }
}
