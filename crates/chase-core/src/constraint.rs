//! Constraints: tuple-generating and equality-generating dependencies.
//!
//! Section 2 of the paper. A TGD is `∀x (φ(x) → ∃y ψ(x,y))` with conjunctive
//! `φ` (possibly empty) and non-empty conjunctive `ψ`; an EGD is
//! `∀x (φ(x) → xi = xj)`. Existential variables of a TGD are *inferred*: every
//! head variable that does not occur in the body is existentially quantified,
//! which makes condition (e) of the paper's definition hold by construction.

use crate::atom::Atom;
use crate::error::CoreError;
use crate::homomorphism::{exists_extension, for_each_hom, Subst};
use crate::instance::Instance;
use crate::schema::{PosSet, Position, Schema};
use crate::symbol::Sym;
use crate::term::Term;
use std::fmt;

fn check_constraint_atoms(atoms: &[Atom], side: &str) -> Result<(), CoreError> {
    for a in atoms {
        for t in a.terms() {
            if t.is_null() {
                return Err(CoreError::InvalidConstraint(format!(
                    "labeled null {t} in {side} atom {a}; constraints range over variables and constants only"
                )));
            }
        }
    }
    Ok(())
}

fn distinct_vars(atoms: &[Atom]) -> Vec<Sym> {
    let mut out = Vec::new();
    for a in atoms {
        for v in a.vars() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

fn positions_of_atoms(atoms: &[Atom]) -> PosSet {
    let mut out = PosSet::new();
    for a in atoms {
        for i in 0..a.arity() {
            out.insert(Position::new(a.pred(), i));
        }
    }
    out
}

fn positions_of_var(atoms: &[Atom], v: Sym) -> PosSet {
    let mut out = PosSet::new();
    for a in atoms {
        for (p, t) in a.entries() {
            if t == Term::Var(v) {
                out.insert(p);
            }
        }
    }
    out
}

/// A tuple-generating dependency `∀x (body → ∃y head)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Tgd {
    body: Vec<Atom>,
    head: Vec<Atom>,
    universals: Vec<Sym>,
    existentials: Vec<Sym>,
    frontier: Vec<Sym>,
}

impl Tgd {
    /// Construct a TGD; head variables absent from the body become
    /// existential. Errors if the head is empty or any atom contains a null.
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Result<Tgd, CoreError> {
        if head.is_empty() {
            return Err(CoreError::InvalidConstraint(
                "a TGD must have a non-empty head".into(),
            ));
        }
        check_constraint_atoms(&body, "body")?;
        check_constraint_atoms(&head, "head")?;
        let universals = distinct_vars(&body);
        let head_vars = distinct_vars(&head);
        let existentials: Vec<Sym> = head_vars
            .iter()
            .copied()
            .filter(|v| !universals.contains(v))
            .collect();
        let frontier: Vec<Sym> = head_vars
            .into_iter()
            .filter(|v| universals.contains(v))
            .collect();
        Ok(Tgd {
            body,
            head,
            universals,
            existentials,
            frontier,
        })
    }

    /// Parse a single TGD from text.
    pub fn parse(text: &str) -> Result<Tgd, CoreError> {
        match crate::parser::parse_constraint(text)? {
            Constraint::Tgd(t) => Ok(t),
            Constraint::Egd(_) => Err(CoreError::InvalidConstraint(
                "expected a TGD, parsed an EGD".into(),
            )),
        }
    }

    /// Body atoms (`φ`).
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// Head atoms (`ψ`).
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// Universally quantified variables (distinct body variables, in
    /// first-occurrence order).
    pub fn universals(&self) -> &[Sym] {
        &self.universals
    }

    /// Existentially quantified variables (head variables not in the body).
    pub fn existentials(&self) -> &[Sym] {
        &self.existentials
    }

    /// Frontier: universally quantified variables that occur in the head.
    pub fn frontier(&self) -> &[Sym] {
        &self.frontier
    }

    /// A *full* TGD has no existential variables.
    pub fn is_full(&self) -> bool {
        self.existentials.is_empty()
    }

    /// `pos(α)`: the positions of the body (the paper's convention).
    pub fn body_positions(&self) -> PosSet {
        positions_of_atoms(&self.body)
    }

    /// The positions of the head.
    pub fn head_positions(&self) -> PosSet {
        positions_of_atoms(&self.head)
    }

    /// Positions at which variable `v` occurs in the body.
    pub fn body_positions_of(&self, v: Sym) -> PosSet {
        positions_of_var(&self.body, v)
    }

    /// Positions at which variable `v` occurs in the head.
    pub fn head_positions_of(&self, v: Sym) -> PosSet {
        positions_of_var(&self.head, v)
    }

    /// Is the TGD satisfied by the instance (`I ⊨ α`)?
    ///
    /// True iff every body homomorphism extends to a head homomorphism.
    pub fn satisfied_by(&self, inst: &Instance) -> bool {
        !for_each_hom(&self.body, inst, &Subst::new(), false, &mut |mu| {
            !exists_extension(&self.head, inst, mu)
        })
    }

    /// Is the *instantiated* constraint `α(a)` satisfied (`I ⊨ α(a)`)?
    ///
    /// `a` must bind every universal variable to a ground term. `α(a)` holds
    /// iff the instantiated body is not contained in `inst`, or the head can
    /// be extended within `inst`.
    pub fn satisfied_with(&self, inst: &Instance, a: &Subst) -> bool {
        let ground_body = a.apply_atoms(&self.body);
        if !ground_body.iter().all(|atom| inst.contains(atom)) {
            return true;
        }
        exists_extension(&self.head, inst, a)
    }

    /// Total number of atoms (used for the paper's `|α|` candidate bounds).
    pub fn atom_count(&self) -> usize {
        self.body.len() + self.head.len()
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        if self.body.is_empty() {
            write!(f, "-> ")?;
        } else {
            write!(f, " -> ")?;
        }
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An equality-generating dependency `∀x (body → left = right)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Egd {
    body: Vec<Atom>,
    left: Sym,
    right: Sym,
}

impl Egd {
    /// Construct an EGD. Both equated variables must occur in the non-empty
    /// body.
    pub fn new(body: Vec<Atom>, left: Sym, right: Sym) -> Result<Egd, CoreError> {
        if body.is_empty() {
            return Err(CoreError::InvalidConstraint(
                "an EGD must have a non-empty body".into(),
            ));
        }
        check_constraint_atoms(&body, "body")?;
        let vars = distinct_vars(&body);
        for v in [left, right] {
            if !vars.contains(&v) {
                return Err(CoreError::InvalidConstraint(format!(
                    "equated variable {v} does not occur in the EGD body"
                )));
            }
        }
        Ok(Egd { body, left, right })
    }

    /// Body atoms.
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// Left equated variable.
    pub fn left(&self) -> Sym {
        self.left
    }

    /// Right equated variable.
    pub fn right(&self) -> Sym {
        self.right
    }

    /// Universally quantified variables.
    pub fn universals(&self) -> Vec<Sym> {
        distinct_vars(&self.body)
    }

    /// `pos(α)`: the positions of the body.
    pub fn body_positions(&self) -> PosSet {
        positions_of_atoms(&self.body)
    }

    /// Positions at which variable `v` occurs in the body.
    pub fn body_positions_of(&self, v: Sym) -> PosSet {
        positions_of_var(&self.body, v)
    }

    /// Is the EGD satisfied by the instance?
    pub fn satisfied_by(&self, inst: &Instance) -> bool {
        !for_each_hom(&self.body, inst, &Subst::new(), false, &mut |mu| {
            mu.var(self.left) != mu.var(self.right)
        })
    }

    /// Is the instantiated constraint `α(a)` satisfied?
    pub fn satisfied_with(&self, inst: &Instance, a: &Subst) -> bool {
        let ground_body = a.apply_atoms(&self.body);
        if !ground_body.iter().all(|atom| inst.contains(atom)) {
            return true;
        }
        a.var(self.left) == a.var(self.right)
    }

    /// Total number of atoms.
    pub fn atom_count(&self) -> usize {
        self.body.len()
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " -> {} = {}", self.left, self.right)
    }
}

impl fmt::Debug for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Either kind of dependency.
#[derive(Clone, PartialEq, Eq)]
pub enum Constraint {
    /// Tuple-generating dependency.
    Tgd(Tgd),
    /// Equality-generating dependency.
    Egd(Egd),
}

impl Constraint {
    /// Parse a single constraint from text.
    pub fn parse(text: &str) -> Result<Constraint, CoreError> {
        crate::parser::parse_constraint(text)
    }

    /// Body atoms.
    pub fn body(&self) -> &[Atom] {
        match self {
            Constraint::Tgd(t) => t.body(),
            Constraint::Egd(e) => e.body(),
        }
    }

    /// Head atoms of a TGD; empty slice for an EGD.
    pub fn head_atoms(&self) -> &[Atom] {
        match self {
            Constraint::Tgd(t) => t.head(),
            Constraint::Egd(_) => &[],
        }
    }

    /// Universally quantified variables.
    pub fn universals(&self) -> Vec<Sym> {
        match self {
            Constraint::Tgd(t) => t.universals().to_vec(),
            Constraint::Egd(e) => e.universals(),
        }
    }

    /// `pos(α)`: positions of the body.
    pub fn body_positions(&self) -> PosSet {
        match self {
            Constraint::Tgd(t) => t.body_positions(),
            Constraint::Egd(e) => e.body_positions(),
        }
    }

    /// Is this a TGD?
    pub fn is_tgd(&self) -> bool {
        matches!(self, Constraint::Tgd(_))
    }

    /// Is this an EGD?
    pub fn is_egd(&self) -> bool {
        matches!(self, Constraint::Egd(_))
    }

    /// The TGD, if this is one.
    pub fn as_tgd(&self) -> Option<&Tgd> {
        match self {
            Constraint::Tgd(t) => Some(t),
            Constraint::Egd(_) => None,
        }
    }

    /// The EGD, if this is one.
    pub fn as_egd(&self) -> Option<&Egd> {
        match self {
            Constraint::Egd(e) => Some(e),
            Constraint::Tgd(_) => None,
        }
    }

    /// `I ⊨ α`.
    pub fn satisfied_by(&self, inst: &Instance) -> bool {
        match self {
            Constraint::Tgd(t) => t.satisfied_by(inst),
            Constraint::Egd(e) => e.satisfied_by(inst),
        }
    }

    /// `I ⊨ α(a)`.
    pub fn satisfied_with(&self, inst: &Instance, a: &Subst) -> bool {
        match self {
            Constraint::Tgd(t) => t.satisfied_with(inst, a),
            Constraint::Egd(e) => e.satisfied_with(inst, a),
        }
    }

    /// Total number of atoms (the paper's `|α|` proxy for candidate bounds).
    pub fn atom_count(&self) -> usize {
        match self {
            Constraint::Tgd(t) => t.atom_count(),
            Constraint::Egd(e) => e.atom_count(),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Tgd(t) => t.fmt(f),
            Constraint::Egd(e) => e.fmt(f),
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Tgd> for Constraint {
    fn from(t: Tgd) -> Constraint {
        Constraint::Tgd(t)
    }
}

impl From<Egd> for Constraint {
    fn from(e: Egd) -> Constraint {
        Constraint::Egd(e)
    }
}

/// An ordered set `Σ` of constraints.
///
/// Constraints are addressed by their index; all graphs built by the
/// termination analyses (chase graphs, restriction systems) use these
/// indices as node ids.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    items: Vec<Constraint>,
}

// Constraint sets are shared read-only across the parallel engine's matcher
// threads, alongside `InstanceView` snapshots.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Constraint>();
    assert_sync::<ConstraintSet>();
};

impl ConstraintSet {
    /// Empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Build from constraints, validating schema consistency.
    pub fn from_constraints(
        items: impl IntoIterator<Item = Constraint>,
    ) -> Result<ConstraintSet, CoreError> {
        let set = ConstraintSet {
            items: items.into_iter().collect(),
        };
        set.schema()?;
        Ok(set)
    }

    /// Parse constraints separated by newlines or `;` (`#` starts a
    /// comment running to the end of the line).
    ///
    /// # Examples
    ///
    /// ```
    /// use chase_core::ConstraintSet;
    ///
    /// let sigma = ConstraintSet::parse(
    ///     "# special nodes have 2- and 3-cycles (the paper's Example 10)
    ///      S(X), E(X,Y) -> E(Y,X)
    ///      S(X), E(X,Y) -> E(Y,Z), E(Z,X)",
    /// ).unwrap();
    /// assert_eq!(sigma.len(), 2);
    /// assert!(sigma[1].as_tgd().unwrap().existentials().len() == 1);
    ///
    /// // `;` separates too, so a whole set fits one line of text — the
    /// // form the chase-serve wire protocol and REPL commands carry.
    /// let one_line = ConstraintSet::parse(
    ///     "S(X), E(X,Y) -> E(Y,X); S(X), E(X,Y) -> E(Y,Z), E(Z,X)",
    /// ).unwrap();
    /// assert_eq!(one_line.len(), 2);
    /// ```
    pub fn parse(text: &str) -> Result<ConstraintSet, CoreError> {
        crate::parser::parse_constraints(text)
    }

    /// Append a constraint.
    pub fn push(&mut self, c: impl Into<Constraint>) {
        self.items.push(c.into());
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.items.iter()
    }

    /// Iterate with indices.
    pub fn enumerate(&self) -> impl Iterator<Item = (usize, &Constraint)> {
        self.items.iter().enumerate()
    }

    /// The TGDs of the set, with their indices.
    pub fn tgds(&self) -> impl Iterator<Item = (usize, &Tgd)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_tgd().map(|t| (i, t)))
    }

    /// Constraint at index `i`.
    pub fn get(&self, i: usize) -> &Constraint {
        &self.items[i]
    }

    /// `pos(Σ)`: union of the body positions of all constraints.
    pub fn positions(&self) -> PosSet {
        let mut out = PosSet::new();
        for c in &self.items {
            out.extend(c.body_positions());
        }
        out
    }

    /// Every position mentioned anywhere (body or head) — the position
    /// universe used by dependency/propagation graphs.
    pub fn all_positions(&self) -> PosSet {
        let mut out = PosSet::new();
        for c in &self.items {
            out.extend(c.body_positions());
            if let Constraint::Tgd(t) = c {
                out.extend(t.head_positions());
            }
        }
        out
    }

    /// The schema induced by all atoms; errors on arity clashes.
    pub fn schema(&self) -> Result<Schema, CoreError> {
        let mut s = Schema::new();
        for c in &self.items {
            for a in c.body() {
                s.observe_atom(a)?;
            }
            for a in c.head_atoms() {
                s.observe_atom(a)?;
            }
        }
        Ok(s)
    }

    /// The sub-set with the given constraint indices (order preserved,
    /// duplicates removed).
    pub fn subset(&self, indices: &[usize]) -> ConstraintSet {
        let mut seen = Vec::new();
        let mut items = Vec::new();
        for &i in indices {
            if !seen.contains(&i) {
                seen.push(i);
                items.push(self.items[i].clone());
            }
        }
        ConstraintSet { items }
    }

    /// `I ⊨ Σ`.
    pub fn satisfied_by(&self, inst: &Instance) -> bool {
        self.items.iter().all(|c| c.satisfied_by(inst))
    }

    /// Constants mentioned in any constraint (parameters from `∆`).
    pub fn constants(&self) -> Vec<Sym> {
        let mut out: Vec<Sym> = Vec::new();
        for c in &self.items {
            for a in c.body().iter().chain(c.head_atoms()) {
                for t in a.terms() {
                    if let Term::Const(s) = t {
                        if !out.contains(s) {
                            out.push(*s);
                        }
                    }
                }
            }
        }
        out.sort_by_key(|s| s.as_str());
        out
    }
}

impl std::ops::Index<usize> for ConstraintSet {
    type Output = Constraint;
    fn index(&self, i: usize) -> &Constraint {
        &self.items[i]
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> ConstraintSet {
        ConstraintSet {
            items: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ConstraintSet {
    type Item = &'a Constraint;
    type IntoIter = std::slice::Iter<'a, Constraint>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tgd_classifies_variables() {
        let t = Tgd::parse("S(X), E(X,Y) -> E(Y,Z), E(Z,X)").unwrap();
        assert_eq!(t.universals(), &[Sym::new("X"), Sym::new("Y")]);
        assert_eq!(t.existentials(), &[Sym::new("Z")]);
        assert_eq!(t.frontier(), &[Sym::new("Y"), Sym::new("X")]);
        assert!(!t.is_full());
    }

    #[test]
    fn full_tgd() {
        let t = Tgd::parse("E(X,Y) -> E(Y,X)").unwrap();
        assert!(t.is_full());
        assert!(t.existentials().is_empty());
    }

    #[test]
    fn empty_body_tgd_is_allowed() {
        let t = Tgd::parse("-> S(X), E(X,Y)").unwrap();
        assert!(t.body().is_empty());
        assert_eq!(t.existentials().len(), 2);
    }

    #[test]
    fn empty_head_rejected() {
        assert!(Tgd::new(vec![Atom::new("S", vec![Term::var("X")])], vec![]).is_err());
    }

    #[test]
    fn egd_requires_vars_in_body() {
        let body = vec![Atom::new("E", vec![Term::var("X"), Term::var("Y")])];
        assert!(Egd::new(body.clone(), Sym::new("X"), Sym::new("Y")).is_ok());
        assert!(Egd::new(body, Sym::new("X"), Sym::new("Z")).is_err());
    }

    #[test]
    fn tgd_satisfaction() {
        let t = Tgd::parse("S(X) -> E(X,Y)").unwrap();
        let sat = Instance::parse("S(a). E(a,b).").unwrap();
        let unsat = Instance::parse("S(a). S(b). E(b,c).").unwrap();
        assert!(t.satisfied_by(&sat));
        assert!(!t.satisfied_by(&unsat));
    }

    #[test]
    fn tgd_satisfaction_with_parameters() {
        let t = Tgd::parse("S(X) -> E(X,Y)").unwrap();
        let inst = Instance::parse("S(a). S(b). E(b,c).").unwrap();
        let a = Subst::from_vars([(Sym::new("X"), Term::constant("a"))]);
        let b = Subst::from_vars([(Sym::new("X"), Term::constant("b"))]);
        let c = Subst::from_vars([(Sym::new("X"), Term::constant("c"))]);
        assert!(!t.satisfied_with(&inst, &a), "S(a) has no outgoing edge");
        assert!(t.satisfied_with(&inst, &b));
        assert!(t.satisfied_with(&inst, &c), "body not in instance: vacuous");
    }

    #[test]
    fn egd_satisfaction() {
        let e = Constraint::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let sat = Instance::parse("E(a,b).").unwrap();
        let unsat = Instance::parse("E(a,b). E(a,c).").unwrap();
        assert!(e.satisfied_by(&sat));
        assert!(!e.satisfied_by(&unsat));
    }

    #[test]
    fn positions_follow_paper_convention() {
        let t = Tgd::parse("S(X), E(X,Y) -> E(Y,Z)").unwrap();
        let body = t.body_positions();
        assert_eq!(body.len(), 3); // S^1, E^1, E^2
        assert!(body.contains(&Position::new("S", 0)));
        let x_pos = t.body_positions_of(Sym::new("X"));
        assert!(x_pos.contains(&Position::new("S", 0)));
        assert!(x_pos.contains(&Position::new("E", 0)));
        assert_eq!(x_pos.len(), 2);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for text in [
            "S(X), E(X,Y) -> E(Y,Z), E(Z,X)",
            "E(X,Y), E(X,Z) -> Y = Z",
            "-> S(X)",
            "fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)",
        ] {
            let c = Constraint::parse(text).unwrap();
            let c2 = Constraint::parse(&c.to_string()).unwrap();
            assert_eq!(c, c2, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn constraint_set_parse_and_positions() {
        let s = ConstraintSet::parse(
            "# the two intro constraints\n\
             S(X) -> E(X,Y), S(Y)\n\
             \n\
             S(X), E(X,Y) -> E(Y,X)",
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        // pos(Σ) = body positions only.
        assert!(s.positions().contains(&Position::new("S", 0)));
        assert!(s.positions().contains(&Position::new("E", 0)));
        assert_eq!(s.positions().len(), 3);
        assert_eq!(s.all_positions().len(), 3);
    }

    #[test]
    fn constraint_set_schema_clash() {
        let s = ConstraintSet::parse("S(X) -> E(X,Y)\nE(X) -> S(X)");
        assert!(s.is_err());
    }

    #[test]
    fn subset_preserves_order_and_dedupes() {
        let s = ConstraintSet::parse("S(X) -> T(X)\nT(X) -> U(X)\nU(X) -> S(X)").unwrap();
        let sub = s.subset(&[2, 0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].to_string(), "U(X) -> S(X)");
    }
}
