#![warn(missing_docs)]

//! # chase-engine
//!
//! The chase procedure itself (Section 2 of *On Chase Termination Beyond
//! Stratification*): standard and oblivious chase steps, EGD merge semantics
//! with failure, pluggable sequencing [`Strategy`]s (round-robin, fixed
//! cyclic order, seeded random, phased), step/null budgets, and the
//! data-dependent *monitor graph* guard of Section 4.2.
//!
//! The runner is deliberately able to reproduce **non-terminating** chase
//! sequences up to a budget — reproducing Example 4's divergence is as much a
//! part of the paper as reproducing the terminating orders of Theorem 2.

pub mod bfs;
pub mod core_of;
pub mod monitor;
pub mod runner;
pub mod step;
pub mod trigger;

pub use bfs::{find_terminating_sequence, BfsOutcome};
pub use core_of::{core_chase, core_of, is_core, CoreChaseResult};
pub use monitor::MonitorGraph;
pub use runner::{
    chase, chase_default, chase_naive, ChaseConfig, ChaseMode, ChaseResult, StepRecord,
    StopReason, Strategy,
};
pub use step::{apply_step, StepEffect};
pub use trigger::{
    active_triggers, first_active_trigger, for_each_delta_match, is_active, match_atom,
    oblivious_triggers,
};
