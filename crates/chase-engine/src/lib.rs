#![warn(missing_docs)]

//! # chase-engine
//!
//! The chase procedure itself (Section 2 of *On Chase Termination Beyond
//! Stratification*): standard and oblivious chase steps, EGD merge semantics
//! with failure, pluggable sequencing [`Strategy`]s (round-robin, fixed
//! cyclic order, seeded random, phased), step/null budgets, and the
//! data-dependent *monitor graph* guard of Section 4.2.
//!
//! The runner is deliberately able to reproduce **non-terminating** chase
//! sequences up to a budget — reproducing Example 4's divergence is as much a
//! part of the paper as reproducing the terminating orders of Theorem 2.
//!
//! Three engines share the same canonical trigger selection and therefore
//! produce bit-identical traces on the same inputs:
//!
//! * [`chase_naive`] — per-step full trigger re-enumeration (the reference);
//! * [`chase`] — the delta-driven trigger queue (semi-naive re-matching);
//! * [`chase_parallel`] — the delta engine scheduled over a stratification
//!   phase order, with per-step matching sharded across scoped worker
//!   threads ([`parallel`]).
//!
//! The delta engine's run state (trigger pool, dead-trigger memo, plan
//! cache, monitor, counters) is reified as a resumable [`EngineState`]:
//! one-shot entry points build and tear one down per call, while
//! [`EngineState::insert_batch`] + [`chase_resume`] keep it warm across
//! base-fact update batches — the primitive behind the `chase-serve`
//! session layer.

pub mod bfs;
pub mod core_of;
pub mod monitor;
pub mod parallel;
pub mod runner;
pub mod step;
pub mod trigger;

pub use bfs::{find_terminating_sequence, BfsOutcome};
pub use core_of::{core_chase, core_of, is_core, CoreChaseResult};
pub use monitor::MonitorGraph;
pub use parallel::{chase_parallel, ParallelConfig};
pub use runner::{
    chase, chase_default, chase_naive, chase_resume, ChaseConfig, ChaseMode, ChaseResult,
    EngineState, ResumeOutcome, StepRecord, StopReason, Strategy,
};
pub use step::{apply_step, StepEffect};
pub use trigger::{
    active_triggers, active_triggers_with, first_active_trigger, for_each_delta_match,
    head_newly_satisfied, head_rests, is_active, match_atom, oblivious_triggers,
    oblivious_triggers_with, Matcher,
};
