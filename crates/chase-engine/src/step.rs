//! Single chase steps.
//!
//! A TGD step extends the trigger homomorphism `µ` to `ν` by assigning a
//! fresh labeled null to every existential variable and adds `ν(head)`.
//! An EGD step merges the two equated terms — replacing a labeled null by
//! the other term — or **fails** when both are distinct constants
//! (Section 2).

use chase_core::homomorphism::Subst;
use chase_core::{Atom, Constraint, Instance, MergeEffect, Term};

/// What a single chase step did to the instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEffect {
    /// A TGD fired: these atoms were produced (after deduplication) and these
    /// fresh nulls were invented for the existential variables, in
    /// declaration order.
    Tgd {
        /// Atoms newly added to the instance.
        added: Vec<Atom>,
        /// The full instantiated head `ν(head)` (including atoms that were
        /// already present).
        instantiated_head: Vec<Atom>,
        /// Fresh nulls, one per existential variable.
        fresh_nulls: Vec<Term>,
    },
    /// An EGD fired and merged `from` into `to` (`from` was a labeled
    /// null). Carries the store's [`MergeEffect`]: the surviving rewritten
    /// fact ids (the merge's delta) and the collapse count, which the
    /// delta engine uses to repair its trigger pool without a rebuild.
    Merged(MergeEffect),
    /// An EGD tried to equate two distinct constants: the chase fails and the
    /// result is undefined.
    Failed,
    /// The step was a no-op (e.g. an oblivious EGD step on an already-equal
    /// pair).
    NoOp,
}

/// Apply one chase step for `(c, µ)` to `inst`.
///
/// The caller is responsible for `µ` being a body homomorphism; standard
/// versus oblivious discipline (whether `µ` must violate `c`) is a property
/// of *trigger selection*, not of the step itself — an oblivious step on a
/// satisfied TGD trigger still invents fresh nulls and adds the head.
pub fn apply_step(inst: &mut Instance, c: &Constraint, mu: &Subst) -> StepEffect {
    match c {
        Constraint::Tgd(t) => {
            let mut nu = mu.clone();
            let mut fresh = Vec::with_capacity(t.existentials().len());
            for &y in t.existentials() {
                let n = inst.fresh_null();
                nu.bind_var(y, n);
                fresh.push(n);
            }
            let instantiated: Vec<Atom> = t.head().iter().map(|a| nu.apply_atom(a)).collect();
            let mut added = Vec::new();
            for a in &instantiated {
                if inst.insert(a.clone()) {
                    added.push(a.clone());
                }
            }
            StepEffect::Tgd {
                added,
                instantiated_head: instantiated,
                fresh_nulls: fresh,
            }
        }
        Constraint::Egd(e) => {
            let a = mu.var(e.left()).expect("EGD trigger binds left variable");
            let b = mu.var(e.right()).expect("EGD trigger binds right variable");
            if a == b {
                return StepEffect::NoOp;
            }
            // Paper rule: replace µ(x_j) when it is a null, else replace
            // µ(x_i) when it is a null, else the chase fails.
            let (from, to) = if b.is_null() {
                (b, a)
            } else if a.is_null() {
                (a, b)
            } else {
                return StepEffect::Failed;
            };
            StepEffect::Merged(inst.merge_terms(from, to))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::first_active_trigger;
    use chase_core::ConstraintSet;

    #[test]
    fn tgd_step_adds_head_with_fresh_nulls() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let mut inst = Instance::parse("S(a).").unwrap();
        let mu = first_active_trigger(&set[0], &inst).unwrap();
        let eff = apply_step(&mut inst, &set[0], &mu);
        match eff {
            StepEffect::Tgd {
                added, fresh_nulls, ..
            } => {
                assert_eq!(added.len(), 2);
                assert_eq!(fresh_nulls.len(), 1);
                assert!(fresh_nulls[0].is_null());
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert_eq!(inst.len(), 3);
    }

    #[test]
    fn egd_step_merges_null_into_constant() {
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let mut inst = Instance::parse("E(a,b). E(a,_n0).").unwrap();
        let mu = first_active_trigger(&set[0], &inst).unwrap();
        let eff = apply_step(&mut inst, &set[0], &mu);
        match eff {
            StepEffect::Merged(m) => {
                assert!(m.from.is_null());
                assert_eq!(m.to, Term::constant("b"));
                // E(a,_n0) rewrote to E(a,b), which the earlier fact
                // already carries, so it collapsed and nothing survives
                // as delta.
                assert!(m.rewritten.is_empty());
                assert_eq!(m.collapsed, 1);
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn egd_step_fails_on_two_constants() {
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let mut inst = Instance::parse("E(a,b). E(a,c).").unwrap();
        let mu = first_active_trigger(&set[0], &inst).unwrap();
        assert_eq!(apply_step(&mut inst, &set[0], &mu), StepEffect::Failed);
    }

    #[test]
    fn egd_prefers_replacing_the_right_null() {
        // Both sides nulls: the paper replaces µ(x_j) (the right-hand side).
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let mut inst = Instance::parse("E(a,_n0). E(a,_n1).").unwrap();
        let mu = first_active_trigger(&set[0], &inst).unwrap();
        match apply_step(&mut inst, &set[0], &mu) {
            StepEffect::Merged(m) => {
                assert!(m.from.is_null() && m.to.is_null());
                assert_ne!(m.from, m.to);
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert_eq!(inst.len(), 1);
    }
}
