//! The monitor graph and k-cyclicity (Definitions 17–19, Section 4.2).
//!
//! The monitor graph tracks the provenance of labeled nulls during a chase
//! run. A node `(n, π)` records a fresh null `n` together with the set of
//! positions it was created in; an edge
//! `(n1, π1) --(ϕ, Π)--> (n2, π2)` records that firing constraint `ϕ` with
//! null `n1` in its body (at body positions `Π`) created `n2`.
//!
//! A chase sequence is **k-cyclic** when some path contains `k` pairwise
//! distinct edges sharing the same *signature* `(π1, ϕ, Π, π2)` — the static
//! footprint of a null-creating firing. By Lemma 5 every infinite chase
//! sequence has a k-cyclic prefix for every `k`, so aborting at a chosen
//! depth `k` is a sound (and pay-as-you-go tunable, Proposition 11) guard
//! against non-termination.
//!
//! The detector is incremental: the monitor graph of a chase sequence is a
//! DAG layered by creation time (edges always point at the step's fresh
//! nulls), so per-node signature counters can be merged edge-by-edge and the
//! longest same-signature chain is maintained in O(#signatures) per step.

use chase_core::fx::FxHashMap;
use chase_core::{Atom, PosSet, Position, Term};
use std::fmt;

/// A node `(n, π)`: null id plus the positions it was first created in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorNode {
    /// The labeled null.
    pub null: u32,
    /// Positions of the added atoms in which the null occurs.
    pub positions: PosSet,
}

/// An edge of the monitor graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorEdge {
    /// Source node index.
    pub src: usize,
    /// Target node index.
    pub dst: usize,
    /// The constraint (by index in the chased set) whose firing created the
    /// target null.
    pub constraint: usize,
    /// Positions in the instantiated body at which the source null occurred.
    pub body_positions: PosSet,
}

/// The signature `p2,3,4,6` of an edge: everything except the concrete nulls.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeSignature {
    /// Creation positions of the source null.
    pub src_positions: PosSet,
    /// Constraint index.
    pub constraint: usize,
    /// Body positions of the source null in the firing.
    pub body_positions: PosSet,
    /// Creation positions of the target null.
    pub dst_positions: PosSet,
}

/// The monitor graph of a (running or finished) chase sequence.
#[derive(Debug, Clone, Default)]
pub struct MonitorGraph {
    nodes: Vec<MonitorNode>,
    node_of_null: FxHashMap<u32, usize>,
    edges: Vec<MonitorEdge>,
    /// `counts[v][sig]` = maximum number of `sig`-edges on any path ending
    /// in `v`.
    counts: Vec<FxHashMap<EdgeSignature, usize>>,
    max_chain: usize,
}

impl MonitorGraph {
    /// Empty monitor graph.
    pub fn new() -> MonitorGraph {
        MonitorGraph::default()
    }

    /// Nodes in creation order.
    pub fn nodes(&self) -> &[MonitorNode] {
        &self.nodes
    }

    /// Edges in creation order.
    pub fn edges(&self) -> &[MonitorEdge] {
        &self.edges
    }

    /// The largest `k` for which the observed sequence is k-cyclic.
    pub fn max_chain(&self) -> usize {
        self.max_chain
    }

    /// Is the observed sequence k-cyclic (Definition 19)?
    pub fn is_k_cyclic(&self, k: usize) -> bool {
        k >= 1 && self.max_chain >= k
    }

    /// Record a TGD firing (EGD steps leave the monitor graph unchanged by
    /// Definition 18).
    ///
    /// * `constraint` — index of the TGD in the chased set;
    /// * `ground_body` — the instantiated body `body(ϕ(a))`;
    /// * `fresh_nulls` — the nulls invented by this step;
    /// * `added_atoms` — the instantiated head atoms added to the instance.
    pub fn record_tgd_step(
        &mut self,
        constraint: usize,
        ground_body: &[Atom],
        fresh_nulls: &[Term],
        added_atoms: &[Atom],
    ) {
        if fresh_nulls.is_empty() {
            return;
        }
        // New nodes, one per fresh null, positioned where the null occurs in
        // the added atoms.
        let mut new_nodes = Vec::new();
        for &n in fresh_nulls {
            let id = match n {
                Term::Null(id) => id,
                _ => continue,
            };
            let mut positions = PosSet::new();
            for a in added_atoms {
                for (i, &t) in a.terms().iter().enumerate() {
                    if t == n {
                        positions.insert(Position::new(a.pred(), i));
                    }
                }
            }
            let idx = self.nodes.len();
            self.nodes.push(MonitorNode {
                null: id,
                positions,
            });
            self.counts.push(FxHashMap::default());
            self.node_of_null.insert(id, idx);
            new_nodes.push(idx);
        }
        // Edges from every pre-existing node whose null occurs in the body.
        // (Nulls of the original instance have no node and contribute no
        // edges; Definition 18 only connects chase-created nulls.)
        let mut body_occurrences: FxHashMap<u32, PosSet> = FxHashMap::default();
        for a in ground_body {
            for (i, &t) in a.terms().iter().enumerate() {
                if let Term::Null(id) = t {
                    body_occurrences
                        .entry(id)
                        .or_default()
                        .insert(Position::new(a.pred(), i));
                }
            }
        }
        let mut sources: Vec<(usize, PosSet)> = body_occurrences
            .into_iter()
            .filter_map(|(id, pos)| self.node_of_null.get(&id).map(|&s| (s, pos)))
            .collect();
        sources.sort_by_key(|&(s, _)| s);
        for &dst in &new_nodes {
            for (src, body_positions) in &sources {
                self.add_edge(*src, dst, constraint, body_positions.clone());
            }
        }
    }

    fn add_edge(&mut self, src: usize, dst: usize, constraint: usize, body_positions: PosSet) {
        debug_assert!(src < dst, "monitor graph must be layered by creation time");
        let sig = EdgeSignature {
            src_positions: self.nodes[src].positions.clone(),
            constraint,
            body_positions: body_positions.clone(),
            dst_positions: self.nodes[dst].positions.clone(),
        };
        self.edges.push(MonitorEdge {
            src,
            dst,
            constraint,
            body_positions,
        });
        // Merge the source's chain counters into the target, bumping the
        // counter of this edge's own signature.
        let src_counts = self.counts[src].clone();
        let dst_counts = &mut self.counts[dst];
        for (s, c) in src_counts {
            let bump = usize::from(s == sig);
            let entry = dst_counts.entry(s).or_insert(0);
            *entry = (*entry).max(c + bump);
        }
        let entry = dst_counts.entry(sig).or_insert(0);
        *entry = (*entry).max(1);
        self.max_chain = self.max_chain.max(*dst_counts.values().max().unwrap_or(&0));
    }

    /// GraphViz rendering for reports and debugging.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph monitor {\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let pos: Vec<String> = n.positions.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(
                out,
                "  n{i} [label=\"(_n{}, {{{}}})\"];",
                n.null,
                pos.join(",")
            );
        }
        for e in &self.edges {
            let pos: Vec<String> = e.body_positions.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"c{}, {{{}}}\"];",
                e.src,
                e.dst,
                e.constraint,
                pos.join(",")
            );
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for MonitorGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "monitor graph: {} nodes, {} edges, max chain {}",
            self.nodes.len(),
            self.edges.len(),
            self.max_chain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_atom_list;

    fn pos(s: &[(&str, usize)]) -> PosSet {
        s.iter().map(|&(p, i)| Position::new(p, i)).collect()
    }

    #[test]
    fn single_step_creates_node_without_edges() {
        let mut g = MonitorGraph::new();
        let body = parse_atom_list("S(a)").unwrap();
        let added = parse_atom_list("E(a,_n0)").unwrap();
        g.record_tgd_step(0, &body, &[Term::null(0)], &added);
        assert_eq!(g.nodes().len(), 1);
        assert!(g.edges().is_empty());
        assert_eq!(g.nodes()[0].positions, pos(&[("E", 1)]));
        assert_eq!(g.max_chain(), 0);
    }

    #[test]
    fn chained_creation_builds_signature_chain() {
        let mut g = MonitorGraph::new();
        // Step 1: S(a) creates _n0 in E^2.
        g.record_tgd_step(
            0,
            &parse_atom_list("S(a)").unwrap(),
            &[Term::null(0)],
            &parse_atom_list("E(a,_n0)").unwrap(),
        );
        // Step 2: body E(a,_n0) creates _n1 in E^2.
        g.record_tgd_step(
            0,
            &parse_atom_list("E(a,_n0)").unwrap(),
            &[Term::null(1)],
            &parse_atom_list("E(_n0,_n1)").unwrap(),
        );
        // Step 3: same shape again.
        g.record_tgd_step(
            0,
            &parse_atom_list("E(_n0,_n1)").unwrap(),
            &[Term::null(2)],
            &parse_atom_list("E(_n1,_n2)").unwrap(),
        );
        assert_eq!(g.nodes().len(), 3);
        // _n0 → _n1 (Π = {E^2}) and _n1 → _n2 (Π = {E^2}) share a signature;
        // _n0 → _n2 (Π = {E^1}) does not.
        assert_eq!(g.edges().len(), 3);
        assert!(g.is_k_cyclic(2));
        assert!(!g.is_k_cyclic(3));
    }

    #[test]
    fn full_tgds_do_not_touch_the_graph() {
        let mut g = MonitorGraph::new();
        g.record_tgd_step(
            0,
            &parse_atom_list("E(a,b)").unwrap(),
            &[],
            &parse_atom_list("E(b,a)").unwrap(),
        );
        assert!(g.nodes().is_empty());
    }

    #[test]
    fn initial_instance_nulls_are_not_nodes() {
        let mut g = MonitorGraph::new();
        // Body contains _n9 which the monitor has never seen: no edge.
        g.record_tgd_step(
            0,
            &parse_atom_list("E(a,_n9)").unwrap(),
            &[Term::null(10)],
            &parse_atom_list("E(_n9,_n10)").unwrap(),
        );
        assert_eq!(g.nodes().len(), 1);
        assert!(g.edges().is_empty());
    }
}
