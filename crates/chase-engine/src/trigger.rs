//! Trigger enumeration: which constraint instantiations can fire?
//!
//! A *standard* chase step for a TGD applies to `(α, µ)` when `µ` maps the
//! body into the instance and cannot be extended to a head homomorphism; an
//! EGD applies when the body maps and the equated terms differ. An
//! *oblivious* step applies whenever the body maps, regardless of
//! satisfaction.
//!
//! All enumeration here is expressed over a [`Matcher`] — either the
//! `chase-plan` cost-guided join programs (planner on) or the classic
//! backtracking searcher (planner off). Both enumerate the same
//! homomorphism *sets*; since triggers are identified by their normalized
//! assignment and selected canonically, every function whose result is a
//! set or a canonical element is enumeration-order-independent. The legacy
//! free functions keep their historical (searcher-order) behavior by
//! delegating to an unplanned matcher.

use chase_core::fx::FxHashSet;
use chase_core::homomorphism::{for_each_hom, Subst};
use chase_core::{Atom, Constraint, Instance, Sym, Term};
pub use chase_plan::Matcher;

/// Is `(c, µ)` an active (standard-chase) trigger? Assumes `µ` maps the body
/// into `inst`; checks the violation side.
pub fn is_active(c: &Constraint, inst: &Instance, mu: &Subst) -> bool {
    match c {
        Constraint::Tgd(t) => !chase_core::exists_extension(t.head(), inst, mu),
        Constraint::Egd(e) => mu.var(e.left()) != mu.var(e.right()),
    }
}

/// First active trigger of `c` in deterministic search order, if any.
pub fn first_active_trigger(c: &Constraint, inst: &Instance) -> Option<Subst> {
    let mut found = None;
    for_each_hom(c.body(), inst, &Subst::new(), false, &mut |mu| {
        if is_active(c, inst, mu) {
            found = Some(mu.clone());
            true
        } else {
            false
        }
    });
    found
}

/// All active triggers of `c`, deduplicated, in deterministic order.
pub fn active_triggers(c: &Constraint, inst: &Instance) -> Vec<Subst> {
    active_triggers_with(&Matcher::unplanned(), 0, c, inst)
}

/// [`active_triggers`] through a [`Matcher`] (`ci` is the constraint's index
/// in the set the matcher was compiled for; ignored when unplanned).
///
/// The returned *set* of triggers is matcher-independent; the order within
/// the vector follows the matcher's enumeration.
pub fn active_triggers_with(m: &Matcher, ci: usize, c: &Constraint, inst: &Instance) -> Vec<Subst> {
    let mut out: Vec<Subst> = Vec::new();
    let mut seen: FxHashSet<Vec<(Sym, Term)>> = FxHashSet::default();
    m.for_each_body_hom(ci, c, inst, &mut |mu| {
        if m.is_active(ci, c, inst, mu) {
            let key = normalize(c, mu);
            if seen.insert(key) {
                out.push(mu.clone());
            }
        }
        false
    });
    out
}

/// All body homomorphisms of `c` (oblivious triggers), deduplicated.
pub fn oblivious_triggers(c: &Constraint, inst: &Instance) -> Vec<Subst> {
    oblivious_triggers_with(&Matcher::unplanned(), 0, c, inst)
}

/// [`oblivious_triggers`] through a [`Matcher`]; see
/// [`active_triggers_with`] for the `ci` and ordering contract.
pub fn oblivious_triggers_with(
    m: &Matcher,
    ci: usize,
    c: &Constraint,
    inst: &Instance,
) -> Vec<Subst> {
    let mut out: Vec<Subst> = Vec::new();
    let mut seen: FxHashSet<Vec<(Sym, Term)>> = FxHashSet::default();
    m.for_each_body_hom(ci, c, inst, &mut |mu| {
        let key = normalize(c, mu);
        if seen.insert(key) {
            out.push(mu.clone());
        }
        false
    });
    out
}

/// Unify one body atom with one ground fact, extending `seed` — re-exported
/// from `chase_core` so the single-atom semantics live next to the full
/// searcher they must agree with.
pub use chase_core::homomorphism::unify_atom as match_atom;

/// Semi-naive delta enumeration: every body homomorphism of `c` into `inst`
/// that maps at least one body atom onto an atom of `delta` (which must be a
/// subset of `inst`).
///
/// Each body slot is pinned to each delta atom in turn and the remaining
/// body atoms are completed through the regular index-driven searcher, so
/// the cost scales with the delta, not the instance. A match using several
/// delta atoms is reported once per delta atom it uses; callers deduplicate
/// by normalized assignment (they already must, because distinct
/// homomorphisms can normalize to the same trigger).
pub fn for_each_delta_match(
    c: &Constraint,
    inst: &Instance,
    delta: &[Atom],
    cb: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    Matcher::unplanned().for_each_delta_match(0, c, inst, delta, cb)
}

/// Per-slot "rest of the head": `rests[j]` is the head with atom `j`
/// removed. Precomputed once per revalidation pass and shared (read-only)
/// across revalidation workers.
pub fn head_rests(head: &[Atom]) -> Vec<Vec<Atom>> {
    (0..head.len())
        .map(|j| {
            head.iter()
                .enumerate()
                .filter(|&(k, _)| k != j)
                .map(|(_, b)| b.clone())
                .collect()
        })
        .collect()
}

/// Did adding `added` (already inserted into `inst`) newly satisfy a TGD
/// head under the pooled trigger `mu`?
///
/// Delta-seeded revalidation, symmetric to the body re-match: a *new* head
/// extension must map at least one head atom onto a delta atom, so exactly
/// those pairs are tried — each µ-instantiated head atom is unified with
/// each delta atom (existential variables still free) and the remaining
/// head atoms (`rests`, from [`head_rests`]) are completed through the
/// searcher. This keeps the per-trigger cost at a few O(arity) unifications
/// in the common case instead of a full backtracking extension search per
/// pooled trigger.
///
/// Pure and `Sync`-friendly: the parallel engine calls it concurrently from
/// revalidation workers, each over its shard of the trigger pool.
pub fn head_newly_satisfied(
    head: &[Atom],
    rests: &[Vec<Atom>],
    inst: &Instance,
    added: &[Atom],
    mu: &Subst,
) -> bool {
    Matcher::unplanned().head_newly_satisfied(0, head, rests, inst, added, mu)
}

/// Canonical form of an assignment: bindings of the universal variables,
/// sorted by variable name. Two triggers are "the same" iff they agree here.
pub fn normalize(c: &Constraint, mu: &Subst) -> Vec<(Sym, Term)> {
    let mut v: Vec<(Sym, Term)> = c
        .universals()
        .into_iter()
        .filter_map(|u| mu.var(u).map(|t| (u, t)))
        .collect();
    v.sort_by_key(|(s, _)| s.as_str());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::ConstraintSet;

    #[test]
    fn tgd_trigger_only_when_violated() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
        let sat = Instance::parse("S(a). E(a,b).").unwrap();
        let unsat = Instance::parse("S(a). S(b). E(b,c).").unwrap();
        assert!(first_active_trigger(&set[0], &sat).is_none());
        let mu = first_active_trigger(&set[0], &unsat).unwrap();
        assert_eq!(mu.var(Sym::new("X")), Some(Term::constant("a")));
    }

    #[test]
    fn oblivious_triggers_ignore_satisfaction() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
        let sat = Instance::parse("S(a). E(a,b).").unwrap();
        assert_eq!(active_triggers(&set[0], &sat).len(), 0);
        assert_eq!(oblivious_triggers(&set[0], &sat).len(), 1);
    }

    #[test]
    fn egd_trigger_requires_difference() {
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let same = Instance::parse("E(a,b).").unwrap();
        let diff = Instance::parse("E(a,b). E(a,c).").unwrap();
        assert!(first_active_trigger(&set[0], &same).is_none());
        // (b,c) and (c,b) are two distinct violating assignments.
        assert_eq!(active_triggers(&set[0], &diff).len(), 2);
    }

    #[test]
    fn head_revalidation_agrees_with_activity_check() {
        // For a trigger that was violated before the delta, "the delta newly
        // satisfied the head" must coincide with "the trigger is no longer
        // active" — the contract pool revalidation relies on.
        let set = ConstraintSet::parse("S(X) -> E(X,Y), T(Y)").unwrap();
        let c = &set[0];
        let Constraint::Tgd(t) = c else {
            panic!("expected a TGD")
        };
        let mut inst = Instance::parse("S(a). S(b).").unwrap();
        let mus = active_triggers(c, &inst);
        assert_eq!(mus.len(), 2);
        let rests = head_rests(t.head());
        let added = vec![
            Atom::new("E", vec![Term::constant("a"), Term::constant("b")]),
            Atom::new("T", vec![Term::constant("b")]),
        ];
        for a in &added {
            inst.insert(a.clone());
        }
        for mu in &mus {
            assert_eq!(
                head_newly_satisfied(t.head(), &rests, &inst, &added, mu),
                !is_active(c, &inst, mu),
                "disagreement for {mu}"
            );
        }
    }

    #[test]
    fn planned_and_unplanned_trigger_sets_agree() {
        let set = ConstraintSet::parse(
            "E(X,Y), E(Y,Z) -> E(X,Z)\n\
             S(X) -> E(X,Y)\n\
             E(X,Y), E(X,Z) -> Y = Z",
        )
        .unwrap();
        let mut inst = Instance::parse("E(a,b). E(b,c). E(a,c). S(a). S(z).").unwrap();
        let planned = Matcher::planned(&set, &mut inst);
        let unplanned = Matcher::unplanned();
        let keys = |mus: Vec<Subst>, c: &Constraint| {
            let mut v: Vec<Vec<(Sym, Term)>> = mus.iter().map(|mu| normalize(c, mu)).collect();
            v.sort();
            v
        };
        for (ci, c) in set.enumerate() {
            assert_eq!(
                keys(active_triggers_with(&planned, ci, c, &inst), c),
                keys(active_triggers_with(&unplanned, ci, c, &inst), c),
                "active trigger sets differ on constraint {ci}"
            );
            assert_eq!(
                keys(oblivious_triggers_with(&planned, ci, c, &inst), c),
                keys(oblivious_triggers_with(&unplanned, ci, c, &inst), c),
                "oblivious trigger sets differ on constraint {ci}"
            );
            // The legacy free functions are the unplanned path.
            assert_eq!(
                keys(active_triggers(c, &inst), c),
                keys(active_triggers_with(&unplanned, ci, c, &inst), c)
            );
        }
    }

    #[test]
    fn triggers_are_deduplicated() {
        // The body has one atom; three matching facts, all violating.
        let set = ConstraintSet::parse("S(X) -> T(X,Y)").unwrap();
        let inst = Instance::parse("S(a). S(b). S(c).").unwrap();
        assert_eq!(active_triggers(&set[0], &inst).len(), 3);
    }
}
