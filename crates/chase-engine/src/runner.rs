//! The chase runner: sequences of chase steps under a pluggable strategy.
//!
//! The paper's chase imposes *no* order on applicable constraints, and its
//! central negative results (Example 4) hinge on specific orders diverging
//! while others terminate. The runner therefore makes the order an explicit
//! [`Strategy`]:
//!
//! * [`Strategy::RoundRobin`] — scan constraints cyclically, one step each;
//! * [`Strategy::FixedCycle`] — apply constraints in a given cyclic order
//!   (reproduces Example 4's diverging sequence exactly);
//! * [`Strategy::Random`] — pick a uniformly random active trigger each step
//!   (seeded, for property tests over "every chase sequence" claims);
//! * [`Strategy::Phased`] — exhaust constraint groups in order (the
//!   terminating-order construction of Theorem 2).
//!
//! Budgets (`max_steps`, `max_nulls`) and the monitor-graph guard
//! (`monitor_depth`, Section 4.2) bound runs that would otherwise diverge.
//!
//! # The delta-driven trigger queue
//!
//! The engine keeps every currently fireable trigger in a trigger pool —
//! one ordered map per constraint, keyed by the normalized assignment — and
//! maintains it **incrementally**. After a TGD step adds atoms:
//!
//! * only constraints whose *body* predicates intersect the delta are
//!   re-matched, semi-naively: each new atom is pinned into each compatible
//!   body slot and the rest of the body is completed through the
//!   index-driven homomorphism searcher
//!   ([`crate::trigger::for_each_delta_match`]);
//! * only pooled triggers of constraints whose *TGD head* predicates
//!   intersect the delta are re-validated (new atoms are the only way a
//!   violated TGD trigger can become satisfied);
//! * triggers found satisfied are memoized in a dead-set so the standard
//!   chase's "not already satisfied" check never runs twice for the same
//!   `(constraint, assignment)` pair.
//!
//! EGD merges are delta-driven too. The store returns a
//! [`chase_core::MergeEffect`] naming the rows the merge rewrote, and the
//! engine repairs its structures from that delta: pooled substitutions and
//! dead/fired memo keys are remapped through `from ↦ to` (normalized keys
//! sort by variable *name*, so the substitution renormalizes them in
//! place), remapped pool triggers are re-validated in full, and the
//! rewritten rows seed the same semi-naive re-matching and head
//! revalidation a TGD delta uses — no pool rebuild, no memo wipe.
//!
//! All matching work — pool rebuilds, semi-naive delta re-matching, head
//! revalidation, and the naive reference's full re-enumeration — goes
//! through a [`Matcher`]: with `ChaseConfig::use_planner` (the default) each
//! constraint body and head is compiled once per statistics epoch into a
//! `chase-plan` join program (greedy bind-first/smallest-relation-first atom
//! order, composite secondary-index lookups), and with the planner off the
//! classic backtracking searcher runs instead. Both enumerate the same
//! homomorphism sets and triggers are selected canonically by normalized
//! assignment, so traces are bit-identical planner-on vs planner-off.
//!
//! This replaces the seed engine's per-step full re-enumeration — a
//! backtracking search over the whole instance for every constraint on every
//! step, the quadratic blow-up *Stop the Chase* (Meier et al., 2009) calls
//! out — with work driven by each step's delta. (Not strictly O(delta):
//! when a delta predicate appears in a constraint's head, revalidation
//! scans that constraint's pooled triggers, paying a cheap per-trigger
//! unification pre-filter and a seeded extension search only on unifying
//! pairs.) The old behaviour is
//! retained as [`chase_naive`] so tests and benches can compare the two
//! engines trigger for trigger: both select the canonically least trigger
//! (smallest constraint index, then smallest normalized assignment), so
//! their traces are bit-identical whenever the pool is maintained correctly.

use crate::monitor::MonitorGraph;
use crate::parallel::WorkerPool;
use crate::step::{apply_step, StepEffect};
use crate::trigger::{head_rests, normalize, Matcher};
use chase_core::fx::{FxHashMap, FxHashSet};
use chase_core::homomorphism::Subst;
use chase_core::{Atom, Constraint, ConstraintSet, Instance, MergeEffect, Sym, Term};
use chase_obs::{EventKind, Phase, PhaseTimer, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Standard chase (fire only violated triggers) or oblivious chase (fire
/// every body match once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseMode {
    /// Fire a trigger only while the instantiated constraint is violated.
    #[default]
    Standard,
    /// Fire every `(constraint, assignment)` pair exactly once, violated or
    /// not (the oblivious chase used by c-stratification, Definition 4).
    Oblivious,
}

/// The order in which applicable constraints are fired.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Cycle through constraint indices `0..n`, applying at most one step per
    /// constraint per pass.
    #[default]
    RoundRobin,
    /// Cycle through the given constraint indices (repetitions allowed),
    /// applying at most one step per entry per pass.
    FixedCycle(Vec<usize>),
    /// Uniformly random choice among all active triggers, from a seeded RNG.
    Random {
        /// RNG seed; equal seeds give equal sequences.
        seed: u64,
    },
    /// Chase each group of constraint indices to completion before moving to
    /// the next group, then finish with a round-robin pass over everything
    /// (a no-op for correctly stratified phases, Theorem 2).
    Phased(Vec<Vec<usize>>),
}

/// Chase configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseConfig {
    /// Standard or oblivious stepping.
    pub mode: ChaseMode,
    /// Firing order.
    pub strategy: Strategy,
    /// Stop after this many steps (`None` = unbounded — beware, the chase
    /// need not terminate).
    pub max_steps: Option<usize>,
    /// Stop after inventing this many fresh nulls.
    pub max_nulls: Option<usize>,
    /// Abort as soon as the monitor graph becomes k-cyclic for this `k`
    /// (Section 4.2). Implies monitor-graph maintenance.
    pub monitor_depth: Option<usize>,
    /// Keep a full step-by-step trace in the result.
    pub keep_trace: bool,
    /// Maintain (and return) the monitor graph even without a depth guard.
    pub keep_monitor: bool,
    /// Route all trigger matching through the `chase-plan` cost-guided join
    /// programs and composite indexes (the default). With `false`, every
    /// matching path runs the classic backtracking searcher instead.
    /// Trigger selection is canonical either way, so traces are
    /// bit-identical planner-on vs planner-off — only the cost differs.
    pub use_planner: bool,
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            mode: ChaseMode::Standard,
            strategy: Strategy::RoundRobin,
            max_steps: Some(10_000),
            max_nulls: None,
            monitor_depth: None,
            keep_trace: false,
            keep_monitor: false,
            use_planner: true,
        }
    }
}

impl ChaseConfig {
    /// Default configuration with a step budget.
    pub fn with_max_steps(n: usize) -> ChaseConfig {
        ChaseConfig {
            max_steps: Some(n),
            ..ChaseConfig::default()
        }
    }

    /// Default configuration with the Section 4.2 monitor guard.
    pub fn with_monitor_depth(k: usize) -> ChaseConfig {
        ChaseConfig {
            monitor_depth: Some(k),
            max_steps: None,
            ..ChaseConfig::default()
        }
    }
}

/// Why the run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The instance satisfies every constraint: the chase terminated and the
    /// result is `I^Σ`.
    Satisfied,
    /// An EGD tried to equate two distinct constants: the chase fails.
    Failed,
    /// The step budget was exhausted with violations remaining.
    StepLimit(usize),
    /// The fresh-null budget was exhausted.
    NullLimit(usize),
    /// The monitor graph became k-cyclic for the configured depth: the
    /// sequence is *potentially* infinite and no guarantee can be given.
    MonitorAbort {
        /// The configured cycle depth that was reached.
        depth: usize,
    },
}

/// One applied chase step, as recorded in the trace.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Index of the fired constraint.
    pub constraint: usize,
    /// The trigger assignment, restricted to universal variables and sorted
    /// by variable name.
    pub assignment: Vec<(Sym, Term)>,
    /// The instantiated body under the assignment.
    pub ground_body: Vec<Atom>,
    /// Atoms newly added (TGD steps).
    pub added: Vec<Atom>,
    /// Fresh nulls invented (TGD steps).
    pub fresh_nulls: Vec<Term>,
    /// Merge performed (EGD steps): `(from, to)`.
    pub merged: Option<(Term, Term)>,
    /// Facts rewritten by the merge (EGD steps; `0` otherwise) — the size
    /// of the delta the pool was re-matched against.
    pub merge_rewritten: usize,
    /// Facts that collapsed onto existing rows during the merge (EGD
    /// steps; `0` otherwise).
    pub merge_collapsed: usize,
}

/// The outcome of a chase run.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The final (or last reached) instance.
    pub instance: Instance,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Number of chase steps applied (the sequence length `r`).
    pub steps: usize,
    /// Number of fresh nulls invented.
    pub fresh_nulls: usize,
    /// Per-step trace (only when `keep_trace`).
    pub trace: Vec<StepRecord>,
    /// The monitor graph (only when maintained).
    pub monitor: Option<MonitorGraph>,
}

impl ChaseResult {
    /// Did the chase terminate with `I ⊨ Σ`?
    pub fn terminated(&self) -> bool {
        self.reason == StopReason::Satisfied
    }

    /// Did the chase fail on an EGD?
    pub fn failed(&self) -> bool {
        self.reason == StopReason::Failed
    }
}

impl fmt::Display for ChaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after {} steps ({} fresh nulls, {} atoms)",
            self.reason,
            self.steps,
            self.fresh_nulls,
            self.instance.len()
        )
    }
}

/// Canonical identity of a trigger: the normalized assignment of the
/// constraint's universal variables (see [`normalize`]).
type TriggerKey = Vec<(Sym, Term)>;

/// The currently fireable triggers, one ordered map per constraint.
///
/// `BTreeMap` gives the canonical within-constraint order (assignments
/// compare by interned symbol id, then term) that both engines use for
/// selection, and `pop_first` hands the fired trigger out by value — no
/// `Subst` clone on the hot path.
#[derive(Default, Clone)]
struct TriggerPool {
    pools: Vec<BTreeMap<TriggerKey, Subst>>,
    total: usize,
}

impl TriggerPool {
    fn new(constraints: usize) -> TriggerPool {
        TriggerPool {
            pools: (0..constraints).map(|_| BTreeMap::new()).collect(),
            total: 0,
        }
    }

    fn insert(&mut self, ci: usize, key: TriggerKey, mu: Subst) -> bool {
        let new = self.pools[ci].insert(key, mu).is_none();
        self.total += usize::from(new);
        new
    }

    fn contains(&self, ci: usize, key: &TriggerKey) -> bool {
        self.pools[ci].contains_key(key)
    }

    fn remove(&mut self, ci: usize, key: &TriggerKey) -> Option<Subst> {
        let removed = self.pools[ci].remove(key);
        self.total -= usize::from(removed.is_some());
        removed
    }

    fn pop_first(&mut self, ci: usize) -> Option<(TriggerKey, Subst)> {
        let popped = self.pools[ci].pop_first();
        self.total -= usize::from(popped.is_some());
        popped
    }

    /// Remove and return the `n`-th trigger in global canonical order
    /// (constraint index, then assignment).
    fn take_nth(&mut self, mut n: usize) -> Option<(usize, TriggerKey, Subst)> {
        for (ci, pool) in self.pools.iter_mut().enumerate() {
            if n < pool.len() {
                let key = pool.keys().nth(n).expect("index in range").clone();
                let mu = pool.remove(&key).expect("key just read");
                self.total -= 1;
                return Some((ci, key, mu));
            }
            n -= pool.len();
        }
        None
    }

    fn clear(&mut self) {
        for pool in &mut self.pools {
            pool.clear();
        }
        self.total = 0;
    }
}

/// The resumable core of a chase run: the instance together with every
/// incrementally maintained matching structure — the trigger pool, the
/// dead/fired memos, the compiled [`Matcher`] plan cache, the monitor
/// graph, and the cumulative step/null counters.
///
/// A one-shot [`chase`] builds an `EngineState`, drives it to a stop, and
/// tears it apart into a [`ChaseResult`]. The serving layer
/// (`chase-serve`) instead keeps one alive across update batches: after
/// [`EngineState::insert_batch`] the pool has already been re-matched
/// semi-naively from the batch delta, so [`chase_resume`] continues the
/// chase warm instead of rebuilding pool, memos, and plans from scratch.
///
/// Warm continuation is sound because everything memoized is monotone
/// under the chase's own operations: added atoms (chase steps *or*
/// base-fact batches) never un-satisfy a TGD trigger and never change an
/// EGD trigger's bindings, and EGD merges rename terms permanently, so the
/// dead-set stays valid once its keys are remapped through the merge.
/// Trigger selection stays canonical, so a resumed chase is some legal
/// chase sequence of the accumulated base facts.
///
/// The state is only meaningful for the `(set, cfg)` pair it was built
/// with; methods taking them again expect the *same* values (the session
/// layer owns all three together). `Clone` is the snapshot/fork
/// primitive: the columnar instance, the pool's ordered maps, and the plan
/// cache all clone without re-deriving anything.
#[derive(Clone)]
pub struct EngineState {
    inst: Instance,
    steps: usize,
    fresh_nulls: usize,
    monitor: Option<MonitorGraph>,
    /// Oblivious mode: triggers that already fired, keyed per constraint so
    /// membership probes borrow the key instead of cloning it.
    fired: Vec<FxHashSet<TriggerKey>>,
    /// Standard mode, delta engine: triggers known to be satisfied, keyed
    /// per constraint. This is monotone — added atoms never un-satisfy a
    /// TGD trigger and never change an EGD trigger's bindings — so
    /// membership means the "not already satisfied" check can be skipped
    /// for good. EGD merges remap the keys through `from ↦ to` (a
    /// satisfied trigger stays satisfied under the renaming).
    dead: Vec<FxHashSet<TriggerKey>>,
    /// The incrementally maintained active-trigger queue (delta engine only).
    pool: TriggerPool,
    /// Per-constraint body predicates, for delta → constraint dispatch.
    body_preds: Vec<FxHashSet<Sym>>,
    /// Per-constraint TGD head predicates, for revalidation dispatch.
    head_preds: Vec<FxHashSet<Sym>>,
    /// The matching engine every trigger query goes through: compiled
    /// `chase-plan` join programs (planner on) or the classic searcher
    /// (planner off). Refreshed when the instance's statistics epoch
    /// moves; shared read-only with matcher shards.
    matcher: Matcher,
    /// Facts rewritten by EGD merges, cumulative across every run over
    /// this state (merge-cost observability for the serving layer).
    merge_rewritten: usize,
    /// Facts removed by merge deduplication, cumulative.
    merge_collapsed: usize,
    /// Did the pool's initial full enumeration run yet? (Delta engines
    /// only; the naive reference never builds the pool.)
    pool_built: bool,
    /// A terminal stop ([`StopReason::Failed`] or
    /// [`StopReason::MonitorAbort`]) observed by some run over this state.
    /// Budget stops are *not* terminal — a later resume gets a fresh
    /// budget — but a failed or aborted state cannot be chased further.
    poisoned: Option<StopReason>,
    /// Telemetry sink: per-phase wall-clock histograms and the event ring.
    /// Strictly write-only from the engine's point of view — nothing here
    /// is ever read back into trigger selection, so recording cannot
    /// perturb the deterministic trace. Defaults to the process-global
    /// recorder ([`chase_obs::global`], enabled by `CHASE_OBS`); `Clone`
    /// shares the sink, so forks and snapshots keep feeding one recorder.
    recorder: Recorder,
}

impl EngineState {
    /// Build fresh state for chasing `instance` under `set`/`cfg`: clones
    /// the instance, compiles the matcher (planner permitting), and sets up
    /// the dispatch tables. The trigger pool itself is populated lazily by
    /// the first run (or resume) over the state.
    pub fn new(instance: &Instance, set: &ConstraintSet, cfg: &ChaseConfig) -> EngineState {
        let monitor = if cfg.monitor_depth.is_some() || cfg.keep_monitor {
            Some(MonitorGraph::new())
        } else {
            None
        };
        let collect_preds =
            |atoms: &[Atom]| -> FxHashSet<Sym> { atoms.iter().map(|a| a.pred()).collect() };
        let body_preds: Vec<FxHashSet<Sym>> = set
            .enumerate()
            .map(|(_, c)| collect_preds(c.body()))
            .collect();
        let head_preds: Vec<FxHashSet<Sym>> = set
            .enumerate()
            .map(|(_, c)| match c {
                Constraint::Tgd(t) => collect_preds(t.head()),
                Constraint::Egd(_) => FxHashSet::default(),
            })
            .collect();
        let mut inst = instance.clone();
        let recorder = chase_obs::global().clone();
        let matcher = if cfg.use_planner {
            Matcher::planned_with(set, &mut inst, recorder.clone())
        } else {
            Matcher::unplanned()
        };
        EngineState {
            inst,
            steps: 0,
            fresh_nulls: 0,
            monitor,
            fired: vec![FxHashSet::default(); set.len()],
            dead: vec![FxHashSet::default(); set.len()],
            pool: TriggerPool::new(set.len()),
            body_preds,
            head_preds,
            matcher,
            merge_rewritten: 0,
            merge_collapsed: 0,
            pool_built: false,
            poisoned: None,
            recorder,
        }
    }

    /// Install a telemetry recorder for this state (and its matcher),
    /// replacing the process-global default. The recorder only *observes* —
    /// phase timings and events never feed back into trigger selection —
    /// so traces are bit-identical whether it is enabled or not.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.matcher.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The telemetry recorder this state reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The current instance (chased as far as the runs so far got).
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// Consume the state, keeping only the instance.
    pub fn into_instance(self) -> Instance {
        self.inst
    }

    /// Chase steps applied across every run over this state.
    pub fn total_steps(&self) -> usize {
        self.steps
    }

    /// Fresh nulls invented across every run over this state.
    pub fn total_fresh_nulls(&self) -> usize {
        self.fresh_nulls
    }

    /// Facts rewritten by EGD merges across every run over this state —
    /// the total merge delta the pool was re-matched against.
    pub fn total_merge_rewritten(&self) -> usize {
        self.merge_rewritten
    }

    /// Facts that collapsed onto existing rows during EGD merges across
    /// every run over this state.
    pub fn total_merge_collapsed(&self) -> usize {
        self.merge_collapsed
    }

    /// The matcher (plan cache) the state threads through every run — for
    /// plan-cache-reuse introspection (`Matcher::recompile_count`).
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }

    /// The monitor graph, when the configuration maintains one.
    pub fn monitor(&self) -> Option<&MonitorGraph> {
        self.monitor.as_ref()
    }

    /// The terminal stop that poisoned this state, if any: an EGD
    /// [`StopReason::Failed`] or a [`StopReason::MonitorAbort`]. Poisoned
    /// states refuse further chasing ([`chase_resume`] returns the reason
    /// immediately); budget stops do not poison.
    pub fn poisoned(&self) -> Option<&StopReason> {
        self.poisoned.as_ref()
    }

    /// Is the state fully chased — the pool built, empty, and the state not
    /// poisoned? A quiescent standard-mode state satisfies its constraint
    /// set; resuming it is a no-op.
    pub fn quiescent(&self) -> bool {
        self.pool_built && self.pool.total == 0 && self.poisoned.is_none()
    }

    /// Ingest a batch of ground base facts and update the trigger pool
    /// incrementally: the batch is inserted atomically
    /// ([`Instance::insert_batch`]), plans are refreshed if the batch moved
    /// the statistics epoch, pooled triggers whose heads the new atoms may
    /// have satisfied are revalidated, and affected constraints are
    /// re-matched semi-naively from the batch delta — exactly the
    /// maintenance a TGD chase step performs for its own added atoms.
    ///
    /// Returns the actually-new atoms (duplicates contribute no work: the
    /// pool, plans, and statistics are untouched by an all-duplicate
    /// batch). Does **not** chase; call [`chase_resume`] afterwards.
    ///
    /// # Errors
    /// A non-ground atom anywhere in the batch rejects the whole batch and
    /// leaves the state untouched.
    ///
    /// # Panics
    /// Panics on a poisoned state (see [`EngineState::poisoned`]): its pool
    /// is inconsistent and the accepted facts could never be chased, so
    /// silently ingesting them would corrupt the session's contract. Check
    /// `poisoned()` first (the `chase-serve` layer does, turning it into
    /// an error).
    pub fn insert_batch(
        &mut self,
        set: &ConstraintSet,
        cfg: &ChaseConfig,
        batch: impl IntoIterator<Item = Atom>,
    ) -> Result<Vec<Atom>, chase_core::CoreError> {
        assert!(
            self.poisoned.is_none(),
            "insert_batch on a poisoned EngineState ({:?})",
            self.poisoned
        );
        let added = self.inst.insert_batch(batch)?;
        if !added.is_empty() {
            // Same maintenance order as a TGD step in `Run::fire`: refresh
            // plans first (the batch may have crossed a stats epoch — and
            // before the *first* run, the plans still carry the seed
            // instance's statistics), then revalidate + re-match from the
            // delta. Before the initial pool build the delta work is moot:
            // the first run's full enumeration will see the batch.
            self.matcher.refresh(set, &mut self.inst);
            if self.pool_built {
                Run::new(set, cfg, self, false, None, 0).apply_delta(&added);
            }
        }
        Ok(added)
    }
}

/// Internal per-run view: borrows a (possibly resumed) [`EngineState`] and
/// drives it under one `(set, cfg, strategy)` until a stop. Budgets are
/// per run — a resumed state's accumulated totals don't eat into a new
/// run's budget — and the trace is per run too.
struct Run<'a> {
    set: &'a ConstraintSet,
    cfg: &'a ChaseConfig,
    st: &'a mut EngineState,
    /// Naive reference mode: skip all pool maintenance and re-enumerate
    /// triggers from scratch at every step (the seed engine's behaviour).
    naive: bool,
    /// Worker pool of the parallel executor ([`crate::chase_parallel`]).
    /// `None` runs every matching path inline on the calling thread.
    exec: Option<&'a WorkerPool<'a>>,
    /// Minimum work items per dispatch before matching work is sharded
    /// across `exec`'s workers.
    fanout: usize,
    rng: Option<StdRng>,
    stop: Option<StopReason>,
    trace: Vec<StepRecord>,
    /// Step/null counters at run start — the budget baselines.
    steps0: usize,
    nulls0: usize,
}

/// A trigger discovered by (possibly sharded) delta re-matching:
/// `(constraint, key, assignment, fireable-now)`.
type FoundTrigger = (usize, TriggerKey, Subst, bool);

/// Does this normalized key bind some variable to `t`?
fn key_mentions(key: &TriggerKey, t: Term) -> bool {
    key.iter().any(|&(_, bound)| bound == t)
}

/// Substitute `from ↦ to` in a normalized key. Keys sort by variable
/// *name*, which the substitution leaves untouched, so the result is
/// normalized too.
fn remap_key(key: &TriggerKey, from: Term, to: Term) -> TriggerKey {
    key.iter()
        .map(|&(v, t)| (v, if t == from { to } else { t }))
        .collect()
}

/// Substitute `from ↦ to` in a trigger assignment.
fn remap_subst(mu: &Subst, from: Term, to: Term) -> Subst {
    let mut nu = Subst::new();
    for (v, t) in mu.var_bindings() {
        nu.bind_var(v, if t == from { to } else { t });
    }
    nu
}

/// Rewrite every key in a memo set through `from ↦ to`. Renamed keys can
/// collide with existing members; set union is exactly what the dead and
/// fired memo semantics want (both facts — "satisfied" / "already fired" —
/// hold for the collided key either way).
fn remap_key_set(memo: &mut FxHashSet<TriggerKey>, from: Term, to: Term) {
    let stale: Vec<TriggerKey> = memo
        .iter()
        .filter(|k| key_mentions(k, from))
        .cloned()
        .collect();
    for key in stale {
        memo.remove(&key);
        memo.insert(remap_key(&key, from, to));
    }
}

/// Sampling mask for the *per-step* telemetry sites — the
/// [`Phase::HeadRevalidate`], [`Phase::DeltaMatch`] and [`Phase::Insert`]
/// timers plus the [`EventKind::StepFired`] event. Timing every step costs
/// a handful of clock reads per chase step, which dominates micro-chases
/// (the CI overhead gate caps the recording-on vs -off median delta on
/// `ex4_strategies` at 5%); instead, one step in 64 records the full
/// decomposition and the rest skip even the clock reads. The gate is keyed
/// on the deterministic step counter, so sampling is write-only and
/// reproducible — it can never perturb trigger selection — and step 0
/// always samples, so even a two-fact session surfaces nonzero phase
/// percentiles. The rare, heavy sites ([`Phase::MergeRepair`],
/// [`Phase::PoolMaintain`], [`Phase::PlanCompile`] and all other events)
/// record every occurrence.
const OBS_SAMPLE_MASK: u64 = 63;

impl<'a> Run<'a> {
    fn new(
        set: &'a ConstraintSet,
        cfg: &'a ChaseConfig,
        st: &'a mut EngineState,
        naive: bool,
        exec: Option<&'a WorkerPool<'a>>,
        fanout: usize,
    ) -> Run<'a> {
        let rng = match cfg.strategy {
            Strategy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        let (steps0, nulls0) = (st.steps, st.fresh_nulls);
        let mut run = Run {
            set,
            cfg,
            st,
            naive,
            exec,
            fanout,
            rng,
            stop: None,
            trace: Vec::new(),
            steps0,
            nulls0,
        };
        if !run.naive && !run.st.pool_built {
            let _t = run.st.recorder.phase(Phase::PoolMaintain);
            run.rebuild_pool();
            run.st.pool_built = true;
        }
        run
    }

    /// Does the current step land on the [`OBS_SAMPLE_MASK`] sampling
    /// grid? Decides whether this step's per-step telemetry records.
    #[inline]
    fn step_sampled(&self) -> bool {
        self.st.steps as u64 & OBS_SAMPLE_MASK == 0
    }

    /// A [`Recorder::phase`] timer when this step is sampled, a disarmed
    /// guard (no clock read, nothing recorded) otherwise.
    #[inline]
    fn sampled_phase(&self, phase: Phase) -> PhaseTimer {
        if self.step_sampled() {
            self.st.recorder.phase(phase)
        } else {
            PhaseTimer::disarmed()
        }
    }

    /// Is `(ci, µ)` fireable right now, honoring the chase mode?
    fn fires(&self, ci: usize, c: &Constraint, mu: &Subst, key: &TriggerKey) -> bool {
        match self.cfg.mode {
            ChaseMode::Standard => self.st.matcher.is_active(ci, c, &self.st.inst, mu),
            ChaseMode::Oblivious => !self.st.fired[ci].contains(key),
        }
    }

    /// Populate the pool from a full enumeration — the **initial build**
    /// only. EGD merges used to route through here conservatively; they
    /// are now repaired incrementally by [`Run::apply_merge_delta`], so a
    /// running engine never re-enumerates.
    ///
    /// With a worker pool and a large enough instance the enumeration is
    /// sharded over the instance atoms: every body homomorphism of a
    /// non-empty body maps at least one atom into some shard, so the union
    /// of delta-seeded searches over the shards covers every trigger
    /// exactly (duplicates collapse in the content-addressed pool).
    fn rebuild_pool(&mut self) {
        self.st.pool.clear();
        for d in &mut self.st.dead {
            d.clear();
        }
        if let Some(exec) = self.exec {
            if self.st.inst.len() >= self.fanout.max(1) {
                let this = &*self;
                let affected: Vec<usize> = (0..this.set.len())
                    .filter(|&ci| !this.set[ci].body().is_empty())
                    .collect();
                // Materialize the instance once for sharding — rebuilds are
                // rare (init and EGD merges), and the shard functions want
                // `&[Atom]` delta slices.
                let all_atoms = this.st.inst.atoms();
                let found: Vec<FoundTrigger> = exec
                    .map_shards(&all_atoms, |shard| {
                        this.collect_delta_matches(&affected, shard)
                    })
                    .into_iter()
                    .flatten()
                    .collect();
                for (ci, key, mu, fires) in found {
                    if fires && !self.st.pool.contains(ci, &key) {
                        self.st.pool.insert(ci, key, mu);
                    }
                }
                // Empty-body constraints have no atom to seed from; finish
                // them through the full enumeration below.
                self.enumerate_pool(true);
                return;
            }
        }
        self.enumerate_pool(false);
    }

    /// The from-scratch enumeration behind [`Run::rebuild_pool`], optionally
    /// restricted to constraints with empty bodies (the sharded rebuild's
    /// blind spot).
    fn enumerate_pool(&mut self, empty_bodies_only: bool) {
        // Split borrows: the matcher holds `inst` while the callback fills
        // `pool`.
        let Run { set, cfg, st, .. } = self;
        let EngineState {
            inst,
            fired,
            pool,
            matcher,
            ..
        } = &mut **st;
        let matcher = &*matcher;
        for (ci, c) in set.enumerate() {
            if empty_bodies_only && !c.body().is_empty() {
                continue;
            }
            matcher.for_each_body_hom(ci, c, inst, &mut |mu| {
                let key = normalize(c, mu);
                let fires = match cfg.mode {
                    ChaseMode::Standard => matcher.is_active(ci, c, inst, mu),
                    ChaseMode::Oblivious => !fired[ci].contains(&key),
                };
                if fires && !pool.contains(ci, &key) {
                    pool.insert(ci, key, mu.clone());
                }
                false
            });
        }
    }

    /// Semi-naive re-matching of the `affected` constraints against `delta`
    /// (a subset of the instance), deduplicated per constraint and filtered
    /// against triggers already pooled, dead, or fired. Read-only — the
    /// parallel engine calls this concurrently, one delta shard per worker.
    fn collect_delta_matches(&self, affected: &[usize], delta: &[Atom]) -> Vec<FoundTrigger> {
        let mut out = Vec::new();
        for &ci in affected {
            let c = &self.set[ci];
            // The map both dedups matches reported once per delta atom they
            // use and distinct homomorphisms that normalize to the same
            // trigger.
            let mut found: FxHashMap<TriggerKey, Subst> = FxHashMap::default();
            let pool = &self.st.pool;
            let dead = &self.st.dead;
            let fired = &self.st.fired;
            let mode = self.cfg.mode;
            self.st
                .matcher
                .for_each_delta_match(ci, c, &self.st.inst, delta, &mut |mu| {
                    let key = normalize(c, mu);
                    let known = pool.contains(ci, &key)
                        || match mode {
                            ChaseMode::Standard => dead[ci].contains(&key),
                            ChaseMode::Oblivious => fired[ci].contains(&key),
                        }
                        || found.contains_key(&key);
                    if !known {
                        found.insert(key, mu.clone());
                    }
                    false
                });
            for (key, mu) in found {
                let fires = match mode {
                    ChaseMode::Standard => self.st.matcher.is_active(ci, c, &self.st.inst, &mu),
                    ChaseMode::Oblivious => true,
                };
                out.push((ci, key, mu, fires));
            }
        }
        out
    }

    /// Incremental pool update after a TGD step added `added` to the
    /// instance.
    fn apply_delta(&mut self, added: &[Atom]) {
        if added.is_empty() {
            return;
        }
        let delta_preds: FxHashSet<Sym> = added.iter().map(|a| a.pred()).collect();
        // Revalidate pooled triggers that the new atoms may have satisfied:
        // a violated TGD trigger becomes satisfied only when an atom with one
        // of its head predicates appears. (Oblivious triggers and EGD
        // triggers never die from added atoms.) Each trigger's check is
        // independent and read-only, so a large pool is sharded across the
        // worker pool; the merged dead-list is a set, so shard boundaries
        // cannot influence the outcome.
        if self.cfg.mode == ChaseMode::Standard {
            let _t = self.sampled_phase(Phase::HeadRevalidate);
            for ci in 0..self.set.len() {
                if self.st.head_preds[ci].is_disjoint(&delta_preds) {
                    continue;
                }
                let Constraint::Tgd(t) = &self.set[ci] else {
                    continue;
                };
                let head = t.head();
                // Per-slot head rests feed only the unplanned revalidation
                // path; the planned matcher has its own compiled head-rest
                // programs, so skip the atom clones when the planner is on.
                let rests = if self.st.matcher.is_planned() {
                    Vec::new()
                } else {
                    head_rests(head)
                };
                // The position-index snapshot the revalidation workers query
                // concurrently; `Copy`, so the closure captures it by value.
                let inst = self.st.inst.view();
                let entries: Vec<(&TriggerKey, &Subst)> = self.st.pool.pools[ci].iter().collect();
                let matcher = &self.st.matcher;
                let dies = |mu: &Subst| {
                    matcher.head_newly_satisfied(ci, head, &rests, inst.instance(), added, mu)
                };
                let now_dead: Vec<TriggerKey> = match self.exec {
                    Some(exec) if entries.len() >= self.fanout.max(1) => exec
                        .map_shards(&entries, |shard| {
                            shard
                                .iter()
                                .filter(|(_, mu)| dies(mu))
                                .map(|(key, _)| (*key).clone())
                                .collect::<Vec<_>>()
                        })
                        .into_iter()
                        .flatten()
                        .collect(),
                    _ => entries
                        .iter()
                        .filter(|(_, mu)| dies(mu))
                        .map(|(key, _)| (*key).clone())
                        .collect(),
                };
                drop(entries);
                for key in now_dead {
                    self.st.pool.remove(ci, &key);
                    self.st.dead[ci].insert(key);
                }
            }
        }
        // Re-match constraints whose body can see the delta, seeded from the
        // new atoms. Large deltas are sharded across the worker pool, each
        // worker running the semi-naive search for its shard through the
        // shared position index; the merge below is keyed by normalized
        // assignment, so cross-shard duplicates collapse deterministically.
        let _t = self.sampled_phase(Phase::DeltaMatch);
        let affected: Vec<usize> = (0..self.set.len())
            .filter(|&ci| !self.st.body_preds[ci].is_disjoint(&delta_preds))
            .collect();
        if affected.is_empty() {
            return;
        }
        let found: Vec<FoundTrigger> = match self.exec {
            Some(exec) if added.len() >= self.fanout.max(2) => {
                let this = &*self;
                let affected = &affected;
                exec.map_shards(added, |shard| this.collect_delta_matches(affected, shard))
                    .into_iter()
                    .flatten()
                    .collect()
            }
            _ => self.collect_delta_matches(&affected, added),
        };
        for (ci, key, mu, fires) in found {
            let duplicate = self.st.pool.contains(ci, &key)
                || match self.cfg.mode {
                    ChaseMode::Standard => self.st.dead[ci].contains(&key),
                    ChaseMode::Oblivious => false,
                };
            if duplicate {
                continue; // the same trigger arrived from another shard
            }
            match self.cfg.mode {
                ChaseMode::Standard => {
                    if fires {
                        self.st.pool.insert(ci, key, mu);
                    } else {
                        self.st.dead[ci].insert(key);
                    }
                }
                ChaseMode::Oblivious => {
                    self.st.pool.insert(ci, key, mu);
                }
            }
        }
    }

    /// Repair the pool and memos after an EGD merge — the delta-shaped
    /// replacement for the old conservative full rebuild:
    ///
    /// 1. **Remap.** The dead memo's keys and every pooled trigger whose
    ///    key mentions `from` are rewritten through `from ↦ to`
    ///    (normalized keys sort by variable *name*, so substituting the
    ///    bound terms renormalizes them in place; equal bound variables
    ///    imply equal substitutions, so key collisions are idempotent). A
    ///    remapped pooled trigger is re-admitted only if it is still
    ///    active under its new bindings — a *full* activity check, because
    ///    the remapped head instantiation can coincide with an unchanged
    ///    fact, and an EGD's sides can have become equal — and not already
    ///    dead (or fired, oblivious mode) under its new name.
    /// 2. **Re-match.** The surviving rewritten rows are the merge's
    ///    delta: they get the exact maintenance a TGD step's added atoms
    ///    get ([`Run::apply_delta`] — head revalidation of pooled
    ///    triggers, then semi-naive body re-matching, sharded across the
    ///    worker pool the same way).
    ///
    /// Soundness rests on two facts. A body match mentions a rewritten row
    /// iff its assignment binds `from` (the merged-away null cannot occur
    /// in a body constant), so remapping the mentioning keys covers every
    /// stale pool entry. And any body match new after the merge embeds at
    /// least one row content that is new to the store — a subset of the
    /// rewritten rows — so delta seeding discovers it.
    fn apply_merge_delta(&mut self, m: &MergeEffect) {
        let repair = self.st.recorder.phase(Phase::MergeRepair);
        for ci in 0..self.set.len() {
            remap_key_set(&mut self.st.dead[ci], m.from, m.to);
            let stale: Vec<TriggerKey> = self.st.pool.pools[ci]
                .keys()
                .filter(|k| key_mentions(k, m.from))
                .cloned()
                .collect();
            for key in stale {
                let mu = self
                    .st
                    .pool
                    .remove(ci, &key)
                    .expect("stale key just listed");
                let key = remap_key(&key, m.from, m.to);
                let mu = remap_subst(&mu, m.from, m.to);
                let known = self.st.pool.contains(ci, &key)
                    || match self.cfg.mode {
                        ChaseMode::Standard => self.st.dead[ci].contains(&key),
                        ChaseMode::Oblivious => self.st.fired[ci].contains(&key),
                    };
                if known {
                    continue;
                }
                let c = &self.set[ci];
                let fires = match self.cfg.mode {
                    ChaseMode::Standard => self.st.matcher.is_active(ci, c, &self.st.inst, &mu),
                    ChaseMode::Oblivious => true,
                };
                if fires {
                    self.st.pool.insert(ci, key, mu);
                } else if self.cfg.mode == ChaseMode::Standard {
                    // Inactive under the renaming is inactive for good:
                    // satisfaction is monotone and the renaming permanent.
                    self.st.dead[ci].insert(key);
                }
            }
        }
        let added: Vec<Atom> = m
            .rewritten
            .iter()
            .map(|&f| self.st.inst.atom_at(f))
            .collect();
        // The delta re-match below times itself; close the repair phase
        // first so the two don't double-count.
        drop(repair);
        self.apply_delta(&added);
    }

    /// Next fireable trigger for constraint `ci` under the naive reference:
    /// re-enumerate every body homomorphism and keep the canonically least
    /// fireable one, exactly like the pool (but in O(instance) per call).
    fn naive_next_trigger(&self, ci: usize) -> Option<(TriggerKey, Subst)> {
        let c = &self.set[ci];
        let mut best: Option<(TriggerKey, Subst)> = None;
        self.st
            .matcher
            .for_each_body_hom(ci, c, &self.st.inst, &mut |mu| {
                let key = normalize(c, mu);
                if best.as_ref().is_none_or(|(bk, _)| key < *bk) && self.fires(ci, c, mu, &key) {
                    best = Some((key, mu.clone()));
                }
                false
            });
        best
    }

    /// All fireable triggers in global canonical order, re-enumerated from
    /// scratch (naive reference for `Random`).
    fn naive_all_triggers(&self) -> Vec<(usize, TriggerKey, Subst)> {
        let mut out: Vec<(usize, TriggerKey, Subst)> = Vec::new();
        for (ci, c) in self.set.enumerate() {
            let mut per: BTreeMap<TriggerKey, Subst> = BTreeMap::new();
            self.st
                .matcher
                .for_each_body_hom(ci, c, &self.st.inst, &mut |mu| {
                    let key = normalize(c, mu);
                    if !per.contains_key(&key) && self.fires(ci, c, mu, &key) {
                        per.insert(key, mu.clone());
                    }
                    false
                });
            out.extend(per.into_iter().map(|(key, mu)| (ci, key, mu)));
        }
        out
    }

    /// Take the next trigger to fire for constraint `ci`, removing it from
    /// the pool in delta mode.
    fn take_next_trigger(&mut self, ci: usize) -> Option<(TriggerKey, Subst)> {
        if self.naive {
            self.naive_next_trigger(ci)
        } else {
            self.st.pool.pop_first(ci)
        }
    }

    /// Apply one step; returns `false` when the run must stop.
    fn fire(&mut self, ci: usize, key: TriggerKey, mu: Subst) -> bool {
        let c = &self.set[ci];
        if self.cfg.mode == ChaseMode::Oblivious {
            self.st.fired[ci].insert(key.clone());
        }
        let ground_body: Vec<Atom> = mu.apply_atoms(c.body());
        // One sampling decision covers the whole step: taken before the
        // counter moves, so the insert timer and the StepFired event
        // describe the same (sampled) step.
        let sampled = self.step_sampled();
        let insert = if sampled {
            self.st.recorder.phase(Phase::Insert)
        } else {
            PhaseTimer::disarmed()
        };
        let effect = apply_step(&mut self.st.inst, c, &mu);
        drop(insert);
        self.st.steps += 1;
        if sampled {
            self.st
                .recorder
                .event(EventKind::StepFired, ci as u64, self.st.steps as u64);
        }
        let (added, fresh, merged, merge_stats) = match effect {
            StepEffect::Tgd {
                added, fresh_nulls, ..
            } => {
                // Plans are refreshed (statistics epoch permitting) before
                // the delta re-match, so growth-driven recompiles kick in as
                // soon as the data doubles.
                let EngineState { matcher, inst, .. } = &mut *self.st;
                matcher.refresh(self.set, inst);
                if !self.naive {
                    if self.cfg.mode == ChaseMode::Standard {
                        // The fired trigger is satisfied by its own head
                        // instantiation from now on.
                        self.st.dead[ci].insert(key.clone());
                    }
                    self.apply_delta(&added);
                }
                (added, fresh_nulls, None, (0, 0))
            }
            StepEffect::Merged(m) => {
                self.st.recorder.event(
                    EventKind::EgdMerge,
                    m.rewritten.len() as u64,
                    m.collapsed as u64,
                );
                // Merges maintain statistics incrementally, so the refresh
                // only recompiles if the collapses moved the stats epoch.
                let EngineState { matcher, inst, .. } = &mut *self.st;
                matcher.refresh(self.set, inst);
                if !m.is_noop() {
                    // A fired trigger stays fired under the renaming:
                    // remap the oblivious fired memo in *both* engines, so
                    // naive and delta traces keep moving together.
                    if self.cfg.mode == ChaseMode::Oblivious {
                        for memo in &mut self.st.fired {
                            remap_key_set(memo, m.from, m.to);
                        }
                    }
                    if !self.naive {
                        self.apply_merge_delta(&m);
                    }
                }
                self.st.merge_rewritten += m.rewritten.len();
                self.st.merge_collapsed += m.collapsed;
                let stats = (m.rewritten.len(), m.collapsed);
                (Vec::new(), Vec::new(), Some((m.from, m.to)), stats)
            }
            StepEffect::Failed => {
                self.stop = Some(StopReason::Failed);
                return false;
            }
            StepEffect::NoOp => (Vec::new(), Vec::new(), None, (0, 0)),
        };
        self.st.fresh_nulls += fresh.len();
        if let Some(monitor) = &mut self.st.monitor {
            if !fresh.is_empty() {
                monitor.record_tgd_step(ci, &ground_body, &fresh, &added);
            }
            if let Some(depth) = self.cfg.monitor_depth {
                if monitor.is_k_cyclic(depth) {
                    self.stop = Some(StopReason::MonitorAbort { depth });
                }
            }
        }
        if self.cfg.keep_trace {
            self.trace.push(StepRecord {
                constraint: ci,
                assignment: key,
                ground_body,
                added,
                fresh_nulls: fresh,
                merged,
                merge_rewritten: merge_stats.0,
                merge_collapsed: merge_stats.1,
            });
        }
        if self.stop.is_some() {
            return false;
        }
        if let Some(limit) = self.cfg.max_steps {
            if self.st.steps - self.steps0 >= limit && !self.satisfied() {
                self.stop = Some(StopReason::StepLimit(limit));
                return false;
            }
        }
        if let Some(limit) = self.cfg.max_nulls {
            if self.st.fresh_nulls - self.nulls0 >= limit && !self.satisfied() {
                self.stop = Some(StopReason::NullLimit(limit));
                return false;
            }
        }
        true
    }

    fn satisfied(&self) -> bool {
        if !self.naive {
            // The pool holds exactly the fireable triggers; empty ⇔ done
            // (standard: `I ⊨ Σ`; oblivious: no unfired body match remains).
            return self.st.pool.total == 0;
        }
        match self.cfg.mode {
            ChaseMode::Standard => self.set.satisfied_by(&self.st.inst),
            // The oblivious chase is done when no unfired trigger remains.
            ChaseMode::Oblivious => {
                (0..self.set.len()).all(|ci| self.naive_next_trigger(ci).is_none())
            }
        }
    }

    /// Run a cyclic order until a full pass makes no progress.
    fn run_cycle(&mut self, order: &[usize]) {
        loop {
            let mut progressed = false;
            for &ci in order {
                if self.stop.is_some() {
                    return;
                }
                if let Some((key, mu)) = self.take_next_trigger(ci) {
                    progressed = true;
                    if !self.fire(ci, key, mu) {
                        return;
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn run_random(&mut self) {
        loop {
            if self.stop.is_some() {
                return;
            }
            let (ci, key, mu) = if self.naive {
                let mut triggers = self.naive_all_triggers();
                if triggers.is_empty() {
                    return;
                }
                let pick = self
                    .rng
                    .as_mut()
                    .expect("random strategy has an RNG")
                    .gen_range(0..triggers.len());
                triggers.swap_remove(pick)
            } else {
                if self.st.pool.total == 0 {
                    return;
                }
                let pick = self
                    .rng
                    .as_mut()
                    .expect("random strategy has an RNG")
                    .gen_range(0..self.st.pool.total);
                let (ci, key, mu) = self.st.pool.take_nth(pick).expect("pick in range");
                (ci, key, mu)
            };
            if !self.fire(ci, key, mu) {
                return;
            }
        }
    }

    fn finish(mut self) -> ResumeOutcome {
        let reason = match self.stop.take() {
            Some(r) => r,
            None => {
                debug_assert!(
                    self.cfg.mode == ChaseMode::Oblivious || self.set.satisfied_by(&self.st.inst),
                    "chase stopped without exhausting triggers"
                );
                StopReason::Satisfied
            }
        };
        if matches!(reason, StopReason::Failed | StopReason::MonitorAbort { .. }) {
            // Terminal stops poison the state: an EGD failure leaves the
            // fired trigger consumed but its effect unapplied, and a
            // monitor abort would re-trip immediately — neither state can
            // be chased further.
            let depth = match reason {
                StopReason::MonitorAbort { depth } => depth as u64,
                _ => 0,
            };
            self.st.recorder.event(EventKind::Poison, depth, 0);
            self.st.poisoned = Some(reason.clone());
        }
        self.st.recorder.event(
            EventKind::ResumeEnd,
            (self.st.steps - self.steps0) as u64,
            self.st.pool.total as u64,
        );
        ResumeOutcome {
            reason,
            steps: self.st.steps - self.steps0,
            fresh_nulls: self.st.fresh_nulls - self.nulls0,
            trace: self.trace,
        }
    }

    fn run(mut self) -> ResumeOutcome {
        self.st.recorder.event(
            EventKind::ResumeBegin,
            self.st.steps as u64,
            self.st.pool.total as u64,
        );
        // `cfg` outlives `&mut self`, so the strategy's vectors can be
        // borrowed across the run without cloning.
        let cfg = self.cfg;
        match &cfg.strategy {
            Strategy::RoundRobin => {
                let order: Vec<usize> = (0..self.set.len()).collect();
                self.run_cycle(&order);
            }
            Strategy::FixedCycle(order) => {
                self.run_cycle(order);
            }
            Strategy::Random { .. } => self.run_random(),
            Strategy::Phased(phases) => {
                for phase in phases {
                    if self.stop.is_some() {
                        break;
                    }
                    self.run_cycle(phase);
                }
                if self.stop.is_none() {
                    // Safety net: make the "chase until satisfied" contract
                    // hold even for phase lists that do not cover every
                    // violation.
                    let order: Vec<usize> = (0..self.set.len()).collect();
                    self.run_cycle(&order);
                }
            }
        }
        self.finish()
    }
}

/// Run the chase on `instance` with constraint set `set` under `cfg`.
///
/// # Examples
///
/// ```
/// use chase_core::{ConstraintSet, Instance};
/// use chase_engine::{chase, ChaseConfig, StopReason};
///
/// let sigma = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
/// let inst = Instance::parse("S(n1). S(n2). E(n1,n2).").unwrap();
/// let res = chase(&inst, &sigma, &ChaseConfig::default());
/// assert!(res.terminated());
/// assert_eq!(res.steps, 1); // only n2 lacked an outgoing edge
///
/// // A divergent set is cut off by the monitor guard of Section 4.2.
/// let bad = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
/// let res = chase(&inst, &bad, &ChaseConfig::with_monitor_depth(3));
/// assert_eq!(res.reason, StopReason::MonitorAbort { depth: 3 });
/// ```
pub fn chase(instance: &Instance, set: &ConstraintSet, cfg: &ChaseConfig) -> ChaseResult {
    run_to_result(instance, set, cfg, false, None, 0)
}

/// One-shot driver shared by [`chase`], [`chase_naive`] and
/// [`run_with_exec`]: build fresh state, run it to a stop, tear it apart
/// into a [`ChaseResult`].
fn run_to_result(
    instance: &Instance,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
    naive: bool,
    exec: Option<&WorkerPool<'_>>,
    fanout: usize,
) -> ChaseResult {
    let mut st = EngineState::new(instance, set, cfg);
    let out = Run::new(set, cfg, &mut st, naive, exec, fanout).run();
    ChaseResult {
        instance: st.inst,
        reason: out.reason,
        steps: out.steps,
        fresh_nulls: out.fresh_nulls,
        trace: out.trace,
        monitor: st.monitor,
    }
}

/// The outcome of one [`chase_resume`] call over an [`EngineState`]:
/// everything a [`ChaseResult`] reports except the instance and the
/// monitor graph, which stay inside the state for the next resume.
///
/// `steps` and `fresh_nulls` count **this resume only**; the state's
/// [`EngineState::total_steps`] / [`EngineState::total_fresh_nulls`] hold
/// the running totals.
#[derive(Debug, Clone)]
pub struct ResumeOutcome {
    /// Why this resume stopped.
    pub reason: StopReason,
    /// Chase steps applied by this resume.
    pub steps: usize,
    /// Fresh nulls invented by this resume.
    pub fresh_nulls: usize,
    /// Per-step trace of this resume (only when `keep_trace`).
    pub trace: Vec<StepRecord>,
}

/// Continue the delta-driven chase on a (possibly warm) [`EngineState`]
/// until the pool drains, a budget trips, or a terminal stop occurs.
///
/// `set` and `cfg` must be the values the state was built with. Budgets
/// (`max_steps`, `max_nulls`) apply per resume, not cumulatively. A
/// poisoned state ([`EngineState::poisoned`]) is returned unchanged, with
/// the poisoning reason and zero steps.
///
/// # Examples
///
/// ```
/// use chase_core::{ConstraintSet, Instance};
/// use chase_engine::{chase_resume, ChaseConfig, EngineState, StopReason};
///
/// let sigma = ConstraintSet::parse("E(X,Y), E(Y,Z) -> E(X,Z)").unwrap();
/// let cfg = ChaseConfig::default();
/// let inst = Instance::parse("E(a,b).").unwrap();
/// let mut state = EngineState::new(&inst, &sigma, &cfg);
/// assert_eq!(chase_resume(&mut state, &sigma, &cfg).reason, StopReason::Satisfied);
///
/// // Warm update: ingest a batch, continue from the batch delta.
/// let batch = Instance::parse("E(b,c).").unwrap().atoms();
/// state.insert_batch(&sigma, &cfg, batch).unwrap();
/// let out = chase_resume(&mut state, &sigma, &cfg);
/// assert_eq!(out.steps, 1); // only the new join E(a,b)∘E(b,c) fires
/// assert_eq!(state.instance().len(), 3);
/// ```
pub fn chase_resume(
    state: &mut EngineState,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
) -> ResumeOutcome {
    if let Some(reason) = state.poisoned.clone() {
        return ResumeOutcome {
            reason,
            steps: 0,
            fresh_nulls: 0,
            trace: Vec::new(),
        };
    }
    Run::new(set, cfg, state, false, None, 0).run()
}

/// Run the delta engine with an optional worker pool for sharded matching —
/// the entry point behind [`crate::chase_parallel`]. With `exec = None` this
/// is exactly [`chase`].
pub(crate) fn run_with_exec(
    instance: &Instance,
    set: &ConstraintSet,
    cfg: &ChaseConfig,
    exec: Option<&WorkerPool<'_>>,
    fanout: usize,
) -> ChaseResult {
    run_to_result(instance, set, cfg, false, exec, fanout)
}

/// Run the chase with naive trigger discovery: every constraint is
/// re-matched against the whole instance on every step.
///
/// Trigger *selection* is canonical and identical to [`chase`] (least
/// constraint index, then least normalized assignment; `Random` draws the
/// same index from the same seeded stream over the same canonically ordered
/// trigger list), so on the same inputs both engines produce bit-identical
/// traces, step counts, and final instances — only the work per step
/// differs. Retained as the reference for equivalence tests and as the
/// baseline the `ex4_strategies`/`fig1_hierarchy` benches compare against.
///
/// Honesty note for benchmark readers: canonical selection means the cyclic
/// strategies here enumerate *all* of a constraint's body matches per step
/// to find the least fireable one, where the seed engine stopped at the
/// first fireable match in search order. Per-step re-enumeration is the
/// same O(instance); the constant is somewhat larger than the seed's on
/// workloads where an early match exists. (The seed's `Random` strategy
/// already enumerated everything every step.)
pub fn chase_naive(instance: &Instance, set: &ConstraintSet, cfg: &ChaseConfig) -> ChaseResult {
    run_to_result(instance, set, cfg, true, None, 0)
}

/// Run the chase with the default configuration (standard mode, round-robin,
/// 10 000-step budget).
pub fn chase_default(instance: &Instance, set: &ConstraintSet) -> ChaseResult {
    chase(instance, set, &ChaseConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(set: &str, inst: &str) -> (ConstraintSet, Instance) {
        (
            ConstraintSet::parse(set).unwrap(),
            Instance::parse(inst).unwrap(),
        )
    }

    #[test]
    fn intro_alpha1_terminates() {
        // α1: every special node has an outgoing edge (Introduction).
        let (set, inst) = parse("S(X) -> E(X,Y)", "S(n1). S(n2). E(n1,n2).");
        let res = chase_default(&inst, &set);
        assert!(res.terminated());
        assert_eq!(res.steps, 1);
        assert_eq!(res.instance.len(), 4);
        assert!(set.satisfied_by(&res.instance));
    }

    #[test]
    fn intro_alpha2_diverges_until_budget() {
        // α2: every special node links to a special node — non-terminating on
        // the Introduction's instance.
        let (set, inst) = parse("S(X) -> E(X,Y), S(Y)", "S(n1). S(n2). E(n1,n2).");
        let res = chase(&inst, &set, &ChaseConfig::with_max_steps(50));
        assert_eq!(res.reason, StopReason::StepLimit(50));
    }

    #[test]
    fn intro_alpha2_monitor_aborts() {
        let (set, inst) = parse("S(X) -> E(X,Y), S(Y)", "S(n1). S(n2). E(n1,n2).");
        let res = chase(&inst, &set, &ChaseConfig::with_monitor_depth(3));
        assert_eq!(res.reason, StopReason::MonitorAbort { depth: 3 });
        assert!(res.monitor.unwrap().is_k_cyclic(3));
    }

    #[test]
    fn egd_failure_propagates() {
        let (set, inst) = parse("E(X,Y), E(X,Z) -> Y = Z", "E(a,b). E(a,c).");
        let res = chase_default(&inst, &set);
        assert!(res.failed());
    }

    #[test]
    fn egd_merge_terminates() {
        let (set, inst) = parse("E(X,Y), E(X,Z) -> Y = Z", "E(a,b). E(a,_n0). E(_n0,c).");
        let res = chase_default(&inst, &set);
        assert!(res.terminated());
        assert_eq!(res.instance, Instance::parse("E(a,b). E(b,c).").unwrap());
    }

    #[test]
    fn trace_records_steps() {
        let (set, inst) = parse("S(X) -> E(X,Y)", "S(a). S(b).");
        let cfg = ChaseConfig {
            keep_trace: true,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert!(res.terminated());
        assert_eq!(res.trace.len(), 2);
        assert_eq!(res.trace[0].constraint, 0);
        assert_eq!(res.trace[0].fresh_nulls.len(), 1);
    }

    #[test]
    fn random_strategy_is_reproducible() {
        let (set, inst) = parse(
            "S(X) -> T(X)\nT(X) -> U(X,Y)\nU(X,Y) -> V(Y)",
            "S(a). S(b). S(c).",
        );
        let cfg = |seed| ChaseConfig {
            strategy: Strategy::Random { seed },
            keep_trace: true,
            ..ChaseConfig::default()
        };
        let r1 = chase(&inst, &set, &cfg(42));
        let r2 = chase(&inst, &set, &cfg(42));
        assert!(r1.terminated());
        assert_eq!(r1.steps, r2.steps);
        assert_eq!(r1.instance, r2.instance);
        let order1: Vec<usize> = r1.trace.iter().map(|s| s.constraint).collect();
        let order2: Vec<usize> = r2.trace.iter().map(|s| s.constraint).collect();
        assert_eq!(order1, order2);
    }

    #[test]
    fn oblivious_chase_fires_satisfied_triggers_once() {
        // The constraint is already satisfied, but the oblivious chase still
        // fires the body match exactly once.
        let (set, inst) = parse("S(X) -> E(X,Y)", "S(a). E(a,b).");
        let cfg = ChaseConfig {
            mode: ChaseMode::Oblivious,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert_eq!(res.steps, 1);
        assert_eq!(res.fresh_nulls, 1);
        assert_eq!(res.instance.len(), 3);
    }

    #[test]
    fn phased_strategy_follows_phases() {
        // Phase 0 = {1}, phase 1 = {0}: U-facts must be produced before the
        // final pass touches constraint 0.
        let (set, inst) = parse("T(X) -> U(X)\nS(X) -> T(X)", "S(a).");
        let cfg = ChaseConfig {
            strategy: Strategy::Phased(vec![vec![1], vec![0]]),
            keep_trace: true,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert!(res.terminated());
        assert_eq!(res.instance.len(), 3);
        let fired: Vec<usize> = res.trace.iter().map(|s| s.constraint).collect();
        assert_eq!(fired, vec![1, 0]);
    }

    #[test]
    fn null_budget_stops_runaway() {
        let (set, inst) = parse("S(X) -> E(X,Y), S(Y)", "S(a).");
        let cfg = ChaseConfig {
            max_nulls: Some(7),
            max_steps: None,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert_eq!(res.reason, StopReason::NullLimit(7));
        assert_eq!(res.fresh_nulls, 7);
    }

    /// Drive both engines over the same inputs — with the planner on *and*
    /// off — and demand bit-identical traces across all four runs: the
    /// contract that makes the bench comparisons honest.
    fn assert_engines_agree(set: &str, inst: &str, cfg: &ChaseConfig) {
        let (set, inst) = parse(set, inst);
        let mut cfg = cfg.clone();
        cfg.keep_trace = true;
        let mut unplanned_cfg = cfg.clone();
        unplanned_cfg.use_planner = false;
        let fast = chase(&inst, &set, &cfg);
        let runs = [
            ("naive planned", chase_naive(&inst, &set, &cfg)),
            ("delta unplanned", chase(&inst, &set, &unplanned_cfg)),
            ("naive unplanned", chase_naive(&inst, &set, &unplanned_cfg)),
        ];
        for (label, slow) in &runs {
            assert_eq!(fast.reason, slow.reason, "{label}");
            assert_eq!(fast.steps, slow.steps, "{label}");
            assert_eq!(fast.fresh_nulls, slow.fresh_nulls, "{label}");
            assert_eq!(fast.instance, slow.instance, "{label}");
            assert_eq!(fast.trace.len(), slow.trace.len(), "{label}");
            for (a, b) in fast.trace.iter().zip(&slow.trace) {
                assert_eq!(a.constraint, b.constraint, "{label}");
                assert_eq!(a.assignment, b.assignment, "{label}");
                assert_eq!(a.ground_body, b.ground_body, "{label}");
                assert_eq!(a.added, b.added, "{label}");
                assert_eq!(a.fresh_nulls, b.fresh_nulls, "{label}");
                assert_eq!(a.merged, b.merged, "{label}");
                assert_eq!(a.merge_rewritten, b.merge_rewritten, "{label}");
                assert_eq!(a.merge_collapsed, b.merge_collapsed, "{label}");
            }
        }
    }

    #[test]
    fn delta_and_naive_agree_on_tgd_chains() {
        assert_engines_agree(
            "S(X) -> T(X)\nT(X) -> U(X,Y)\nU(X,Y) -> V(Y)",
            "S(a). S(b). S(c).",
            &ChaseConfig::default(),
        );
    }

    #[test]
    fn delta_and_naive_agree_on_divergence_cutoff() {
        assert_engines_agree(
            "S(X) -> E(X,Y), S(Y)",
            "S(n1). S(n2). E(n1,n2).",
            &ChaseConfig::with_max_steps(60),
        );
    }

    #[test]
    fn delta_and_naive_agree_on_egd_merges() {
        assert_engines_agree(
            "E(X,Y), E(X,Z) -> Y = Z\nS(X) -> E(X,Y)",
            "S(a). E(a,_n0). E(_n0,c). E(a,b).",
            &ChaseConfig::default(),
        );
    }

    #[test]
    fn delta_and_naive_agree_on_random_strategy() {
        for seed in 0..5 {
            assert_engines_agree(
                "S(X) -> T(X)\nT(X) -> U(X,Y)\nU(X,Y) -> V(Y)",
                "S(a). S(b). S(c).",
                &ChaseConfig {
                    strategy: Strategy::Random { seed },
                    ..ChaseConfig::default()
                },
            );
        }
    }

    #[test]
    fn delta_and_naive_agree_on_oblivious_mode() {
        assert_engines_agree(
            "S(X) -> E(X,Y)\nE(X,Y), E(X,Z) -> Y = Z",
            "S(a). E(a,b).",
            &ChaseConfig {
                mode: ChaseMode::Oblivious,
                ..ChaseConfig::default()
            },
        );
    }

    /// Warm resume over an [`EngineState`] must land on the same instance
    /// as a from-scratch chase of the accumulated facts — here the inputs
    /// are null-free and confluent, so the final instances are equal
    /// outright.
    #[test]
    fn warm_resume_matches_from_scratch_chase() {
        let (set, inst) = parse("E(X,Y), E(Y,Z) -> E(X,Z)", "E(a,b). E(b,c).");
        let cfg = ChaseConfig::default();
        let mut st = EngineState::new(&inst, &set, &cfg);
        let first = chase_resume(&mut st, &set, &cfg);
        assert_eq!(first.reason, StopReason::Satisfied);
        assert!(st.quiescent());
        let batch = Instance::parse("E(c,d). E(a,b).").unwrap().atoms();
        let added = st.insert_batch(&set, &cfg, batch.clone()).unwrap();
        assert_eq!(added.len(), 1, "E(a,b) is a duplicate");
        let second = chase_resume(&mut st, &set, &cfg);
        assert_eq!(second.reason, StopReason::Satisfied);
        assert!(second.steps > 0);
        let mut union = inst.clone();
        union.insert_batch(batch).unwrap();
        let scratch = chase(&union, &set, &cfg);
        assert_eq!(st.instance(), &scratch.instance);
        assert_eq!(
            st.total_steps(),
            scratch.steps,
            "warm resume fires exactly the triggers the scratch chase fires"
        );
    }

    /// Per-resume budgets: a resumed state gets a fresh step budget, and a
    /// budget stop does not poison the state.
    #[test]
    fn resume_budgets_are_per_run() {
        let (set, inst) = parse("S(X) -> E(X,Y), S(Y)", "S(a).");
        let cfg = ChaseConfig::with_max_steps(5);
        let mut st = EngineState::new(&inst, &set, &cfg);
        let first = chase_resume(&mut st, &set, &cfg);
        assert_eq!(first.reason, StopReason::StepLimit(5));
        assert_eq!(first.steps, 5);
        assert!(st.poisoned().is_none());
        let second = chase_resume(&mut st, &set, &cfg);
        assert_eq!(second.reason, StopReason::StepLimit(5));
        assert_eq!(second.steps, 5, "budget renews per resume");
        assert_eq!(st.total_steps(), 10);
    }

    /// Terminal stops poison the state; later resumes refuse to run.
    #[test]
    fn failed_state_is_poisoned() {
        let (set, inst) = parse("E(X,Y), E(X,Z) -> Y = Z", "E(a,b). E(a,c).");
        let cfg = ChaseConfig::default();
        let mut st = EngineState::new(&inst, &set, &cfg);
        assert_eq!(chase_resume(&mut st, &set, &cfg).reason, StopReason::Failed);
        assert_eq!(st.poisoned(), Some(&StopReason::Failed));
        let after = chase_resume(&mut st, &set, &cfg);
        assert_eq!(after.reason, StopReason::Failed);
        assert_eq!(after.steps, 0, "poisoned state refuses to chase");
    }

    /// Cloning the state is a full snapshot: the clone and the original
    /// evolve independently and identically from the fork point.
    #[test]
    fn engine_state_clone_is_a_fork() {
        let (set, inst) = parse("E(X,Y), E(Y,Z) -> E(X,Z)", "E(a,b). E(b,c).");
        let cfg = ChaseConfig::default();
        let mut st = EngineState::new(&inst, &set, &cfg);
        chase_resume(&mut st, &set, &cfg);
        let mut fork = st.clone();
        let batch = Instance::parse("E(c,a).").unwrap().atoms();
        st.insert_batch(&set, &cfg, batch.clone()).unwrap();
        let a = chase_resume(&mut st, &set, &cfg);
        fork.insert_batch(&set, &cfg, batch).unwrap();
        let b = chase_resume(&mut fork, &set, &cfg);
        assert_eq!(a.steps, b.steps);
        assert_eq!(st.instance(), fork.instance());
    }

    #[test]
    fn delta_engine_prunes_rematch_work() {
        // A multi-atom join body: the delta path must still find triggers
        // that combine a new atom with old atoms.
        assert_engines_agree(
            "E(X,Y), E(Y,Z) -> E(X,Z)",
            "E(a,b). E(b,c). E(c,d).",
            &ChaseConfig::default(),
        );
    }
}
