//! The chase runner: sequences of chase steps under a pluggable strategy.
//!
//! The paper's chase imposes *no* order on applicable constraints, and its
//! central negative results (Example 4) hinge on specific orders diverging
//! while others terminate. The runner therefore makes the order an explicit
//! [`Strategy`]:
//!
//! * [`Strategy::RoundRobin`] — scan constraints cyclically, one step each;
//! * [`Strategy::FixedCycle`] — apply constraints in a given cyclic order
//!   (reproduces Example 4's diverging sequence exactly);
//! * [`Strategy::Random`] — pick a uniformly random active trigger each step
//!   (seeded, for property tests over "every chase sequence" claims);
//! * [`Strategy::Phased`] — exhaust constraint groups in order (the
//!   terminating-order construction of Theorem 2).
//!
//! Budgets (`max_steps`, `max_nulls`) and the monitor-graph guard
//! (`monitor_depth`, Section 4.2) bound runs that would otherwise diverge.

use crate::monitor::MonitorGraph;
use crate::step::{apply_step, StepEffect};
use crate::trigger::{is_active, normalize};
use chase_core::fx::FxHashSet;
use chase_core::homomorphism::{for_each_hom, Subst};
use chase_core::{Atom, ConstraintSet, Instance, Sym, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Standard chase (fire only violated triggers) or oblivious chase (fire
/// every body match once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseMode {
    /// Fire a trigger only while the instantiated constraint is violated.
    #[default]
    Standard,
    /// Fire every `(constraint, assignment)` pair exactly once, violated or
    /// not (the oblivious chase used by c-stratification, Definition 4).
    Oblivious,
}

/// The order in which applicable constraints are fired.
#[derive(Debug, Clone, PartialEq, Eq)]
#[derive(Default)]
pub enum Strategy {
    /// Cycle through constraint indices `0..n`, applying at most one step per
    /// constraint per pass.
    #[default]
    RoundRobin,
    /// Cycle through the given constraint indices (repetitions allowed),
    /// applying at most one step per entry per pass.
    FixedCycle(Vec<usize>),
    /// Uniformly random choice among all active triggers, from a seeded RNG.
    Random {
        /// RNG seed; equal seeds give equal sequences.
        seed: u64,
    },
    /// Chase each group of constraint indices to completion before moving to
    /// the next group, then finish with a round-robin pass over everything
    /// (a no-op for correctly stratified phases, Theorem 2).
    Phased(Vec<Vec<usize>>),
}


/// Chase configuration.
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Standard or oblivious stepping.
    pub mode: ChaseMode,
    /// Firing order.
    pub strategy: Strategy,
    /// Stop after this many steps (`None` = unbounded — beware, the chase
    /// need not terminate).
    pub max_steps: Option<usize>,
    /// Stop after inventing this many fresh nulls.
    pub max_nulls: Option<usize>,
    /// Abort as soon as the monitor graph becomes k-cyclic for this `k`
    /// (Section 4.2). Implies monitor-graph maintenance.
    pub monitor_depth: Option<usize>,
    /// Keep a full step-by-step trace in the result.
    pub keep_trace: bool,
    /// Maintain (and return) the monitor graph even without a depth guard.
    pub keep_monitor: bool,
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            mode: ChaseMode::Standard,
            strategy: Strategy::RoundRobin,
            max_steps: Some(10_000),
            max_nulls: None,
            monitor_depth: None,
            keep_trace: false,
            keep_monitor: false,
        }
    }
}

impl ChaseConfig {
    /// Default configuration with a step budget.
    pub fn with_max_steps(n: usize) -> ChaseConfig {
        ChaseConfig {
            max_steps: Some(n),
            ..ChaseConfig::default()
        }
    }

    /// Default configuration with the Section 4.2 monitor guard.
    pub fn with_monitor_depth(k: usize) -> ChaseConfig {
        ChaseConfig {
            monitor_depth: Some(k),
            max_steps: None,
            ..ChaseConfig::default()
        }
    }
}

/// Why the run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The instance satisfies every constraint: the chase terminated and the
    /// result is `I^Σ`.
    Satisfied,
    /// An EGD tried to equate two distinct constants: the chase fails.
    Failed,
    /// The step budget was exhausted with violations remaining.
    StepLimit(usize),
    /// The fresh-null budget was exhausted.
    NullLimit(usize),
    /// The monitor graph became k-cyclic for the configured depth: the
    /// sequence is *potentially* infinite and no guarantee can be given.
    MonitorAbort {
        /// The configured cycle depth that was reached.
        depth: usize,
    },
}

/// One applied chase step, as recorded in the trace.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Index of the fired constraint.
    pub constraint: usize,
    /// The trigger assignment, restricted to universal variables and sorted
    /// by variable name.
    pub assignment: Vec<(Sym, Term)>,
    /// The instantiated body under the assignment.
    pub ground_body: Vec<Atom>,
    /// Atoms newly added (TGD steps).
    pub added: Vec<Atom>,
    /// Fresh nulls invented (TGD steps).
    pub fresh_nulls: Vec<Term>,
    /// Merge performed (EGD steps): `(from, to)`.
    pub merged: Option<(Term, Term)>,
}

/// The outcome of a chase run.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The final (or last reached) instance.
    pub instance: Instance,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Number of chase steps applied (the sequence length `r`).
    pub steps: usize,
    /// Number of fresh nulls invented.
    pub fresh_nulls: usize,
    /// Per-step trace (only when `keep_trace`).
    pub trace: Vec<StepRecord>,
    /// The monitor graph (only when maintained).
    pub monitor: Option<MonitorGraph>,
}

impl ChaseResult {
    /// Did the chase terminate with `I ⊨ Σ`?
    pub fn terminated(&self) -> bool {
        self.reason == StopReason::Satisfied
    }

    /// Did the chase fail on an EGD?
    pub fn failed(&self) -> bool {
        self.reason == StopReason::Failed
    }
}

impl fmt::Display for ChaseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} after {} steps ({} fresh nulls, {} atoms)",
            self.reason,
            self.steps,
            self.fresh_nulls,
            self.instance.len()
        )
    }
}

/// Internal mutable state of a run.
struct Run<'a> {
    set: &'a ConstraintSet,
    cfg: &'a ChaseConfig,
    inst: Instance,
    steps: usize,
    fresh_nulls: usize,
    trace: Vec<StepRecord>,
    monitor: Option<MonitorGraph>,
    /// Oblivious mode: triggers that already fired.
    fired: FxHashSet<(usize, Vec<(Sym, Term)>)>,
    rng: Option<StdRng>,
    stop: Option<StopReason>,
}

impl<'a> Run<'a> {
    fn new(instance: &Instance, set: &'a ConstraintSet, cfg: &'a ChaseConfig) -> Run<'a> {
        let monitor = if cfg.monitor_depth.is_some() || cfg.keep_monitor {
            Some(MonitorGraph::new())
        } else {
            None
        };
        let rng = match cfg.strategy {
            Strategy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Run {
            set,
            cfg,
            inst: instance.clone(),
            steps: 0,
            fresh_nulls: 0,
            trace: Vec::new(),
            monitor,
            fired: FxHashSet::default(),
            rng,
            stop: None,
        }
    }

    /// Next fireable trigger for constraint `ci`, honoring the chase mode.
    fn next_trigger(&self, ci: usize) -> Option<Subst> {
        let c = &self.set[ci];
        let mut found = None;
        for_each_hom(c.body(), &self.inst, &Subst::new(), false, &mut |mu| {
            let fires = match self.cfg.mode {
                ChaseMode::Standard => is_active(c, &self.inst, mu),
                ChaseMode::Oblivious => !self.fired.contains(&(ci, normalize(c, mu))),
            };
            if fires {
                found = Some(mu.clone());
                true
            } else {
                false
            }
        });
        found
    }

    /// All fireable triggers of every constraint (used by `Random`).
    fn all_triggers(&self) -> Vec<(usize, Subst)> {
        let mut out = Vec::new();
        for (ci, c) in self.set.enumerate() {
            for_each_hom(c.body(), &self.inst, &Subst::new(), false, &mut |mu| {
                let fires = match self.cfg.mode {
                    ChaseMode::Standard => is_active(c, &self.inst, mu),
                    ChaseMode::Oblivious => !self.fired.contains(&(ci, normalize(c, mu))),
                };
                if fires {
                    let key = normalize(c, mu);
                    if !out.iter().any(|(cj, k): &(usize, Subst)| {
                        *cj == ci && normalize(c, k) == key
                    }) {
                        out.push((ci, mu.clone()));
                    }
                }
                false
            });
        }
        out
    }

    /// Apply one step; returns `false` when the run must stop.
    fn fire(&mut self, ci: usize, mu: &Subst) -> bool {
        let c = &self.set[ci];
        if self.cfg.mode == ChaseMode::Oblivious {
            self.fired.insert((ci, normalize(c, mu)));
        }
        let ground_body: Vec<Atom> = mu.apply_atoms(c.body());
        let effect = apply_step(&mut self.inst, c, mu);
        self.steps += 1;
        let (added, fresh, merged) = match &effect {
            StepEffect::Tgd {
                added, fresh_nulls, ..
            } => (added.clone(), fresh_nulls.clone(), None),
            StepEffect::Merged { from, to } => (Vec::new(), Vec::new(), Some((*from, *to))),
            StepEffect::Failed => {
                self.stop = Some(StopReason::Failed);
                return false;
            }
            StepEffect::NoOp => (Vec::new(), Vec::new(), None),
        };
        self.fresh_nulls += fresh.len();
        if let Some(monitor) = &mut self.monitor {
            if !fresh.is_empty() {
                monitor.record_tgd_step(ci, &ground_body, &fresh, &added);
            }
            if let Some(depth) = self.cfg.monitor_depth {
                if monitor.is_k_cyclic(depth) {
                    self.stop = Some(StopReason::MonitorAbort { depth });
                }
            }
        }
        if self.cfg.keep_trace {
            self.trace.push(StepRecord {
                constraint: ci,
                assignment: normalize(c, mu),
                ground_body,
                added,
                fresh_nulls: fresh,
                merged,
            });
        }
        if self.stop.is_some() {
            return false;
        }
        if let Some(limit) = self.cfg.max_steps {
            if self.steps >= limit && !self.satisfied() {
                self.stop = Some(StopReason::StepLimit(limit));
                return false;
            }
        }
        if let Some(limit) = self.cfg.max_nulls {
            if self.fresh_nulls >= limit && !self.satisfied() {
                self.stop = Some(StopReason::NullLimit(limit));
                return false;
            }
        }
        true
    }

    fn satisfied(&self) -> bool {
        match self.cfg.mode {
            ChaseMode::Standard => self.set.satisfied_by(&self.inst),
            // The oblivious chase is done when no unfired trigger remains.
            ChaseMode::Oblivious => (0..self.set.len()).all(|ci| self.next_trigger(ci).is_none()),
        }
    }

    /// Run a cyclic order until a full pass makes no progress.
    fn run_cycle(&mut self, order: &[usize]) {
        loop {
            let mut progressed = false;
            for &ci in order {
                if self.stop.is_some() {
                    return;
                }
                if let Some(mu) = self.next_trigger(ci) {
                    progressed = true;
                    if !self.fire(ci, &mu) {
                        return;
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn run_random(&mut self) {
        loop {
            if self.stop.is_some() {
                return;
            }
            let triggers = self.all_triggers();
            if triggers.is_empty() {
                return;
            }
            let pick = self
                .rng
                .as_mut()
                .expect("random strategy has an RNG")
                .gen_range(0..triggers.len());
            let (ci, mu) = triggers[pick].clone();
            if !self.fire(ci, &mu) {
                return;
            }
        }
    }

    fn finish(mut self) -> ChaseResult {
        let reason = match self.stop.take() {
            Some(r) => r,
            None => {
                debug_assert!(
                    self.cfg.mode == ChaseMode::Oblivious || self.set.satisfied_by(&self.inst),
                    "chase stopped without exhausting triggers"
                );
                StopReason::Satisfied
            }
        };
        ChaseResult {
            instance: self.inst,
            reason,
            steps: self.steps,
            fresh_nulls: self.fresh_nulls,
            trace: self.trace,
            monitor: self.monitor,
        }
    }
}

/// Run the chase on `instance` with constraint set `set` under `cfg`.
///
/// # Examples
///
/// ```
/// use chase_core::{ConstraintSet, Instance};
/// use chase_engine::{chase, ChaseConfig, StopReason};
///
/// let sigma = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
/// let inst = Instance::parse("S(n1). S(n2). E(n1,n2).").unwrap();
/// let res = chase(&inst, &sigma, &ChaseConfig::default());
/// assert!(res.terminated());
/// assert_eq!(res.steps, 1); // only n2 lacked an outgoing edge
///
/// // A divergent set is cut off by the monitor guard of Section 4.2.
/// let bad = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
/// let res = chase(&inst, &bad, &ChaseConfig::with_monitor_depth(3));
/// assert_eq!(res.reason, StopReason::MonitorAbort { depth: 3 });
/// ```
pub fn chase(instance: &Instance, set: &ConstraintSet, cfg: &ChaseConfig) -> ChaseResult {
    let mut run = Run::new(instance, set, cfg);
    match &cfg.strategy {
        Strategy::RoundRobin => {
            let order: Vec<usize> = (0..set.len()).collect();
            run.run_cycle(&order);
        }
        Strategy::FixedCycle(order) => run.run_cycle(order),
        Strategy::Random { .. } => run.run_random(),
        Strategy::Phased(phases) => {
            for phase in phases {
                if run.stop.is_some() {
                    break;
                }
                run.run_cycle(phase);
            }
            if run.stop.is_none() {
                // Safety net: make the "chase until satisfied" contract hold
                // even for phase lists that do not cover every violation.
                let order: Vec<usize> = (0..set.len()).collect();
                run.run_cycle(&order);
            }
        }
    }
    run.finish()
}

/// Run the chase with the default configuration (standard mode, round-robin,
/// 10 000-step budget).
pub fn chase_default(instance: &Instance, set: &ConstraintSet) -> ChaseResult {
    chase(instance, set, &ChaseConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(set: &str, inst: &str) -> (ConstraintSet, Instance) {
        (
            ConstraintSet::parse(set).unwrap(),
            Instance::parse(inst).unwrap(),
        )
    }

    #[test]
    fn intro_alpha1_terminates() {
        // α1: every special node has an outgoing edge (Introduction).
        let (set, inst) = parse("S(X) -> E(X,Y)", "S(n1). S(n2). E(n1,n2).");
        let res = chase_default(&inst, &set);
        assert!(res.terminated());
        assert_eq!(res.steps, 1);
        assert_eq!(res.instance.len(), 4);
        assert!(set.satisfied_by(&res.instance));
    }

    #[test]
    fn intro_alpha2_diverges_until_budget() {
        // α2: every special node links to a special node — non-terminating on
        // the Introduction's instance.
        let (set, inst) = parse("S(X) -> E(X,Y), S(Y)", "S(n1). S(n2). E(n1,n2).");
        let res = chase(&inst, &set, &ChaseConfig::with_max_steps(50));
        assert_eq!(res.reason, StopReason::StepLimit(50));
    }

    #[test]
    fn intro_alpha2_monitor_aborts() {
        let (set, inst) = parse("S(X) -> E(X,Y), S(Y)", "S(n1). S(n2). E(n1,n2).");
        let res = chase(&inst, &set, &ChaseConfig::with_monitor_depth(3));
        assert_eq!(res.reason, StopReason::MonitorAbort { depth: 3 });
        assert!(res.monitor.unwrap().is_k_cyclic(3));
    }

    #[test]
    fn egd_failure_propagates() {
        let (set, inst) = parse("E(X,Y), E(X,Z) -> Y = Z", "E(a,b). E(a,c).");
        let res = chase_default(&inst, &set);
        assert!(res.failed());
    }

    #[test]
    fn egd_merge_terminates() {
        let (set, inst) = parse("E(X,Y), E(X,Z) -> Y = Z", "E(a,b). E(a,_n0). E(_n0,c).");
        let res = chase_default(&inst, &set);
        assert!(res.terminated());
        assert_eq!(
            res.instance,
            Instance::parse("E(a,b). E(b,c).").unwrap()
        );
    }

    #[test]
    fn trace_records_steps() {
        let (set, inst) = parse("S(X) -> E(X,Y)", "S(a). S(b).");
        let cfg = ChaseConfig {
            keep_trace: true,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert!(res.terminated());
        assert_eq!(res.trace.len(), 2);
        assert_eq!(res.trace[0].constraint, 0);
        assert_eq!(res.trace[0].fresh_nulls.len(), 1);
    }

    #[test]
    fn random_strategy_is_reproducible() {
        let (set, inst) = parse(
            "S(X) -> T(X)\nT(X) -> U(X,Y)\nU(X,Y) -> V(Y)",
            "S(a). S(b). S(c).",
        );
        let cfg = |seed| ChaseConfig {
            strategy: Strategy::Random { seed },
            keep_trace: true,
            ..ChaseConfig::default()
        };
        let r1 = chase(&inst, &set, &cfg(42));
        let r2 = chase(&inst, &set, &cfg(42));
        assert!(r1.terminated());
        assert_eq!(r1.steps, r2.steps);
        assert_eq!(r1.instance, r2.instance);
        let order1: Vec<usize> = r1.trace.iter().map(|s| s.constraint).collect();
        let order2: Vec<usize> = r2.trace.iter().map(|s| s.constraint).collect();
        assert_eq!(order1, order2);
    }

    #[test]
    fn oblivious_chase_fires_satisfied_triggers_once() {
        // The constraint is already satisfied, but the oblivious chase still
        // fires the body match exactly once.
        let (set, inst) = parse("S(X) -> E(X,Y)", "S(a). E(a,b).");
        let cfg = ChaseConfig {
            mode: ChaseMode::Oblivious,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert_eq!(res.steps, 1);
        assert_eq!(res.fresh_nulls, 1);
        assert_eq!(res.instance.len(), 3);
    }

    #[test]
    fn phased_strategy_follows_phases() {
        // Phase 0 = {1}, phase 1 = {0}: U-facts must be produced before the
        // final pass touches constraint 0.
        let (set, inst) = parse("T(X) -> U(X)\nS(X) -> T(X)", "S(a).");
        let cfg = ChaseConfig {
            strategy: Strategy::Phased(vec![vec![1], vec![0]]),
            keep_trace: true,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert!(res.terminated());
        assert_eq!(res.instance.len(), 3);
        let fired: Vec<usize> = res.trace.iter().map(|s| s.constraint).collect();
        assert_eq!(fired, vec![1, 0]);
    }

    #[test]
    fn null_budget_stops_runaway() {
        let (set, inst) = parse("S(X) -> E(X,Y), S(Y)", "S(a).");
        let cfg = ChaseConfig {
            max_nulls: Some(7),
            max_steps: None,
            ..ChaseConfig::default()
        };
        let res = chase(&inst, &set, &cfg);
        assert_eq!(res.reason, StopReason::NullLimit(7));
        assert_eq!(res.fresh_nulls, 7);
    }
}
