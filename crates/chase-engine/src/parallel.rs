//! The stratum-scheduled parallel chase executor.
//!
//! [`chase_parallel`] runs the delta-driven engine of [`crate::runner`]
//! phase by phase over a stratification schedule (the Theorem 2 SCC order
//! for stratified sets, one all-constraint phase otherwise — see
//! `chase_termination::phase_schedule`), and fans the per-step matching work
//! out across a pool of `std::thread::scope` workers:
//!
//! * **head revalidation** — the pooled triggers of a constraint whose head
//!   predicates intersect the step's delta are sharded, and each worker
//!   checks its shard for triggers the new atoms satisfied, querying a
//!   read-only [`chase_core::InstanceView`] snapshot of the position index;
//! * **delta re-matching** — the delta atoms are sharded, and each worker
//!   runs the semi-naive homomorphism search for its shard through the
//!   shared position index;
//! * **pool rebuilds** — after an EGD merge (and for the initial build) the
//!   instance atoms are sharded and every constraint is re-enumerated
//!   delta-seeded from each shard.
//!
//! Trigger *selection* stays sequential and canonical, and every parallel
//! path merges its results back through the same content-addressed trigger
//! pool (`BTreeMap` keyed by normalized assignment) the sequential engine
//! uses, so the produced trace is **bit-identical** to [`crate::chase`] and
//! [`crate::chase_naive`] under the same phase schedule, at any thread
//! count. Parallelism changes who finds a trigger, never which trigger
//! fires.
//!
//! The workers are persistent for the whole run — parked on a condvar
//! between steps instead of respawned — because a chase step's matching
//! work is measured in microseconds and per-step thread spawning would
//! swamp it. Work is only fanned out at all when a single dispatch covers
//! at least [`ParallelConfig::fanout_threshold`] work items.

use crate::runner::{run_with_exec, ChaseConfig, ChaseResult, Strategy};
use chase_core::{ConstraintSet, Instance};
use std::sync::{Condvar, Mutex};
use std::thread;

/// Configuration for [`chase_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Mode, budgets, trace and monitor settings. The `strategy` field is
    /// ignored: the firing order always comes from the phase schedule passed
    /// to [`chase_parallel`].
    pub base: ChaseConfig,
    /// Total parallelism, including the calling thread; `1` runs the
    /// scheduler without workers (identical to `chase` under the same
    /// phased strategy, with zero synchronization overhead).
    pub threads: usize,
    /// Minimum number of work items (pooled triggers to revalidate, delta
    /// atoms to re-match, instance atoms to re-enumerate) a dispatch must
    /// cover before it is sharded across workers; smaller batches run
    /// inline on the calling thread.
    pub fanout_threshold: usize,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            base: ChaseConfig::default(),
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            fanout_threshold: 256,
        }
    }
}

impl ParallelConfig {
    /// Default configuration at a fixed thread count.
    pub fn with_threads(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads: threads.max(1),
            ..ParallelConfig::default()
        }
    }
}

/// Run the chase over `phases` (groups of constraint indices, chased to
/// completion in order — see `chase_termination::phase_schedule`), fanning
/// per-step matching across `cfg.threads` threads.
///
/// The trace is bit-identical to `chase(instance, set, base)` with
/// `base.strategy = Strategy::Phased(phases)` — the equivalence the
/// `engine_equivalence` suite pins across thread counts.
///
/// # Panics
/// Panics if a phase names a constraint index out of range for `set`.
pub fn chase_parallel(
    instance: &Instance,
    set: &ConstraintSet,
    phases: &[Vec<usize>],
    cfg: &ParallelConfig,
) -> ChaseResult {
    for &ci in phases.iter().flatten() {
        assert!(
            ci < set.len(),
            "phase schedule names constraint {ci}, but the set has {} constraints",
            set.len()
        );
    }
    let mut base = cfg.base.clone();
    base.strategy = Strategy::Phased(phases.to_vec());
    let workers = cfg.threads.saturating_sub(1);
    if workers == 0 {
        return run_with_exec(instance, set, &base, None, cfg.fanout_threshold);
    }
    let shared = Shared::default();
    thread::scope(|s| {
        for lane in 1..=workers {
            let shared = &shared;
            s.spawn(move || worker_loop(shared, lane));
        }
        // Shut the workers down even if the run panics, so the scope's
        // implicit join cannot deadlock.
        let _guard = ShutdownGuard(&shared);
        let pool = WorkerPool {
            shared: &shared,
            workers,
        };
        run_with_exec(instance, set, &base, Some(&pool), cfg.fanout_threshold)
    })
}

/// State shared between the run thread and its parked workers.
#[derive(Default)]
struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch (or shutdown).
    work: Condvar,
    /// The dispatching thread waits here for `remaining` to reach zero.
    done: Condvar,
}

#[derive(Default)]
struct State {
    /// Bumped once per dispatch; workers run the task exactly once per epoch.
    epoch: u64,
    /// The current task. The `'static` is fabricated by [`WorkerPool::run`],
    /// which guarantees the reference is not used after it returns.
    task: Option<&'static (dyn Fn(usize) + Sync)>,
    /// Workers that have not finished the current epoch yet.
    remaining: usize,
    /// A worker panicked while running a task.
    poisoned: bool,
    shutdown: bool,
}

/// Lock the shared state, ignoring poison the way `parking_lot` does:
/// every critical section here leaves the state consistent even when the
/// locking thread later unwinds, and the guards below must never panic
/// inside a `Drop` that can run during unwinding.
fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct ShutdownGuard<'a>(&'a Shared);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        lock_state(self.0).shutdown = true;
        self.0.work.notify_all();
    }
}

/// Decrements `remaining` when a worker finishes (or unwinds out of) a task,
/// so the dispatcher can never be left waiting on a dead worker.
struct TaskDone<'a>(&'a Shared);

impl Drop for TaskDone<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        if thread::panicking() {
            st.poisoned = true;
        }
        st.remaining -= 1;
        let finished = st.remaining == 0;
        drop(st);
        if finished {
            self.0.done.notify_one();
        }
    }
}

/// Blocks until every worker has finished the current epoch — **also when
/// dropped during unwinding**. This is what makes the lifetime transmute in
/// [`WorkerPool::run`] sound when the calling thread's own shard panics:
/// the frame holding the task closure cannot be torn down while a worker
/// might still be executing it.
struct WaitForWorkers<'a>(&'a Shared);

impl Drop for WaitForWorkers<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        while st.remaining > 0 {
            st = self
                .0
                .done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // The task borrow dies with the caller's frame; make it unreachable.
        st.task = None;
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = lock_state(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.task.expect("task set for the current epoch");
                }
                st = shared
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let done = TaskDone(shared);
        task(lane);
        drop(done);
    }
}

/// Handle through which the runner dispatches shardable work onto the
/// scoped workers (plus the calling thread, as lane 0).
pub(crate) struct WorkerPool<'a> {
    shared: &'a Shared,
    workers: usize,
}

impl WorkerPool<'_> {
    /// Total parallel lanes: the scoped workers plus the calling thread.
    pub(crate) fn lanes(&self) -> usize {
        self.workers + 1
    }

    /// Split `items` into up to [`Self::lanes`] contiguous shards, run `f`
    /// once per shard concurrently, and return the per-shard results in
    /// shard order (so callers merge deterministically).
    pub(crate) fn map_shards<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let lanes = self.lanes().min(items.len());
        let chunk = items.len().div_ceil(lanes);
        let shards: Vec<&[T]> = items.chunks(chunk).collect();
        let results: Vec<Mutex<Option<R>>> = shards.iter().map(|_| Mutex::new(None)).collect();
        let task = |lane: usize| {
            if let (Some(shard), Some(slot)) = (shards.get(lane), results.get(lane)) {
                let r = f(shard);
                *slot.lock().unwrap() = Some(r);
            }
        };
        self.run(&task);
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every shard ran"))
            .collect()
    }

    /// Run `f(lane)` once on every lane (workers and the calling thread),
    /// returning only when all lanes have finished.
    ///
    /// Must only be called from the single run thread that owns this pool
    /// (one dispatch in flight at a time); the runner upholds this by
    /// construction.
    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the fabricated 'static never outlives the real borrow —
        // the `WaitForWorkers` guard blocks, even during unwinding from a
        // panic in `f(0)`, until every worker has finished its call
        // (`remaining == 0`, observed under the state lock) and has cleared
        // `task`, so no worker can reach the reference after this frame is
        // torn down.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let dead_worker = {
            let mut st = lock_state(self.shared);
            if !st.poisoned {
                st.task = Some(f);
                st.epoch += 1;
                st.remaining = self.workers;
            }
            st.poisoned
        };
        // A previously panicked worker no longer drains `remaining`;
        // dispatching would deadlock. (Asserted outside the lock so the
        // panic cannot poison the mutex mid-critical-section.)
        assert!(!dead_worker, "a chase worker thread panicked");
        self.shared.work.notify_all();
        {
            let _wait = WaitForWorkers(self.shared);
            f(0);
        }
        let poisoned = lock_state(self.shared).poisoned;
        assert!(!poisoned, "a chase worker thread panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn with_pool<R>(threads: usize, f: impl FnOnce(&WorkerPool) -> R) -> R {
        let shared = Shared::default();
        thread::scope(|s| {
            for lane in 1..threads {
                let shared = &shared;
                s.spawn(move || worker_loop(shared, lane));
            }
            let _guard = ShutdownGuard(&shared);
            let pool = WorkerPool {
                shared: &shared,
                workers: threads - 1,
            };
            f(&pool)
        })
    }

    #[test]
    fn map_shards_covers_every_item_once() {
        for threads in [1, 2, 4] {
            with_pool(threads, |pool| {
                let items: Vec<usize> = (0..100).collect();
                let sums = pool.map_shards(&items, |shard| shard.iter().sum::<usize>());
                assert!(sums.len() <= threads);
                assert_eq!(sums.into_iter().sum::<usize>(), 4950);
            });
        }
    }

    #[test]
    fn map_shards_handles_fewer_items_than_lanes() {
        with_pool(4, |pool| {
            let items = [7usize];
            assert_eq!(pool.map_shards(&items, |s| s.to_vec()), vec![vec![7]]);
            let none: [usize; 0] = [];
            assert!(pool.map_shards(&none, |s| s.len()).is_empty());
        });
    }

    #[test]
    fn repeated_dispatches_reuse_workers() {
        with_pool(3, |pool| {
            let hits = AtomicUsize::new(0);
            for _ in 0..50 {
                let items: Vec<u32> = (0..30).collect();
                pool.map_shards(&items, |shard| {
                    hits.fetch_add(shard.len(), Ordering::Relaxed);
                });
            }
            assert_eq!(hits.load(Ordering::Relaxed), 50 * 30);
        });
    }

    #[test]
    fn shard_order_is_stable() {
        with_pool(4, |pool| {
            let items: Vec<usize> = (0..97).collect();
            let shards = pool.map_shards(&items, |s| s.to_vec());
            let flat: Vec<usize> = shards.into_iter().flatten().collect();
            assert_eq!(flat, items);
        });
    }

    #[test]
    fn worker_panic_propagates_without_abort() {
        // Shard 0 runs on the calling thread and succeeds; later shards run
        // on workers and panic. The dispatcher must surface a panic (not
        // deadlock, not abort the process).
        let result = std::panic::catch_unwind(|| {
            with_pool(4, |pool| {
                let items: Vec<usize> = (0..100).collect();
                pool.map_shards(&items, |shard| {
                    assert!(shard[0] < 25, "worker shard fails");
                    shard.len()
                });
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn calling_thread_panic_waits_for_workers() {
        // Lane 0 panics while workers are still chewing on their shards;
        // unwinding must block until they finish (the transmuted task
        // reference dies with this frame) and then propagate.
        let result = std::panic::catch_unwind(|| {
            with_pool(4, |pool| {
                let items: Vec<usize> = (0..100).collect();
                pool.map_shards(&items, |shard| {
                    if shard[0] == 0 {
                        panic!("lane 0 fails first");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    shard.len()
                });
            })
        });
        assert!(result.is_err());
    }

    /// The parallel engine must replay the sequential delta engine's trace
    /// bit for bit under the same phase schedule — at every thread count,
    /// and even with `fanout_threshold = 0` forcing every matching path
    /// through the sharded code.
    fn assert_parallel_matches_sequential(set: &str, inst: &str, phases: &[Vec<usize>]) {
        let set = ConstraintSet::parse(set).unwrap();
        let inst = Instance::parse(inst).unwrap();
        let base = ChaseConfig {
            strategy: Strategy::Phased(phases.to_vec()),
            max_steps: Some(200),
            keep_trace: true,
            ..ChaseConfig::default()
        };
        let sequential = crate::chase(&inst, &set, &base);
        for threads in [1, 2, 4] {
            for threshold in [0, 256] {
                let cfg = ParallelConfig {
                    base: base.clone(),
                    threads,
                    fanout_threshold: threshold,
                };
                let par = chase_parallel(&inst, &set, phases, &cfg);
                assert_eq!(par.reason, sequential.reason, "t={threads} f={threshold}");
                assert_eq!(par.steps, sequential.steps, "t={threads} f={threshold}");
                assert_eq!(par.fresh_nulls, sequential.fresh_nulls);
                assert_eq!(par.instance, sequential.instance);
                assert_eq!(par.trace.len(), sequential.trace.len());
                for (a, b) in par.trace.iter().zip(&sequential.trace) {
                    assert_eq!(a.constraint, b.constraint);
                    assert_eq!(a.assignment, b.assignment);
                    assert_eq!(a.added, b.added);
                    assert_eq!(a.fresh_nulls, b.fresh_nulls);
                    assert_eq!(a.merged, b.merged);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_tgd_chains() {
        assert_parallel_matches_sequential(
            "S(X) -> T(X)\nT(X) -> U(X,Y)\nU(X,Y) -> V(Y)",
            "S(a). S(b). S(c).",
            &[vec![0], vec![1], vec![2]],
        );
    }

    #[test]
    fn parallel_matches_sequential_on_single_phase_divergence() {
        // The unstratified fallback: one phase, budget-bounded divergence.
        assert_parallel_matches_sequential(
            "S(X) -> E(X,Y), S(Y)",
            "S(n1). S(n2). E(n1,n2).",
            &[vec![0]],
        );
    }

    #[test]
    fn parallel_matches_sequential_on_egd_merges() {
        assert_parallel_matches_sequential(
            "E(X,Y), E(X,Z) -> Y = Z\nS(X) -> E(X,Y)",
            "S(a). E(a,_n0). E(_n0,c). E(a,b).",
            &[vec![0, 1]],
        );
    }

    #[test]
    fn parallel_matches_sequential_on_joins() {
        assert_parallel_matches_sequential(
            "E(X,Y), E(Y,Z) -> E(X,Z)",
            "E(a,b). E(b,c). E(c,d). E(d,e).",
            &[vec![0]],
        );
    }

    #[test]
    fn phase_index_out_of_range_panics() {
        let set = ConstraintSet::parse("S(X) -> T(X)").unwrap();
        let inst = Instance::parse("S(a).").unwrap();
        let bad = vec![vec![0, 3]];
        let err = std::panic::catch_unwind(|| {
            chase_parallel(&inst, &set, &bad, &ParallelConfig::with_threads(1))
        });
        assert!(err.is_err());
    }
}
