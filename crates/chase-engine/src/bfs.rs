//! Breadth-first search for a terminating chase sequence (the strawman of
//! Section 3.2).
//!
//! Theorem 1 guarantees stratified sets a terminating sequence on every
//! instance; the paper first notes one could find it by exploring the chase
//! tree breadth-first — "unfortunately, this is rather uneffective" — and
//! then constructs the order statically (Theorem 2). This module implements
//! the strawman so the claim is measurable: `benches`/tests compare its node
//! budget against the `stratified_order` + phased runner.

use crate::step::{apply_step, StepEffect};
use crate::trigger::{active_triggers, normalize};
use chase_core::fx::FxHashSet;
use chase_core::{ConstraintSet, Instance, Sym, Term};
use std::collections::VecDeque;

/// One edge of the found sequence: constraint index plus the canonical
/// assignment that was fired.
#[derive(Debug, Clone)]
pub struct SequenceStep {
    /// Constraint index.
    pub constraint: usize,
    /// The trigger assignment, normalized.
    pub assignment: Vec<(Sym, Term)>,
}

/// Result of the breadth-first exploration.
#[derive(Debug, Clone)]
pub struct BfsOutcome {
    /// The terminating sequence found, if any.
    pub sequence: Option<Vec<SequenceStep>>,
    /// Instances expanded (search effort).
    pub expanded: usize,
    /// Whether the node budget cut the search short.
    pub exhausted_budget: bool,
}

/// Explore chase sequences breadth-first from `instance`, looking for one
/// that ends in an instance satisfying `set`. Explores at most `max_nodes`
/// instances (deduplicated by their canonical rendering).
pub fn find_terminating_sequence(
    instance: &Instance,
    set: &ConstraintSet,
    max_nodes: usize,
) -> BfsOutcome {
    let mut queue: VecDeque<(Instance, Vec<SequenceStep>)> = VecDeque::new();
    let mut seen: FxHashSet<String> = FxHashSet::default();
    let mut expanded = 0usize;
    queue.push_back((instance.clone(), Vec::new()));
    seen.insert(instance.to_string());

    while let Some((inst, path)) = queue.pop_front() {
        if set.satisfied_by(&inst) {
            return BfsOutcome {
                sequence: Some(path),
                expanded,
                exhausted_budget: false,
            };
        }
        if expanded >= max_nodes {
            return BfsOutcome {
                sequence: None,
                expanded,
                exhausted_budget: true,
            };
        }
        expanded += 1;
        for (ci, c) in set.enumerate() {
            for mu in active_triggers(c, &inst) {
                let mut child = inst.clone();
                if apply_step(&mut child, c, &mu) == StepEffect::Failed {
                    continue; // dead branch
                }
                let key = child.to_string();
                if seen.insert(key) {
                    let mut next_path = path.clone();
                    next_path.push(SequenceStep {
                        constraint: ci,
                        assignment: normalize(c, &mu),
                    });
                    queue.push_back((child, next_path));
                }
            }
        }
    }
    BfsOutcome {
        sequence: None,
        expanded,
        exhausted_budget: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_trivial_sequence() {
        let set = ConstraintSet::parse("S(X) -> T(X)").unwrap();
        let inst = Instance::parse("S(a).").unwrap();
        let out = find_terminating_sequence(&inst, &set, 100);
        let seq = out.sequence.expect("terminating sequence exists");
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].constraint, 0);
    }

    #[test]
    fn finds_example4s_good_sequence() {
        // Example 4's set diverges under the naive cyclic order but BFS
        // finds a terminating sequence from {R(a), T(b,b)} (Example 5).
        let set = ConstraintSet::parse(
            "R(X1) -> S(X1,X1)\n\
             S(X1,X2) -> T(X2,Z)\n\
             S(X1,X2) -> T(X1,X2), T(X2,X1)\n\
             T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)",
        )
        .unwrap();
        let inst = Instance::parse("R(a). T(b,b).").unwrap();
        let out = find_terminating_sequence(&inst, &set, 20_000);
        let seq = out.sequence.expect("Theorem 1 guarantees a sequence");
        // BFS finds a shortest sequence; Example 5's displayed sequence
        // (α1, α3, α4, α1) has four steps.
        assert_eq!(seq.len(), 4);
        // The BFS had to expand many more nodes than the sequence length —
        // the paper's "rather uneffective" remark, quantified.
        assert!(out.expanded > seq.len());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // The divergent α2: no terminating sequence exists; BFS burns its
        // budget and says so.
        let set = ConstraintSet::parse("S(X) -> E(X,Y), S(Y)").unwrap();
        let inst = Instance::parse("S(a).").unwrap();
        let out = find_terminating_sequence(&inst, &set, 50);
        assert!(out.sequence.is_none());
        assert!(out.exhausted_budget);
    }

    #[test]
    fn satisfied_input_needs_no_steps() {
        let set = ConstraintSet::parse("S(X) -> T(X)").unwrap();
        let inst = Instance::parse("S(a). T(a).").unwrap();
        let out = find_terminating_sequence(&inst, &set, 10);
        assert_eq!(out.sequence.expect("already satisfied").len(), 0);
        assert_eq!(out.expanded, 0);
    }
}
