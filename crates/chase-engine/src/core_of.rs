//! Core computation and the core chase (the `[9]`-style variant the paper's
//! conclusions point to).
//!
//! The *core* of an instance is its smallest retract: no homomorphism (fixing
//! constants) maps it into a proper subinstance. The *core chase* alternates
//! parallel chase rounds with core computation; it terminates in strictly
//! more cases than the standard chase (it finds a finite universal model
//! whenever one exists), at the price of the NP-hard core step — fine for
//! the small instances this library targets, and bounded by a round budget.

use crate::step::apply_step;
use crate::trigger::{active_triggers, normalize};
use chase_core::homomorphism::{for_each_hom, Subst};
use chase_core::{ConstraintSet, Instance};

/// Compute the core of `instance`.
///
/// Repeatedly searches for a retraction into a proper subinstance (it
/// suffices to test, for each atom, whether the instance maps into itself
/// minus that atom) and applies it until none exists. Exponential in the
/// worst case — cores are NP-hard — but instant on chase-sized instances.
pub fn core_of(instance: &Instance) -> Instance {
    let mut current = instance.clone();
    'shrink: loop {
        // Materialize once per shrink round — `current` is immutable across
        // the per-skip retraction tests below.
        let all = current.atoms();
        for skip in 0..all.len() {
            // Target: current minus one atom.
            let mut target = Instance::new();
            for (i, a) in all.iter().enumerate() {
                if i != skip {
                    target.insert(a.clone());
                }
            }
            // Retraction: nulls flexible, constants fixed.
            let mut retraction: Option<Subst> = None;
            for_each_hom(&all, &target, &Subst::new(), true, &mut |h| {
                retraction = Some(h.clone());
                true
            });
            if let Some(h) = retraction {
                let mut image = Instance::new();
                for a in &all {
                    image.insert(h.apply_atom(a));
                }
                debug_assert!(image.len() < current.len());
                current = image;
                continue 'shrink;
            }
        }
        return current;
    }
}

/// Is the instance its own core?
pub fn is_core(instance: &Instance) -> bool {
    core_of(instance).len() == instance.len()
}

/// Outcome of a [`core_chase`] run.
#[derive(Debug, Clone)]
pub struct CoreChaseResult {
    /// The final instance (a core).
    pub instance: Instance,
    /// Number of parallel rounds executed.
    pub rounds: usize,
    /// Did the run reach `I ⊨ Σ`?
    pub satisfied: bool,
}

/// The core chase: per round, fire **every** active trigger (computed
/// against the round's start instance), then replace the instance by its
/// core; stop when the instance satisfies `Σ` or `max_rounds` is hit.
///
/// EGD failures surface as `satisfied = false` with the failing instance.
pub fn core_chase(instance: &Instance, set: &ConstraintSet, max_rounds: usize) -> CoreChaseResult {
    let mut current = core_of(instance);
    for round in 0..max_rounds {
        if set.satisfied_by(&current) {
            return CoreChaseResult {
                instance: current,
                rounds: round,
                satisfied: true,
            };
        }
        // Collect this round's triggers up front (parallel semantics), then
        // re-check activeness at application time: earlier firings in the
        // same round may have satisfied later triggers.
        let round_triggers: Vec<(usize, Subst)> = set
            .enumerate()
            .flat_map(|(ci, c)| {
                active_triggers(c, &current)
                    .into_iter()
                    .map(move |mu| (ci, mu))
            })
            .collect();
        let mut progressed = false;
        for (ci, mu) in round_triggers {
            let c = &set[ci];
            let still_bound = normalize(c, &mu)
                .iter()
                .all(|(_, t)| current.domain().contains(t));
            if !still_bound || !crate::trigger::is_active(c, &current, &mu) {
                continue;
            }
            match apply_step(&mut current, c, &mu) {
                crate::step::StepEffect::Failed => {
                    return CoreChaseResult {
                        instance: current,
                        rounds: round + 1,
                        satisfied: false,
                    };
                }
                _ => progressed = true,
            }
        }
        current = core_of(&current);
        if !progressed {
            break;
        }
    }
    let satisfied = set.satisfied_by(&current);
    CoreChaseResult {
        instance: current,
        rounds: max_rounds,
        satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{chase, ChaseConfig};

    #[test]
    fn core_folds_redundant_nulls() {
        let i = Instance::parse("E(a,_n0). E(a,b).").unwrap();
        let core = core_of(&i);
        assert_eq!(core, Instance::parse("E(a,b).").unwrap());
    }

    #[test]
    fn core_of_a_core_is_itself() {
        let i = Instance::parse("E(a,b). E(b,c). S(_n1).").unwrap();
        // _n1 in S cannot fold anywhere: S has no other fact.
        let core = core_of(&i);
        assert_eq!(core, i);
        assert!(is_core(&i));
    }

    #[test]
    fn core_handles_chained_nulls() {
        // _n0 → b requires _n1 → c simultaneously.
        let i = Instance::parse("E(a,_n0). E(_n0,_n1). E(a,b). E(b,c).").unwrap();
        let core = core_of(&i);
        assert_eq!(core, Instance::parse("E(a,b). E(b,c).").unwrap());
    }

    #[test]
    fn constants_never_fold() {
        let i = Instance::parse("E(a,b). E(a,c).").unwrap();
        assert!(is_core(&i));
    }

    #[test]
    fn core_chase_terminates_where_standard_diverges() {
        // D(x) → ∃y E(x,y); E(x,y) → D(y); E(x,y) → E(x,x): the standard
        // chase cascades fresh nulls forever, but {D(a), E(a,a)} is a finite
        // universal model and the core chase finds it.
        let set = ConstraintSet::parse(
            "D(X) -> E(X,Y)\n\
             E(X,Y) -> D(Y)\n\
             E(X,Y) -> E(X,X)",
        )
        .unwrap();
        let inst = Instance::parse("D(a).").unwrap();
        let standard = chase(&inst, &set, &ChaseConfig::with_max_steps(60));
        assert!(!standard.terminated(), "standard chase must diverge");
        let core = core_chase(&inst, &set, 20);
        assert!(core.satisfied, "core chase must terminate");
        assert_eq!(core.instance, Instance::parse("D(a). E(a,a).").unwrap());
    }

    #[test]
    fn core_chase_agrees_on_terminating_inputs() {
        let set = ConstraintSet::parse("S(X) -> E(X,Y)").unwrap();
        let inst = Instance::parse("S(a). S(b).").unwrap();
        let res = core_chase(&inst, &set, 10);
        assert!(res.satisfied);
        assert!(set.satisfied_by(&res.instance));
        // The two fresh targets fold into one… no: distinct S-nodes keep
        // their own edges; but each edge's null is only constrained by its
        // source, so the result is the core of the standard result.
        let standard = chase(&inst, &set, &ChaseConfig::default());
        assert_eq!(core_of(&standard.instance), res.instance);
    }

    #[test]
    fn core_chase_reports_egd_failure() {
        let set = ConstraintSet::parse("E(X,Y), E(X,Z) -> Y = Z").unwrap();
        let inst = Instance::parse("E(a,b). E(a,c).").unwrap();
        let res = core_chase(&inst, &set, 10);
        assert!(!res.satisfied);
    }
}
