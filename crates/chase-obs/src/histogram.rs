//! Fixed-bucket log-scale latency histograms.
//!
//! The layout is the classic HDR scheme: values below [`SUB_COUNT`] land in
//! exact unit-width buckets; above that, each power-of-two octave is split
//! into [`SUB_COUNT`] linear sub-buckets, so the relative quantisation error
//! is bounded by `1 / SUB_COUNT` (6.25%) across the full `u64` range while
//! the whole table stays under 8 KiB. Recording is lock-free (one relaxed
//! `fetch_add` per sample plus min/max maintenance); reads go through
//! [`Histogram::snapshot`], and snapshots merge bucket-wise, so per-thread or
//! per-session histograms aggregate without locks on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave; also the width of the exact low range.
pub const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count: 16 exact buckets + 60 octaves × 16 sub-buckets.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_COUNT as usize) + SUB_COUNT as usize;

/// Bucket index for a recorded value (monotone in `v`).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) & (SUB_COUNT - 1);
        (((msb - SUB_BITS + 1) << SUB_BITS) | sub as u32) as usize
    }
}

/// Inclusive upper edge of bucket `i` — the value reported for any sample
/// that landed there, making every percentile an upper bound on the truth.
fn bucket_high(i: usize) -> u64 {
    if i < SUB_COUNT as usize {
        i as u64
    } else {
        let octave = (i >> SUB_BITS) as u32;
        let msb = octave + SUB_BITS - 1;
        let sub = (i as u64) & (SUB_COUNT - 1);
        let shift = msb - SUB_BITS;
        let low = (1u64 << msb) | (sub << shift);
        low + ((1u64 << shift) - 1)
    }
}

/// A concurrent fixed-bucket log-scale histogram of `u64` samples
/// (conventionally nanoseconds).
///
/// ```
/// use chase_obs::Histogram;
///
/// let h = Histogram::new();
/// for v in [10, 20, 30, 40, 1_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 5);
/// assert_eq!(snap.min(), 10);
/// // Percentiles are upper bounds with ≤ 6.25% relative error.
/// assert!(snap.percentile(0.50) >= 30);
/// assert!(snap.percentile(0.99) >= 1_000);
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count(), s.sum())
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the distribution, safe to merge and query.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]: mergeable, queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another snapshot into this one bucket-wise.
    ///
    /// ```
    /// use chase_obs::Histogram;
    /// let (a, b) = (Histogram::new(), Histogram::new());
    /// a.record(1);
    /// b.record(1_000_000);
    /// let mut merged = a.snapshot();
    /// merged.merge(&b.snapshot());
    /// assert_eq!(merged.count(), 2);
    /// assert_eq!(merged.min(), 1);
    /// ```
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // Wrapping to match the relaxed atomic accumulation in `record`
        // (only reachable with pathological non-latency sample values).
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]` (0 when empty).
    ///
    /// Rank selection matches `sorted[((n - 1) as f64 * q).round()]` on the
    /// sorted sample vector; the returned value is the upper edge of the
    /// bucket holding that sample, clamped to the observed maximum, so it
    /// over-reports by at most `1/16` relative error.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum > rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_total() {
        let mut prev = 0;
        // Exhaustive over the low range, sampled across the rest.
        for v in (0..4096u64).chain((12..64).flat_map(|e| {
            let base = 1u64 << e;
            [base - 1, base, base + base / 3, base + base / 2]
        })) {
            let i = bucket_of(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "bucket_of not monotone at {v}");
            assert!(bucket_high(i) >= v, "upper edge below value at {v}");
            prev = i;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn exact_low_range() {
        let h = Histogram::new();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.percentile(1.0), SUB_COUNT - 1);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), SUB_COUNT - 1);
    }

    #[test]
    fn empty_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            (
                s.count(),
                s.sum(),
                s.min(),
                s.max(),
                s.mean(),
                s.percentile(0.5)
            ),
            (0, 0, 0, 0, 0, 0)
        );
    }
}
