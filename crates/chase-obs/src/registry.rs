//! Named metrics: atomic counters and gauges, shared histograms, and
//! mergeable snapshots with a Prometheus-style text exposition.
//!
//! Metric names may carry labels inline in the conventional
//! `name{key="value"}` form; histogram snapshots expand into `_count`,
//! `_sum_ns`, `_p50_ns`, `_p90_ns`, and `_p99_ns` series with the label set
//! preserved (the suffix is spliced in before the `{`).

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle (cheap to clone; all clones
/// share the same cell).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle (cheap to clone; clones share the cell).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is currently lower.
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Handles are created on first use and shared thereafter, so any component
/// holding the registry (or a clone of a handle) feeds the same series.
///
/// ```
/// use chase_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter("requests_total").add(3);
/// reg.gauge("sessions_open").set(2);
/// reg.histogram("apply_ns").record(1500);
/// let text = reg.snapshot().render();
/// assert!(text.contains("requests_total 3"));
/// assert!(text.contains("sessions_open 2"));
/// assert!(text.contains("apply_ns_count 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at 0 on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created at 0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A mergeable point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Splice a suffix into a metric name, keeping any `{label}` block last:
/// `("apply_ns{sid=\"3\"}", "_p99")` → `apply_ns_p99{sid="3"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

impl RegistrySnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn new() -> RegistrySnapshot {
        RegistrySnapshot::default()
    }

    /// Set or overwrite a counter value.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Set or overwrite a gauge value.
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Set or overwrite a histogram series.
    pub fn set_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), h);
    }

    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Look up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Look up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Iterate histograms (name, snapshot), sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold `other` into this snapshot: counters and gauges add, histograms
    /// merge bucket-wise. Used to aggregate per-session registries into a
    /// server-wide view.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .and_modify(|h| h.merge(v))
                .or_insert_with(|| v.clone());
        }
    }

    /// Render the snapshot as Prometheus-style `name{label} value` text,
    /// one metric per line, sorted by name within each metric class.
    ///
    /// ```
    /// use chase_obs::{Histogram, RegistrySnapshot};
    ///
    /// let mut snap = RegistrySnapshot::new();
    /// snap.set_counter("steps_total", 42);
    /// let h = Histogram::new();
    /// h.record(100);
    /// snap.set_histogram("query_ns{tenant=\"a\"}", h.snapshot());
    /// let text = snap.render();
    /// assert!(text.contains("steps_total 42"));
    /// assert!(text.contains("query_ns_count{tenant=\"a\"} 1"));
    /// assert!(text.contains("query_ns_p99_ns{tenant=\"a\"} 100"));
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{} {}", suffixed(name, "_count"), h.count());
            let _ = writeln!(out, "{} {}", suffixed(name, "_sum_ns"), h.sum());
            let _ = writeln!(out, "{} {}", suffixed(name, "_p50_ns"), h.percentile(0.50));
            let _ = writeln!(out, "{} {}", suffixed(name, "_p90_ns"), h.percentile(0.90));
            let _ = writeln!(out, "{} {}", suffixed(name, "_p99_ns"), h.percentile(0.99));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        let g = reg.gauge("y");
        g.set(5);
        g.add(-2);
        g.raise_to(4);
        assert_eq!(reg.gauge("y").get(), 4);
    }

    #[test]
    fn merge_adds_and_folds() {
        let r1 = MetricsRegistry::new();
        r1.counter("c").add(1);
        r1.gauge("g").set(2);
        r1.histogram("h").record(10);
        let r2 = MetricsRegistry::new();
        r2.counter("c").add(10);
        r2.histogram("h").record(20);
        r2.histogram("only2").record(5);

        let mut snap = r1.snapshot();
        snap.merge(&r2.snapshot());
        assert_eq!(snap.counter("c"), Some(11));
        assert_eq!(snap.gauge("g"), Some(2));
        assert_eq!(snap.histogram("h").unwrap().count(), 2);
        assert_eq!(snap.histogram("only2").unwrap().count(), 1);
    }

    #[test]
    fn suffix_splices_before_labels() {
        assert_eq!(suffixed("a_ns", "_p50"), "a_ns_p50");
        assert_eq!(suffixed("a_ns{k=\"v\"}", "_p50"), "a_ns_p50{k=\"v\"}");
    }
}
