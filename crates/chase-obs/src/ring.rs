//! A bounded ring of structured engine events.
//!
//! Events are observations *about* the chase, never inputs *to* it: nothing
//! in the engine reads the ring back, and timestamps live only here, so the
//! deterministic trace is untouched by recording (the equivalence suites pin
//! this). When the ring is full the oldest event is dropped and counted; a
//! capacity of zero drops everything, which makes "events compiled in but
//! retained nowhere" a valid configuration.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened. The taxonomy mirrors the engine's observable transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A trigger fired (TGD or EGD step applied).
    StepFired,
    /// An EGD merge collapsed two terms.
    EgdMerge,
    /// The matcher recompiled its join plans.
    PlanRecompile,
    /// A resume (warm continuation of the chase) began.
    ResumeBegin,
    /// A resume finished.
    ResumeEnd,
    /// The serving layer published a new instance snapshot.
    SnapshotPublish,
    /// A session was poisoned (hard failure or monitor abort).
    Poison,
}

/// One recorded event: a kind, a coarse timestamp, and two payload words
/// whose meaning depends on the kind (constraint index, step count, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the owning recorder was created.
    pub at_ns: u64,
    /// The event kind.
    pub kind: EventKind,
    /// First payload word (kind-dependent).
    pub a: u64,
    /// Second payload word (kind-dependent).
    pub b: u64,
}

/// A bounded, thread-safe event ring.
///
/// ```
/// use chase_obs::{Event, EventKind, EventRing};
///
/// let ring = EventRing::new(2);
/// for i in 0..3 {
///     ring.push(Event { at_ns: i, kind: EventKind::StepFired, a: i, b: 0 });
/// }
/// let events = ring.snapshot();
/// assert_eq!(events.len(), 2); // oldest event evicted
/// assert_eq!(events[0].at_ns, 1);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    buf: VecDeque<Event>,
    dropped: u64,
}

impl EventRing {
    /// A ring retaining at most `capacity` events (0 retains none).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            cap: capacity,
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, ev: Event) {
        let mut inner = self.inner.lock().unwrap();
        if self.cap == 0 {
            inner.dropped += 1;
            return;
        }
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(ev);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the ring currently holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events evicted or rejected since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Copy out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.iter().copied().collect()
    }

    /// Remove and return the retained events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> Event {
        Event {
            at_ns: i,
            kind: EventKind::StepFired,
            a: i,
            b: 0,
        }
    }

    #[test]
    fn wraparound_keeps_newest() {
        let ring = EventRing::new(3);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.at_ns).collect();
        assert_eq!(got, vec![7, 8, 9]);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn capacity_zero_drops_everything() {
        let ring = EventRing::new(0);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.snapshot(), vec![]);
        assert_eq!(ring.dropped(), 5);
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let ring = EventRing::new(2);
        ring.push(ev(0));
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }
}
