//! The engine-facing recording surface: a [`Recorder`] handle that is either
//! enabled (an `Arc` of phase histograms plus an event ring) or disabled (a
//! `None` — every call is one branch and returns immediately).
//!
//! The engine threads a `Recorder` through its hot loops; the disabled path
//! never touches a clock, so leaving instrumentation compiled in costs one
//! predictable branch per site (bench-gated at <2% on the `ex4_strategies`
//! medians). Recording is strictly write-only from the engine's point of
//! view: nothing reads timers or events back into trigger selection, which
//! is what keeps the deterministic trace bit-identical with recording on.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::registry::RegistrySnapshot;
use crate::ring::{Event, EventKind, EventRing};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The stages a chase resume decomposes into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Semi-naive re-matching of constraint bodies against delta facts.
    DeltaMatch,
    /// Re-checking head satisfaction of pooled triggers (Standard mode).
    HeadRevalidate,
    /// Applying a step's head: inserting facts / allocating nulls.
    Insert,
    /// Repairing pools and facts after an EGD merge.
    MergeRepair,
    /// Building or pruning the trigger pool.
    PoolMaintain,
    /// Compiling join plans in the matcher.
    PlanCompile,
    /// Encoding and appending a batch record to a session's write-ahead log.
    WalAppend,
    /// Waiting on the OS to flush WAL appends durable (`fsync`).
    WalFsync,
    /// Replaying WAL records through the warm resume path at reopen.
    WalReplay,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 9] = [
        Phase::DeltaMatch,
        Phase::HeadRevalidate,
        Phase::Insert,
        Phase::MergeRepair,
        Phase::PoolMaintain,
        Phase::PlanCompile,
        Phase::WalAppend,
        Phase::WalFsync,
        Phase::WalReplay,
    ];

    /// The snake_case name used in metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::DeltaMatch => "delta_match",
            Phase::HeadRevalidate => "head_revalidate",
            Phase::Insert => "insert",
            Phase::MergeRepair => "merge_repair",
            Phase::PoolMaintain => "pool_maintain",
            Phase::PlanCompile => "plan_compile",
            Phase::WalAppend => "wal_append",
            Phase::WalFsync => "wal_fsync",
            Phase::WalReplay => "wal_replay",
        }
    }
}

#[derive(Debug)]
struct RecorderInner {
    epoch: Instant,
    phases: [Histogram; Phase::ALL.len()],
    ring: EventRing,
}

/// A cloneable recording handle; disabled by default.
///
/// All clones of an enabled recorder share the same histograms and ring, so
/// a session can hand copies to its engine state and matcher and read one
/// aggregate back.
///
/// ```
/// use chase_obs::{EventKind, Phase, Recorder};
///
/// let rec = Recorder::enabled(16);
/// {
///     let _t = rec.phase(Phase::Insert); // RAII: records on drop
/// }
/// rec.event(EventKind::StepFired, 0, 1);
/// assert_eq!(rec.phase_snapshot(Phase::Insert).count(), 1);
/// assert_eq!(rec.events().len(), 1);
///
/// let off = Recorder::disabled(); // every call is a single branch
/// let _t = off.phase(Phase::Insert);
/// assert_eq!(off.phase_snapshot(Phase::Insert).count(), 0);
/// ```
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Recorder({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Recorder {
    /// A recorder that records nothing; every call costs one branch.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder whose event ring retains `ring_capacity` events.
    pub fn enabled(ring_capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                epoch: Instant::now(),
                phases: std::array::from_fn(|_| Histogram::new()),
                ring: EventRing::new(ring_capacity),
            })),
        }
    }

    /// Whether this recorder retains anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start timing `phase`; the returned guard records the elapsed wall
    /// clock into the phase histogram when dropped. On a disabled recorder
    /// the clock is never read.
    #[inline]
    pub fn phase(&self, phase: Phase) -> PhaseTimer {
        PhaseTimer {
            armed: self
                .inner
                .as_ref()
                .map(|r| (Arc::clone(r), phase, Instant::now())),
        }
    }

    /// Record an already-measured phase duration in nanoseconds.
    #[inline]
    pub fn record_phase(&self, phase: Phase, nanos: u64) {
        if let Some(r) = &self.inner {
            r.phases[phase as usize].record(nanos);
        }
    }

    /// Append an event to the ring (dropped silently when disabled).
    #[inline]
    pub fn event(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(r) = &self.inner {
            let at_ns = u64::try_from(r.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
            r.ring.push(Event { at_ns, kind, a, b });
        }
    }

    /// A copy of the retained events, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|r| r.ring.snapshot())
            .unwrap_or_default()
    }

    /// Events evicted or rejected by the ring so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map(|r| r.ring.dropped()).unwrap_or(0)
    }

    /// A snapshot of one phase's latency distribution (empty when disabled).
    pub fn phase_snapshot(&self, phase: Phase) -> HistogramSnapshot {
        self.inner
            .as_ref()
            .map(|r| r.phases[phase as usize].snapshot())
            .unwrap_or_default()
    }

    /// Export every phase histogram into `snap` as
    /// `{prefix}{{phase="<name>"}}` series. No-op when disabled.
    pub fn export_phases(&self, prefix: &str, snap: &mut RegistrySnapshot) {
        if let Some(r) = &self.inner {
            for p in Phase::ALL {
                snap.set_histogram(
                    &format!("{prefix}{{phase=\"{}\"}}", p.name()),
                    r.phases[p as usize].snapshot(),
                );
            }
        }
    }
}

/// RAII guard returned by [`Recorder::phase`].
#[must_use = "a PhaseTimer records on drop; binding it to _ drops immediately"]
pub struct PhaseTimer {
    armed: Option<(Arc<RecorderInner>, Phase, Instant)>,
}

impl PhaseTimer {
    /// A timer that records nothing on drop. Lets a caller sample a hot
    /// site — keep one code path returning `PhaseTimer`, hand out a
    /// disarmed guard for the occurrences it chooses to skip — without
    /// reading the clock for the skipped ones.
    pub fn disarmed() -> PhaseTimer {
        PhaseTimer { armed: None }
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((rec, phase, t0)) = self.armed.take() {
            rec.phases[phase as usize].record_duration(t0.elapsed());
        }
    }
}

/// The process-wide recorder, enabled when the `CHASE_OBS` environment
/// variable is set to anything but empty or `0` at first use.
///
/// One-shot entry points (`chase()`, the benches) default to this recorder,
/// so recording can be switched on for an unmodified binary — the CI
/// overhead smoke compares `CHASE_OBS=1` against unset on the same bench.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(|| match std::env::var("CHASE_OBS") {
        Ok(v) if !v.is_empty() && v != "0" => Recorder::enabled(1024),
        _ => Recorder::disabled(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let rec = Recorder::disabled();
        drop(rec.phase(Phase::DeltaMatch));
        rec.record_phase(Phase::Insert, 99);
        rec.event(EventKind::Poison, 1, 2);
        assert!(!rec.is_enabled());
        assert_eq!(rec.phase_snapshot(Phase::Insert).count(), 0);
        assert!(rec.events().is_empty());
        let mut snap = RegistrySnapshot::new();
        rec.export_phases("x", &mut snap);
        assert_eq!(snap, RegistrySnapshot::new());
    }

    #[test]
    fn clones_share_sinks() {
        let rec = Recorder::enabled(8);
        let other = rec.clone();
        other.record_phase(Phase::PlanCompile, 500);
        other.event(EventKind::PlanRecompile, 1, 0);
        assert_eq!(rec.phase_snapshot(Phase::PlanCompile).count(), 1);
        assert_eq!(rec.events()[0].kind, EventKind::PlanRecompile);
    }

    #[test]
    fn export_phases_labels_series() {
        let rec = Recorder::enabled(0);
        rec.record_phase(Phase::MergeRepair, 1000);
        let mut snap = RegistrySnapshot::new();
        rec.export_phases("chase_phase_ns", &mut snap);
        let h = snap
            .histogram("chase_phase_ns{phase=\"merge_repair\"}")
            .unwrap();
        assert_eq!(h.count(), 1);
        assert!(snap
            .render()
            .contains("chase_phase_ns_count{phase=\"merge_repair\"} 1"));
    }

    #[test]
    fn timer_measures_nonzero() {
        let rec = Recorder::enabled(0);
        {
            let _t = rec.phase(Phase::PoolMaintain);
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let s = rec.phase_snapshot(Phase::PoolMaintain);
        assert_eq!(s.count(), 1);
    }
}
