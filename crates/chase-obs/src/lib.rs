//! Telemetry for the chase workspace, hand-rolled with zero dependencies.
//!
//! Three layers, composable but separable:
//!
//! * [`Histogram`] / [`HistogramSnapshot`] — fixed-bucket log-scale latency
//!   histograms (HDR layout: 16 linear sub-buckets per octave, ≤ 6.25%
//!   relative error) with lock-free recording and mergeable snapshots;
//! * [`MetricsRegistry`] / [`RegistrySnapshot`] — named counters, gauges,
//!   and histograms with a Prometheus-style `name{label} value` text
//!   exposition ([`RegistrySnapshot::render`]);
//! * [`Recorder`] / [`PhaseTimer`] / [`EventRing`] — the engine-facing
//!   surface: per-[`Phase`] wall-clock timers and a bounded ring of
//!   structured [`Event`]s, with a disabled path that costs one branch per
//!   site and never reads the clock.
//!
//! Everything recorded here is an *observation*: timestamps and counters
//! never feed back into trigger selection, so the chase's deterministic
//! trace is bit-identical with recording on or off (pinned by the
//! equivalence suites).
//!
//! ```
//! use chase_obs::{EventKind, MetricsRegistry, Phase, Recorder};
//!
//! // A session-side registry plus an engine-side recorder.
//! let reg = MetricsRegistry::new();
//! let rec = Recorder::enabled(256);
//!
//! reg.counter("applies_total").inc();
//! reg.histogram("apply_ns").record_duration(std::time::Duration::from_micros(42));
//! {
//!     let _t = rec.phase(Phase::Insert);
//!     // ... engine work ...
//! }
//! rec.event(EventKind::StepFired, 0, 1);
//!
//! // Aggregate both into one exposition.
//! let mut snap = reg.snapshot();
//! rec.export_phases("chase_phase_ns", &mut snap);
//! let text = snap.render();
//! assert!(text.contains("applies_total 1"));
//! assert!(text.contains("chase_phase_ns_count{phase=\"insert\"} 1"));
//! ```

#![warn(missing_docs)]

mod histogram;
mod recorder;
mod registry;
mod ring;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS, SUB_COUNT};
pub use recorder::{global, Phase, PhaseTimer, Recorder};
pub use registry::{Counter, Gauge, MetricsRegistry, RegistrySnapshot};
pub use ring::{Event, EventKind, EventRing};
