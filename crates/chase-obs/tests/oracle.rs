//! Property test: `Histogram` against a sorted-`Vec` oracle.
//!
//! Samples deliberately cluster on bucket boundaries (powers of two, the
//! exact low range, boundary ± 1) because those are where an off-by-one in
//! the index or upper-edge math would bite. The pinned contract: count, sum,
//! min, and max are exact; every percentile is an upper bound on the
//! oracle's rank-selected sample with at most `1/16` relative error.

use chase_obs::Histogram;
use proptest::prelude::*;

/// Deterministic scale-mixed sample vector (LCG-driven).
fn samples(seed: u64, len: usize) -> Vec<u64> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = match i % 4 {
            0 => x % 16,                             // exact low range
            1 => 1u64 << (x % 64),                   // octave boundaries
            2 => (1u64 << (x % 64)).wrapping_sub(1), // just below a boundary
            _ => x >> (x % 64),                      // log-uniform-ish spread
        };
        out.push(v);
    }
    out
}

/// The bench's historical percentile convention on a sorted vector.
fn oracle_pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(((sorted.len() - 1) as f64) * q).round() as usize]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn histogram_matches_sorted_vec_oracle(
        seed in any::<u64>(),
        len in 0usize..400,
        split in 0usize..400,
    ) {
        let vals = samples(seed, len);
        // Record through two histograms and merge, so merge is under test
        // on every case, not just record/percentile.
        let split = split.min(vals.len());
        let (a, b) = (Histogram::new(), Histogram::new());
        for &v in &vals[..split] {
            a.record(v);
        }
        for &v in &vals[split..] {
            b.record(v);
        }
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());

        let mut sorted = vals.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count(), vals.len() as u64);
        prop_assert_eq!(snap.sum(), vals.iter().fold(0u64, |s, &v| s.wrapping_add(v)));
        prop_assert_eq!(snap.min(), sorted.first().copied().unwrap_or(0));
        prop_assert_eq!(snap.max(), sorted.last().copied().unwrap_or(0));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let o = oracle_pct(&sorted, q);
            let h = snap.percentile(q);
            prop_assert!(h >= o, "p{}: histogram {} below oracle {}", q, h, o);
            prop_assert!(
                h <= o + o / 16 + 1,
                "p{}: histogram {} above the 1/16 error bound for oracle {}",
                q, h, o
            );
        }
    }
}
