//! Realistic application scenarios built from the paper's motivating
//! domains (data exchange, data integration, SQO) — larger, structured
//! workloads for examples, tests and benchmarks.

use chase_core::{ConjunctiveQuery, ConstraintSet, Instance};

fn set(text: &str) -> ConstraintSet {
    ConstraintSet::parse(text).expect("scenario constraint set parses")
}

/// A data-exchange setting in the style the paper cites from Fagin et al.:
/// source schema `s_emp(name, dept, city)`, `s_proj(name, lead)`; target
/// schema with departments, employees, projects and a key on department
/// locations.
///
/// The source-to-target TGDs invent target ids existentially; the target
/// TGDs complete the org structure; the EGD is a key constraint. The set is
/// weakly acyclic, so every chase sequence terminates — chasing a source
/// instance produces a *universal solution*.
pub fn data_exchange_scenario() -> ConstraintSet {
    set("# source-to-target
         s_emp(N,D,C) -> emp(N,Did), dept(Did,D,C)
         s_proj(P,L) -> proj(Pid,P), lead(Pid,L)
         # target constraints
         lead(Pid,L) -> emp(L,Did)
         emp(N,Did) -> dept(Did,Dn,Dc)
         # key: a department id has one location
         dept(Did,Dn,C1), dept(Did,Dn2,C2) -> C1 = C2")
}

/// A small source instance for [`data_exchange_scenario`].
pub fn data_exchange_source() -> Instance {
    Instance::parse(
        "s_emp(alice,sales,berlin). \
         s_emp(bob,sales,berlin). \
         s_proj(apollo,alice).",
    )
    .expect("source instance parses")
}

/// Certain-answer query over the exchanged data: names of employees that
/// lead some project.
pub fn data_exchange_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(L) <- proj(Pid,P), lead(Pid,L)").expect("query parses")
}

/// A data-integration-flavored *divergent* variant: the org completion is
/// made cyclic (every department must have a manager who is an employee of
/// a — possibly new — department), which breaks every data-independent
/// condition. Used to demonstrate the data-dependent pipeline on a
/// non-textbook set.
pub fn integration_divergent_scenario() -> ConstraintSet {
    set("s_emp(N,D,C) -> emp(N,Did), dept(Did,D,C)
         dept(Did,Dn,C) -> mgr(Did,M), emp(M,Did2)
         emp(N,Did) -> dept(Did,Dn,Dc)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_sets_parse_with_expected_shapes() {
        let de = data_exchange_scenario();
        assert_eq!(de.len(), 5);
        assert_eq!(de.iter().filter(|c| c.is_egd()).count(), 1);
        let dv = integration_divergent_scenario();
        assert_eq!(dv.len(), 3);
    }

    #[test]
    fn source_and_query_parse() {
        assert_eq!(data_exchange_source().len(), 3);
        assert_eq!(data_exchange_query().head_args().len(), 1);
    }
}
