//! The Turing-machine-to-TGD encoding from the proof of Theorem 8.
//!
//! Theorem 8 shows that `(I,Σ)`-irrelevance is undecidable by compiling a
//! Turing machine `M` into a constraint set `ΣM` such that `M` reaches a
//! transition `δ` (from the empty input) iff the marker rule
//! `Aδ(x) → Bδ(x)` can eventually fire when chasing the empty instance.
//!
//! The configuration encoding follows the paper: each configuration is a row
//! of `T(x, symbol, y)` "tape edges" delimited by begin/end markers, the
//! head is a parallel `H(x, state, y)` edge, successive rows are linked by
//! vertical `L`/`R` edges, and per-symbol copy rules reproduce the untouched
//! part of the tape into the next row.
//!
//! Two deliberate tightenings over the paper's proof sketch (documented in
//! DESIGN.md §4): transition rules are instantiated per concrete
//! neighbor-symbol (the sketch's universally quantified neighbor would also
//! match the end marker), and vertical `R`-edges are only emitted where a
//! cell actually needs copying (the sketch's extra `R(y,y')` would duplicate
//! cells the rule already rebuilds). Both changes keep the encoding a
//! *bisimulation* for deterministic machines, which the tests verify against
//! a direct simulator.

use chase_core::{ConstraintSet, Instance};
use std::fmt;

/// Head movement of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Move left one cell.
    Left,
    /// Move right one cell.
    Right,
    /// Stay on the current cell.
    Stay,
}

/// One transition `(from, read) → (write, dir, to)`.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Source state.
    pub from: usize,
    /// Symbol read (index into [`TuringMachine::symbols`]).
    pub read: usize,
    /// Symbol written.
    pub write: usize,
    /// Head movement.
    pub dir: Dir,
    /// Target state.
    pub to: usize,
}

/// A single-tape Turing machine. Symbol 0 is the blank; state 0 is initial.
#[derive(Debug, Clone)]
pub struct TuringMachine {
    /// Number of states.
    pub states: usize,
    /// Tape symbol names (index 0 = blank). Names must be lower-case
    /// identifiers (they become constants).
    pub symbols: Vec<String>,
    /// The transition table. For the encoding to be a bisimulation the
    /// machine should be deterministic (at most one transition per
    /// `(state, read)` pair).
    pub transitions: Vec<Transition>,
}

impl TuringMachine {
    /// Is the machine deterministic?
    pub fn is_deterministic(&self) -> bool {
        for (i, a) in self.transitions.iter().enumerate() {
            for b in &self.transitions[i + 1..] {
                if a.from == b.from && a.read == b.read {
                    return false;
                }
            }
        }
        true
    }
}

/// Result of directly simulating a machine.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Did the machine halt (no applicable transition) within the budget?
    pub halted: bool,
    /// Steps executed.
    pub steps: usize,
    /// Indices of transitions fired, in order.
    pub fired: Vec<usize>,
    /// Final tape contents (symbol indices).
    pub tape: Vec<usize>,
}

/// Simulate `tm` from the empty input for at most `max_steps` steps.
pub fn simulate(tm: &TuringMachine, max_steps: usize) -> SimResult {
    let mut tape: Vec<usize> = vec![0];
    let mut head: usize = 0;
    let mut state: usize = 0;
    let mut fired = Vec::new();
    for step in 0..max_steps {
        let read = tape[head];
        let delta = tm
            .transitions
            .iter()
            .position(|t| t.from == state && t.read == read);
        let Some(di) = delta else {
            return SimResult {
                halted: true,
                steps: step,
                fired,
                tape,
            };
        };
        let t = &tm.transitions[di];
        fired.push(di);
        tape[head] = t.write;
        state = t.to;
        match t.dir {
            Dir::Right => {
                head += 1;
                if head == tape.len() {
                    tape.push(0);
                }
            }
            Dir::Left => {
                assert!(head > 0, "machine moved left past the tape start");
                head -= 1;
            }
            Dir::Stay => {}
        }
    }
    SimResult {
        halted: false,
        steps: max_steps,
        fired,
        tape,
    }
}

/// The compiled form of a machine.
#[derive(Debug, Clone)]
pub struct TmEncoding {
    /// The constraint set `ΣM`.
    pub constraints: ConstraintSet,
    /// For each transition `i`: the index of its marker rule
    /// `A<i>(x) → B<i>(x)` in `constraints` (the `αt` of Theorem 8).
    pub marker_rules: Vec<usize>,
}

impl fmt::Display for TmEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.constraints)
    }
}

/// The empty instance the encoded machine is chased from.
pub fn empty_instance() -> Instance {
    Instance::new()
}

/// Compile `tm` into `ΣM` (Theorem 8).
pub fn encode(tm: &TuringMachine) -> TmEncoding {
    let sym = |i: usize| tm.symbols[i].clone();
    let state = |s: usize| format!("st{s}");
    let mut lines: Vec<String> = Vec::new();

    // 1. Initial configuration: B | blank(head, state 0) | E.
    lines.push(format!(
        "-> T(W,bMark,X), T(X,{blank},Y), H(X,{s0},Y), T(Y,eMark,Z)",
        blank = sym(0),
        s0 = state(0)
    ));

    // 2–5. Transition rules.
    for (i, t) in tm.transitions.iter().enumerate() {
        let (a, aw, s, s2) = (sym(t.read), sym(t.write), state(t.from), state(t.to));
        match t.dir {
            Dir::Right => {
                // Within the tape: one rule per concrete next symbol.
                for b in 0..tm.symbols.len() {
                    let b = sym(b);
                    lines.push(format!(
                        "T(X,{a},Y), H(X,{s},Y), T(Y,{b},Z) -> \
                         L(X,X2), R(Z,Z2), T(X2,{aw},Y2), T(Y2,{b},Z2), H(Y2,{s2},Z2), A{i}(X2)"
                    ));
                }
                // Past the end of the tape: extend with a fresh blank.
                lines.push(format!(
                    "T(X,{a},Y), H(X,{s},Y), T(Y,eMark,Z) -> \
                     L(X,X2), T(X2,{aw},Y2), T(Y2,{blank},Z2), H(Y2,{s2},Z2), \
                     T(Z2,eMark,W2), A{i}(X2)",
                    blank = sym(0)
                ));
            }
            Dir::Left => {
                // One rule per concrete symbol of the left neighbor.
                for c in 0..tm.symbols.len() {
                    let c = sym(c);
                    lines.push(format!(
                        "T(W,{c},X), T(X,{a},Y), H(X,{s},Y) -> \
                         L(W,W2), R(Y,Y2), T(W2,{c},X2), T(X2,{aw},Y2), H(W2,{s2},X2), A{i}(W2)"
                    ));
                }
            }
            Dir::Stay => {
                lines.push(format!(
                    "T(X,{a},Y), H(X,{s},Y) -> \
                     L(X,X2), R(Y,Y2), T(X2,{aw},Y2), H(X2,{s2},Y2), A{i}(X2)"
                ));
            }
        }
    }

    // 6. Marker rules A_i(x) → B_i(x), recorded for Theorem 8 queries.
    let mut marker_rules = Vec::with_capacity(tm.transitions.len());
    for i in 0..tm.transitions.len() {
        marker_rules.push(lines.len());
        lines.push(format!("A{i}(X) -> B{i}(X)"));
    }

    // 7. Left copy, per symbol (including the begin marker).
    for a in tm.symbols.iter().cloned().chain(["bMark".to_owned()]) {
        lines.push(format!("T(X,{a},Y), L(Y,Y2) -> L(X,X2), T(X2,{a},Y2)"));
    }
    // 8. Right copy, per symbol (including the end marker).
    for a in tm.symbols.iter().cloned().chain(["eMark".to_owned()]) {
        lines.push(format!("T(X,{a},Y), R(X,X2) -> T(X2,{a},Y2), R(Y,Y2)"));
    }

    let constraints = ConstraintSet::parse(&lines.join("\n")).expect("encoding parses");
    TmEncoding {
        constraints,
        marker_rules,
    }
}

/// A machine that writes `mark` onto `n` cells moving right, then halts.
/// Fires each of its `n` transitions exactly once.
pub fn tm_writer(n: usize) -> TuringMachine {
    TuringMachine {
        states: n + 1,
        symbols: vec!["blank".into(), "mark".into()],
        transitions: (0..n)
            .map(|i| Transition {
                from: i,
                read: 0,
                write: 1,
                dir: Dir::Right,
                to: i + 1,
            })
            .collect(),
    }
}

/// A machine exercising right-at-end, left and stay moves:
/// write, right, write, left, check, halt.
pub fn tm_flipper() -> TuringMachine {
    TuringMachine {
        states: 4,
        symbols: vec!["blank".into(), "mark".into()],
        transitions: vec![
            Transition {
                from: 0,
                read: 0,
                write: 1,
                dir: Dir::Right,
                to: 1,
            },
            Transition {
                from: 1,
                read: 0,
                write: 1,
                dir: Dir::Left,
                to: 2,
            },
            Transition {
                from: 2,
                read: 1,
                write: 1,
                dir: Dir::Stay,
                to: 3,
            },
        ],
    }
}

/// A machine that never halts (moves right forever over blanks).
pub fn tm_infinite() -> TuringMachine {
    TuringMachine {
        states: 1,
        symbols: vec!["blank".into()],
        transitions: vec![Transition {
            from: 0,
            read: 0,
            write: 0,
            dir: Dir::Right,
            to: 0,
        }],
    }
}

/// [`tm_writer`] plus one transition out of an unreachable state — its
/// marker rule can never fire (the interesting case for Theorem 8).
pub fn tm_writer_with_unreachable(n: usize) -> TuringMachine {
    let mut tm = tm_writer(n);
    tm.states += 1;
    tm.transitions.push(Transition {
        from: tm.states - 1,
        read: 0,
        write: 0,
        dir: Dir::Stay,
        to: tm.states - 1,
    });
    tm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_runs_the_writer() {
        let tm = tm_writer(3);
        assert!(tm.is_deterministic());
        let r = simulate(&tm, 100);
        assert!(r.halted);
        assert_eq!(r.steps, 3);
        assert_eq!(r.fired, vec![0, 1, 2]);
        assert_eq!(r.tape, vec![1, 1, 1, 0]);
    }

    #[test]
    fn simulator_runs_the_flipper() {
        let r = simulate(&tm_flipper(), 100);
        assert!(r.halted);
        assert_eq!(r.fired, vec![0, 1, 2]);
    }

    #[test]
    fn simulator_detects_divergence() {
        let r = simulate(&tm_infinite(), 50);
        assert!(!r.halted);
        assert_eq!(r.steps, 50);
    }

    #[test]
    fn encoding_has_marker_rules_for_every_transition() {
        let tm = tm_flipper();
        let enc = encode(&tm);
        assert_eq!(enc.marker_rules.len(), 3);
        for (i, &ri) in enc.marker_rules.iter().enumerate() {
            let c = &enc.constraints[ri];
            let t = c.as_tgd().unwrap();
            assert_eq!(t.body()[0].pred().as_str(), format!("A{i}"));
            assert_eq!(t.head()[0].pred().as_str(), format!("B{i}"));
        }
    }

    #[test]
    fn encoding_parses_and_is_tgd_only() {
        let enc = encode(&tm_writer(2));
        assert!(enc.constraints.iter().all(|c| c.is_tgd()));
        enc.constraints.schema().unwrap();
    }
}
