//! Every named artifact of the paper, by section.
//!
//! Variable names follow the paper (x1 → `X1`); constraint order inside each
//! set follows the paper's numbering, so index `i` is the paper's `α(i+1)`.

use chase_core::{ConjunctiveQuery, ConstraintSet, Instance};

fn set(text: &str) -> ConstraintSet {
    ConstraintSet::parse(text).expect("corpus constraint set parses")
}

fn inst(text: &str) -> Instance {
    Instance::parse(text).expect("corpus instance parses")
}

/// Introduction, α1: every special node has an outgoing edge. Terminating.
pub fn intro_alpha1() -> ConstraintSet {
    set("S(X) -> E(X,Y)")
}

/// Introduction, α2: every special node links to a special node.
/// Non-terminating on [`intro_instance`].
pub fn intro_alpha2() -> ConstraintSet {
    set("S(X) -> E(X,Y), S(Y)")
}

/// Introduction, α3 (idea 2): harmless nulls — `S` bounds the cascade.
pub fn intro_alpha3() -> ConstraintSet {
    set("S(X), E(X,Y) -> E(Z,X)")
}

/// Introduction, the running instance `I = {S(n1), S(n2), E(n1,n2)}`
/// (`n1`, `n2` are constants in the paper's narrative).
pub fn intro_instance() -> Instance {
    inst("S(n1). S(n2). E(n1,n2).")
}

/// Introduction, idea 3: β1, β2 — cycle lengths 2 and 3 for special nodes.
/// No condition before this paper recognizes termination (= Example 10's Σ).
pub fn intro_flow_set() -> ConstraintSet {
    example10_sigma()
}

/// Figure 2: the motivating constraint
/// `S(x2), E(x1,x2) → ∃y E(y,x1)` — every predecessor of a special node has
/// a predecessor. In `T[3] \ T[2]`.
pub fn fig2_sigma() -> ConstraintSet {
    set("S(X2), E(X1,X2) -> E(Y,X1)")
}

/// Example 2/3 and 6: γ — every node on a 2-cycle lies on a 3-cycle.
/// Stratified (γ ⊀ γ) but not weakly acyclic, and not safe (Theorem 4).
pub fn example2_gamma() -> ConstraintSet {
    set("E(X1,X2), E(X2,X1) -> E(X1,Y1), E(Y1,Y2), E(Y2,X1)")
}

/// Example 4: Σ = {α1, α2, α3, α4} — stratified, yet the cyclic order
/// α1, α2, α3, α4, … diverges from `{R(a)}`. The paper's counterexample to
/// the termination claim of \[9\].
pub fn example4_sigma() -> ConstraintSet {
    set("R(X1) -> S(X1,X1)\n\
         S(X1,X2) -> T(X2,Z)\n\
         S(X1,X2) -> T(X1,X2), T(X2,X1)\n\
         T(X1,X2), T(X1,X3), T(X3,X1) -> R(X2)")
}

/// Example 4's instance `{R(a)}`.
pub fn example4_instance() -> Instance {
    inst("R(a).")
}

/// Example 5's instance `{R(a), T(b,b)}`.
pub fn example5_instance() -> Instance {
    inst("R(a). T(b,b).")
}

/// Example 5's terminating result
/// `{R(a), T(b,b), S(a,a), T(a,a), R(b), S(b,b)}`.
pub fn example5_expected_result() -> Instance {
    inst("R(a). T(b,b). S(a,a). T(a,a). R(b). S(b,b).")
}

/// Examples 8/9, Figure 6: β = `R(x1,x2,x3), S(x2) → ∃y R(x2,y,x1)` —
/// safe but not weakly acyclic.
pub fn safety_beta() -> ConstraintSet {
    set("R(X1,X2,X3), S(X2) -> R(X2,Y,X1)")
}

/// Theorem 4(c): {α, β} — safe but not (c-)stratified.
pub fn thm4_safe_not_stratified() -> ConstraintSet {
    set("S(X2,X3), R(X1,X2,X3) -> R(X2,Y,X1)\n\
         R(X1,X2,X3) -> S(X1,X3)")
}

/// Example 10/12: Σ = {α1, α2} — special nodes have 2- and 3-cycles.
/// Neither safe nor stratified; safely restricted.
pub fn example10_sigma() -> ConstraintSet {
    set("S(X), E(X,Y) -> E(Y,X)\n\
         S(X), E(X,Y) -> E(Y,Z), E(Z,X)")
}

/// Example 13: Σ' = Σ ∪ {α3}, α3 = `∃x,y S(x), E(x,y)` — inductively
/// restricted but not safely restricted.
pub fn example13_sigma_prime() -> ConstraintSet {
    set("S(X), E(X,Y) -> E(Y,X)\n\
         S(X), E(X,Y) -> E(Y,Z), E(Z,X)\n\
         -> S(X), E(X,Y)")
}

/// Section 3.7: Σ'' = Σ' ∪ {α4, α5} — the worked input of the `check`
/// algorithm.
pub fn sec37_sigma_dprime() -> ConstraintSet {
    set("S(X), E(X,Y) -> E(Y,X)\n\
         S(X), E(X,Y) -> E(Y,Z), E(Z,X)\n\
         -> S(X), E(X,Y)\n\
         E(X1,X2) -> T(X1,X2)\n\
         T(X1,X2) -> T(X2,X1)")
}

/// The Example 15 family, parameterized by the arity `n ≥ 2` of `R`:
/// `S(x_n), R(x1, …, x_n) → ∃y R(y, x1, …, x_{n−1})`.
///
/// Genuine firing chains have at most `n − 1` steps, so the set sits at
/// hierarchy level `T[n+1] \ T[n]` (the paper's Figure 2 anchor: arity 2 is
/// in `T[3]`; the prose of Example 15 is off by one against that anchor —
/// see EXPERIMENTS.md E2).
pub fn sigma_family(arity: usize) -> ConstraintSet {
    assert!(arity >= 2, "the family starts at arity 2");
    let body_vars: Vec<String> = (1..=arity).map(|i| format!("X{i}")).collect();
    let head_vars: Vec<String> = std::iter::once("Y".to_owned())
        .chain((1..arity).map(|i| format!("X{i}")))
        .collect();
    set(&format!(
        "S(X{arity}), R({}) -> R({})",
        body_vars.join(","),
        head_vars.join(",")
    ))
}

/// Proposition 11's family `(Σk, Ik)`:
/// `Σk = {S(x_k), R(x1,…,x_k) → ∃y R(y, x1, …, x_{k−1})}` and
/// `Ik = {S(c1), …, S(c_k), R(c1, …, c_k)}`. Every chase sequence is
/// `(k−1)`-cyclic but not `k`-cyclic.
pub fn prop11_family(k: usize) -> (ConstraintSet, Instance) {
    assert!(k >= 2);
    let sigma = sigma_family(k);
    let mut text = String::new();
    for i in 1..=k {
        text.push_str(&format!("S(c{i}). "));
    }
    let consts: Vec<String> = (1..=k).map(|i| format!("c{i}")).collect();
    text.push_str(&format!("R({}).", consts.join(",")));
    (sigma, inst(&text))
}

/// Example 17's instance for `Σ3` (arity 3): `{S(a1), S(a2), S(a3),
/// R(a1,a2,a3)}`.
pub fn example17_instance() -> Instance {
    inst("S(a1). S(a2). S(a3). R(a1,a2,a3).")
}

/// Figure 9: the travel-agency constraints α1–α3.
pub fn fig9_travel() -> ConstraintSet {
    set("fly(C1,C2,D) -> hasAirport(C1), hasAirport(C2)\n\
         rail(C1,C2,D) -> rail(C2,C1,D)\n\
         fly(C1,C2,D) -> fly(C2,C3,D2)")
}

/// Section 4's query q1: cities reachable from `c1` via rail-and-fly.
/// Chasing it with Σ(fig9) diverges.
pub fn q1() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("rf(X2) <- rail(c1,X1,Y1), fly(X1,X2,Y2)").expect("q1 parses")
}

/// Section 4's query q2: rail-and-fly there, same route back.
/// Chasing it with Σ(fig9) terminates (Example 16).
pub fn q2() -> ConjunctiveQuery {
    ConjunctiveQuery::parse(
        "rffr(X2) <- rail(c1,X1,Y1), fly(X1,X2,Y2), fly(X2,X1,Y2), rail(X1,c1,Y1)",
    )
    .expect("q2 parses")
}

/// Section 4's universal plan q2' (q2 after chasing with α1).
pub fn q2_universal_plan() -> ConjunctiveQuery {
    ConjunctiveQuery::parse(
        "rffr(X2) <- rail(c1,X1,Y1), fly(X1,X2,Y2), fly(X2,X1,Y2), rail(X1,c1,Y1), \
         hasAirport(X1), hasAirport(X2)",
    )
    .expect("q2' parses")
}

/// Section 4's rewriting q2'' (join elimination).
pub fn q2_rewritten() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("rffr(X2) <- rail(c1,X1,Y1), fly(X1,X2,Y2), fly(X2,X1,Y2)")
        .expect("q2'' parses")
}

/// Section 4's rewriting q2''' (join introduction).
pub fn q2_rewritten_with_filter() -> ConjunctiveQuery {
    ConjunctiveQuery::parse(
        "rffr(X2) <- hasAirport(X1), rail(c1,X1,Y1), fly(X1,X2,Y2), fly(X2,X1,Y2)",
    )
    .expect("q2''' parses")
}

/// Example 19: restrictedly guarded but not weakly guarded.
pub fn example19_guarded() -> ConstraintSet {
    set("R(X1,X2), S(X1,X2) -> S(X2,Y)\n\
         S(X1,X2), S(X3,X1) -> R(X2,X1)\n\
         T(X1,X2) -> S(Y,X2)")
}

/// A classic weakly acyclic data-exchange set (used as a baseline corpus
/// entry; not from the paper).
pub fn data_exchange_baseline() -> ConstraintSet {
    set("emp(E,D) -> dept(D)\n\
         dept(D) -> mgr(D,M)\n\
         mgr(D,M) -> emp(M,D)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_parses_and_has_expected_sizes() {
        assert_eq!(intro_alpha1().len(), 1);
        assert_eq!(intro_alpha2().len(), 1);
        assert_eq!(intro_instance().len(), 3);
        assert_eq!(example4_sigma().len(), 4);
        assert_eq!(example13_sigma_prime().len(), 3);
        assert_eq!(sec37_sigma_dprime().len(), 5);
        assert_eq!(fig9_travel().len(), 3);
        assert_eq!(example19_guarded().len(), 3);
    }

    #[test]
    fn sigma_family_shapes() {
        for arity in 2..=6 {
            let s = sigma_family(arity);
            assert_eq!(s.len(), 1);
            let t = s[0].as_tgd().unwrap();
            assert_eq!(t.body().len(), 2);
            assert_eq!(t.existentials().len(), 1);
            assert_eq!(t.universals().len(), arity);
        }
    }

    #[test]
    fn prop11_instances_grow_with_k() {
        let (s, i) = prop11_family(4);
        assert_eq!(s.len(), 1);
        assert_eq!(i.len(), 5); // 4 S-facts + 1 R-fact
    }

    #[test]
    fn fig2_equals_sigma_family_2() {
        // Figure 2's constraint is the arity-2 member of the family (up to
        // variable/predicate naming).
        let fam = sigma_family(2);
        let t = fam[0].as_tgd().unwrap();
        assert_eq!(t.universals().len(), 2);
        assert_eq!(t.existentials().len(), 1);
    }
}
