//! Scalable synthetic constraint-set and instance families.
//!
//! Each family scales a structural motif from the paper so the benchmarks
//! can sweep sizes: recognition cost versus `|Σ|`, chase length versus
//! `|dom(I)|`, and hierarchy level versus chain arity.

use chase_core::{ConstraintSet, Instance};

fn set(text: &str) -> ConstraintSet {
    ConstraintSet::parse(text).expect("family constraint set parses")
}

/// A weakly acyclic copy chain of `n` TGDs:
/// `R0(x,y) → R1(x,y)`, …, `R{n−1}(x,y) → Rn(x,y)`.
pub fn copy_chain(n: usize) -> ConstraintSet {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("R{i}(X,Y) -> R{}(X,Y)\n", i + 1));
    }
    set(&text)
}

/// A weakly acyclic "LAV" star: `n` sources each expanding into a hub with
/// one existential: `Si(x) → Hub(x, y)`.
pub fn lav_star(n: usize) -> ConstraintSet {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("S{i}(X) -> Hub(X,Y{i})\n"));
    }
    set(&text)
}

/// `n` disjoint copies of the safety example β (safe, not weakly acyclic —
/// Examples 8/9 scaled).
pub fn safe_family(n: usize) -> ConstraintSet {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("R{i}(X1,X2,X3), S{i}(X2) -> R{i}(X2,Y,X1)\n"));
    }
    set(&text)
}

/// `n` disjoint copies of γ (Example 2): stratified, not weakly acyclic,
/// not safe.
pub fn stratified_family(n: usize) -> ConstraintSet {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!(
            "E{i}(X1,X2), E{i}(X2,X1) -> E{i}(X1,Y1), E{i}(Y1,Y2), E{i}(Y2,X1)\n"
        ));
    }
    set(&text)
}

/// A full-TGD cycle of length `n` (safe — no existentials — but cyclic in
/// every precedence graph): `Ri(x,y) → R{i+1}(y,x)`, wrapping around.
pub fn full_tgd_cycle(n: usize) -> ConstraintSet {
    assert!(n >= 1);
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("R{i}(X,Y) -> R{}(Y,X)\n", (i + 1) % n));
    }
    set(&text)
}

/// `n` disjoint copies of the Example 10 motif (inductively restricted but
/// neither safe nor stratified), scaled for recognition benchmarks.
pub fn inductively_restricted_family(n: usize) -> ConstraintSet {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("S{i}(X), E{i}(X,Y) -> E{i}(Y,X)\n"));
        text.push_str(&format!("S{i}(X), E{i}(X,Y) -> E{i}(Y,Z), E{i}(Z,X)\n"));
    }
    set(&text)
}

/// The divergent motif of the Introduction, `n` independent copies:
/// `Si(x) → ∃y Ei(x,y), Si(y)` — outside every class.
pub fn divergent_family(n: usize) -> ConstraintSet {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("S{i}(X) -> E{i}(X,Y), S{i}(Y)\n"));
    }
    set(&text)
}

/// A directed-cycle graph instance over the `S`/`E` schema of the
/// Introduction: `n` nodes `v0 … v{n−1}`, all special, edges `vi → v{i+1}`.
pub fn cycle_instance(n: usize) -> Instance {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("S(v{i}). E(v{i},v{}).\n", (i + 1) % n));
    }
    Instance::parse(&text).expect("cycle instance parses")
}

/// A path-graph instance over the `S`/`E` schema: nodes `v0 … v{n−1}`,
/// edges `vi → v{i+1}` (no wrap-around), every node special.
pub fn path_instance(n: usize) -> Instance {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("S(v{i}). "));
        if i + 1 < n {
            text.push_str(&format!("E(v{i},v{}).\n", i + 1));
        }
    }
    Instance::parse(&text).expect("path instance parses")
}

/// `n` unary facts `P(c0) … P(c{n−1})` — a scaled seed for families guarded
/// by a unary predicate (e.g. Example 4's `R`, at benchmark sizes).
pub fn unary_instance(pred: &str, n: usize) -> Instance {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("{pred}(c{i}). "));
    }
    Instance::parse(&text).expect("unary instance parses")
}

/// An instance of `n` facts `R0(ci, c{i+1})` feeding [`copy_chain`].
pub fn chain_source_instance(n: usize) -> Instance {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("R0(c{i},c{}). ", i + 1));
    }
    Instance::parse(&text).expect("chain source instance parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_scale_linearly() {
        assert_eq!(copy_chain(5).len(), 5);
        assert_eq!(lav_star(7).len(), 7);
        assert_eq!(safe_family(3).len(), 3);
        assert_eq!(stratified_family(2).len(), 2);
        assert_eq!(full_tgd_cycle(4).len(), 4);
        assert_eq!(inductively_restricted_family(3).len(), 6);
        assert_eq!(divergent_family(2).len(), 2);
    }

    #[test]
    fn instances_have_expected_sizes() {
        assert_eq!(cycle_instance(5).len(), 10);
        assert_eq!(path_instance(5).len(), 9);
        assert_eq!(chain_source_instance(4).len(), 4);
        assert_eq!(cycle_instance(3).domain_size(), 3);
        assert_eq!(unary_instance("R", 12).len(), 12);
        assert_eq!(unary_instance("R", 12).domain_size(), 12);
    }

    #[test]
    fn disjoint_copies_use_disjoint_predicates() {
        let s = safe_family(2);
        let schema = s.schema().unwrap();
        assert_eq!(schema.len(), 4); // R0, S0, R1, S1
    }
}
